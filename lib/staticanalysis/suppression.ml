(** Proof-producing probe-elision analysis ("suppression", ROADMAP item 2).

    Every instrumentation plan pays one log bit per executed instrumented
    branch.  Many of those bits are statically redundant: a branch nested in
    the then-arm of an identical condition can only go one way, a branch
    with the same condition as a dominating instrumented branch repeats a
    bit the log already carries, and a loop condition whose operands the
    loop body never writes yields the same bit on every iteration after the
    first.  This pass proves such redundancies over the explicit {!Cfg} and
    emits, per elided branch, a deterministic *reconstruction rule* that the
    replay side evaluates instead of consuming a bit.

    Rules (the wire codes in parentheses):
    - [Forced { polarity }] ([f1]/[f0]) — every execution takes the same
      side: the condition is constant ({!Constprop}), or the branch sits in
      an arm of a dominating branch whose condition decides it and no write
      on the arm path interferes.  Reconstruction is the constant.
    - [Implied_by { dom; polarity }] ([d<dom>+]/[d<dom>-]) — a strictly
      dominating, instrumented, non-elided branch [dom] in the same
      function has an equal (polarity [+]) or complementary ([-]) condition
      and every [dom]-to-branch path is free of writes to the condition's
      operands and of calls that could re-enter the function.
      Reconstruction is (the negation of) the *last bit consumed at [dom]*
      — deliberately the consumed bit rather than the observed outcome, so
      a suppressed replay mirrors a full-log replay bit-for-bit even after
      a divergence.
    - [Invariant_of { loop }] ([i<loop>]) — the branch lies in (or is) a
      while loop whose syntactic body never writes the condition's operands
      and cannot re-enter the function; only its first execution per loop
      entry is logged, later executions reconstruct the branch's own last
      recorded bit.

    Writes are tracked through calls with transitive may-write summaries:
    a call to a function with a body kills exactly the cells that body (or
    anything it reaches) can store to, and a builtin call kills the
    pointees of its input-writing arguments ({!Minic.Builtin}'s
    [taints_args] model).  Only unmodelled effects ([checkpoint], [spawn],
    unknown names) fall back to killing everything a pointer can reach.

    Soundness here is load-bearing for field data, so every rule carries a
    human-readable witness and {!verify} re-derives each rule from scratch
    against the CFG before a table is accepted — a report whose table fails
    verification must be rejected ({!Replay.Guided} does).

    Concurrency: [spawn]ing programs disable [Implied_by] and
    [Invariant_of] entirely (another thread could interleave executions and
    clobber the reconstruction cursors) and restrict [Forced] arm proofs to
    operands no other thread can reach. *)

open Minic

type rule =
  | Forced of { polarity : bool }
  | Implied_by of { dom : int; polarity : bool }
  | Invariant_of of { loop : int }

type kind = Const_cond | Arm_forced | Dom_implied | Loop_invariant

let kind_to_string = function
  | Const_cond -> "const"
  | Arm_forced -> "arm-forced"
  | Dom_implied -> "implied"
  | Loop_invariant -> "invariant"

type proof = { p_bid : int; p_rule : rule; p_kind : kind; p_witness : string }

type t = {
  nbranches : int;
  rules : rule option array;
  proofs : proof array;  (** one per elided branch, ascending bid *)
  dead : bool array;
  n_const : int;
  n_arm : int;
  n_implied : int;
  n_invariant : int;
}

let n_elided t = Array.length t.proofs

let rule_of t bid =
  if bid >= 0 && bid < t.nbranches then t.rules.(bid) else None

let elided t bid = rule_of t bid <> None

(* ------------------------------------------------------------------ *)
(* Wire codec: compact per-rule codes for the report format. *)

let rule_to_code = function
  | Forced { polarity } -> if polarity then "f1" else "f0"
  | Implied_by { dom; polarity } ->
      Printf.sprintf "d%d%c" dom (if polarity then '+' else '-')
  | Invariant_of { loop } -> Printf.sprintf "i%d" loop

let rule_to_string = function
  | Forced { polarity } -> Printf.sprintf "forced-%b" polarity
  | Implied_by { dom; polarity } ->
      Printf.sprintf "implied-by(b%d,%s)" dom (if polarity then "+" else "-")
  | Invariant_of { loop } -> Printf.sprintf "invariant-of(b%d)" loop

(* strict decimal: no sign, no 0x, no underscores — the wire codec must
   reject anything [rule_to_code] could not have printed *)
let dec_of_string s =
  let n = String.length s in
  if n = 0 || n > 9 then None
  else if n > 1 && s.[0] = '0' then None
  else
    let ok = ref true and v = ref 0 in
    String.iter
      (fun c ->
        if c < '0' || c > '9' then ok := false
        else v := (!v * 10) + (Char.code c - Char.code '0'))
      s;
    if !ok then Some !v else None

let rule_of_code (s : string) : (rule, string) result =
  let fail () = Error (Printf.sprintf "bad suppression rule %S" s) in
  match s with
  | "f1" -> Ok (Forced { polarity = true })
  | "f0" -> Ok (Forced { polarity = false })
  | _ when String.length s >= 3 && s.[0] = 'd' -> (
      let l = String.length s in
      let pol = s.[l - 1] in
      if pol <> '+' && pol <> '-' then fail ()
      else
        match dec_of_string (String.sub s 1 (l - 2)) with
        | Some dom -> Ok (Implied_by { dom; polarity = pol = '+' })
        | None -> fail ())
  | _ when String.length s >= 2 && s.[0] = 'i' -> (
      match dec_of_string (String.sub s 1 (String.length s - 1)) with
      | Some loop -> Ok (Invariant_of { loop })
      | None -> fail ())
  | _ -> fail ()

let table_to_string (tbl : (int * rule) list) : string =
  List.sort (fun (a, _) (b, _) -> compare a b) tbl
  |> List.map (fun (bid, r) -> Printf.sprintf "%d=%s" bid (rule_to_code r))
  |> String.concat ","

let table_of_string (s : string) : ((int * rule) list, string) result =
  if String.trim s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match String.index_opt p '=' with
          | None -> Error (Printf.sprintf "bad suppression entry %S" p)
          | Some i -> (
              let code = String.sub p (i + 1) (String.length p - i - 1) in
              match dec_of_string (String.sub p 0 i) with
              | None -> Error (Printf.sprintf "bad suppression bid in %S" p)
              | Some bid -> (
                  match rule_of_code code with
                  | Ok r -> go ((bid, r) :: acc) rest
                  | Error e -> Error e)))
    in
    go [] (String.split_on_char ',' s)

let to_table t =
  let out = ref [] in
  for bid = t.nbranches - 1 downto 0 do
    match t.rules.(bid) with
    | Some r -> out := (bid, r) :: !out
    | None -> ()
  done;
  !out

(** Decode a wire table into a dense rule array; fail-closed on
    out-of-range or duplicate bids, dangling references, and implied-by
    rules whose dominator is itself elided. *)
let of_table ~nbranches (tbl : (int * rule) list) :
    (rule option array, string) result =
  let rules = Array.make (max nbranches 0) None in
  let rec fill = function
    | [] -> Ok ()
    | (bid, r) :: rest ->
        if bid < 0 || bid >= nbranches then
          Error (Printf.sprintf "suppression bid %d out of range" bid)
        else if rules.(bid) <> None then
          Error (Printf.sprintf "duplicate suppression bid %d" bid)
        else
          let ref_ok =
            match r with
            | Forced _ -> true
            | Implied_by { dom; _ } -> dom >= 0 && dom < nbranches && dom <> bid
            | Invariant_of { loop } -> loop >= 0 && loop < nbranches
          in
          if not ref_ok then
            Error (Printf.sprintf "suppression rule for b%d has bad reference" bid)
          else begin
            rules.(bid) <- Some r;
            fill rest
          end
  in
  match fill tbl with
  | Error _ as e -> e
  | Ok () ->
      let bad = ref None in
      Array.iteri
        (fun bid r ->
          match r with
          | Some (Implied_by { dom; _ }) when rules.(dom) <> None ->
              if !bad = None then bad := Some (bid, dom)
          | _ -> ())
        rules;
      (match !bad with
      | Some (bid, dom) ->
          Error
            (Printf.sprintf "suppression: b%d implied by elided branch b%d" bid
               dom)
      | None -> Ok rules)

(* ------------------------------------------------------------------ *)
(* Condition implication: does the truth value of [a] decide that of [b]
   when both are evaluated in the same state? *)

let rec expr_equal (a : Ast.expr) (b : Ast.expr) : bool =
  match a, b with
  | Cint x, Cint y -> x = y
  | Cstr x, Cstr y -> String.equal x y
  | Lval x, Lval y | Addr x, Addr y -> lval_equal x y
  | Unop (o, x), Unop (p, y) -> o = p && expr_equal x y
  | Binop (o, x1, x2), Binop (p, y1, y2) ->
      o = p && expr_equal x1 y1 && expr_equal x2 y2
  | _ -> false

and lval_equal (a : Ast.lval) (b : Ast.lval) : bool =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Index (l1, e1), Index (l2, e2) -> lval_equal l1 l2 && expr_equal e1 e2
  | Star e1, Star e2 -> expr_equal e1 e2
  | _ -> false

(* [a op b] has the same truth value as [b op' a] *)
let swap_commutes : Ast.binop -> Ast.binop option = function
  | Eq -> Some Eq
  | Ne -> Some Ne
  | Lt -> Some Gt
  | Gt -> Some Lt
  | Le -> Some Ge
  | Ge -> Some Le
  | Add -> Some Add
  | Mul -> Some Mul
  | Band -> Some Band
  | Bor -> Some Bor
  | Bxor -> Some Bxor
  | Land -> Some Land  (* MiniC's && / || are strict, so they commute *)
  | Lor -> Some Lor
  | Sub | Div | Mod | Shl | Shr -> None

let complement_relop : Ast.binop -> Ast.binop option = function
  | Eq -> Some Ne
  | Ne -> Some Eq
  | Lt -> Some Ge
  | Ge -> Some Lt
  | Gt -> Some Le
  | Le -> Some Gt
  | _ -> None

let rec same_outcome (a : Ast.expr) (b : Ast.expr) : bool =
  expr_equal a b
  || (match a with
     | Unop (Lognot, a') -> opposite_outcome a' b
     | _ -> false)
  || (match b with
     | Unop (Lognot, b') -> opposite_outcome a b'
     | _ -> false)
  ||
  match a, b with
  | Binop (o1, x1, y1), Binop (o2, x2, y2) -> (
      match swap_commutes o1 with
      | Some o1' -> o1' = o2 && expr_equal x1 y2 && expr_equal y1 x2
      | None -> false)
  | _ -> false

and opposite_outcome (a : Ast.expr) (b : Ast.expr) : bool =
  (match a with Unop (Lognot, a') -> same_outcome a' b | _ -> false)
  || (match b with Unop (Lognot, b') -> same_outcome a b' | _ -> false)
  ||
  match a, b with
  | Binop (o1, x1, y1), Binop (o2, x2, y2) ->
      (match complement_relop o1 with
      | Some c -> c = o2 && expr_equal x1 x2 && expr_equal y1 y2
      | None -> false)
      || (match swap_commutes o1 with
         | Some o1' -> (
             match complement_relop o1' with
             | Some c -> c = o2 && expr_equal x1 y2 && expr_equal y1 x2
             | None -> false)
         | None -> false)
  | _ -> false

(** [Some true]: [b] is taken iff [a] is; [Some false]: [b] is taken iff
    [a] is not; [None]: no structural relation. *)
let implies (a : Ast.expr) (b : Ast.expr) : bool option =
  if same_outcome a b then Some true
  else if opposite_outcome a b then Some false
  else None

(* ------------------------------------------------------------------ *)
(* Analysis context: aliasing, constants, CFGs, call graph. *)

type ctx = {
  prog : Program.t;
  pta : Pointsto.t;
  cp : Constprop.result;
  cfgs : Cfg.program_cfgs;
  pointed : Aloc.Set.t;
  has_spawn : bool;
  callees : (string, string list) Hashtbl.t;
      (* per function: directly-called functions that have bodies *)
  fsummary : (string, Aloc.Set.t option) Hashtbl.t;
      (* memoized transitive may-write summaries ([None] = may write
         anything); see [call_summary] *)
}

let build_ctx ?pta ?constprop (prog : Program.t) : ctx =
  let pta = match pta with Some p -> p | None -> Pointsto.analyze prog in
  let cp =
    match constprop with Some c -> c | None -> Constprop.analyze prog pta
  in
  let callees = Hashtbl.create 16 in
  let has_spawn = ref false in
  List.iter
    (fun (f : Ast.func) ->
      let acc = ref [] in
      Ast.iter_stmts
        (fun s ->
          match s.Ast.sdesc with
          | Scall (_, name, _) ->
              if String.equal name "spawn" then has_spawn := true;
              if Program.find_func prog name <> None && not (List.mem name !acc)
              then acc := name :: !acc
          | _ -> ())
        f.Ast.fbody;
      Hashtbl.replace callees f.Ast.fname !acc)
    prog.Program.funcs;
  {
    prog;
    pta;
    cp;
    cfgs = Cfg.of_program prog;
    pointed = Pointsto.pointed_cells pta;
    has_spawn = !has_spawn;
    callees;
    fsummary = Hashtbl.create 16;
  }

(* can a call to [callee] transitively re-enter [target]? *)
let call_reaches ctx ~(callee : string) ~(target : string) : bool =
  let seen = Hashtbl.create 8 in
  let rec go n =
    String.equal n target
    || (not (Hashtbl.mem seen n)
       && begin
            Hashtbl.add seen n ();
            match Hashtbl.find_opt ctx.callees n with
            | None -> false
            | Some cs -> List.exists go cs
          end)
  in
  go callee

(* a cell no pointer and no other frame can reach: immune to calls,
   pointer writes and other threads *)
let pure_local ctx ~fn (a : Aloc.t) : bool =
  match a with
  | Aloc.Local (f, x) ->
      String.equal f fn
      && Types.equal (Pointsto.var_type ctx.pta ~fn x) Types.Tint
      && not (Aloc.Set.mem a ctx.pointed)
  | _ -> false

exception Unanalyzable

(* every abstract cell evaluating [e] may read (over-approximate: base
   pointers and index sub-expressions included) *)
let cond_reads (pta : Pointsto.t) ~fn (e : Ast.expr) : Aloc.Set.t =
  let acc = ref Aloc.Set.empty in
  let add s = acc := Aloc.Set.union s !acc in
  let rec expr (e : Ast.expr) =
    match e with
    | Cint _ | Cstr _ -> ()
    | Lval lv ->
        add (Pointsto.denotes_of pta ~fn lv);
        base lv
    | Addr lv -> base lv
    | Unop (_, a) -> expr a
    | Binop (_, a, b) ->
        expr a;
        expr b
    | Ecall _ -> raise Unanalyzable
  and base = function
    | Ast.Var x -> add (Aloc.Set.singleton (Pointsto.aloc_of pta ~fn x))
    | Index (lv, i) ->
        base lv;
        expr i
    | Star e -> expr e
  in
  expr e;
  !acc

(* Call effects.  The interpreter's builtins write program memory only
   through the pointer arguments [Builtin.t.taints_args] names (checked
   against [Interp.Eval]'s builtin table), so a builtin call site's
   may-write set is the pointees of exactly those arguments.  [checkpoint]
   (its restore hook writes globals back), [spawn] (runs arbitrary code
   concurrently) and unknown names stay unmodelled: [None] = may write
   anything. *)
let builtin_site_effect ctx ~fn name (args : Ast.expr list) :
    Aloc.Set.t option =
  if String.equal name "checkpoint" || String.equal name "spawn" then None
  else
    match Builtin.find name with
    | None -> None
    | Some b ->
        List.fold_left
          (fun acc i ->
            match (acc, List.nth_opt args i) with
            | None, _ | _, None -> None
            | Some s, Some a ->
                Some
                  (Aloc.Set.union s (Pointsto.denotes_of ctx.pta ~fn (Ast.Star a))))
          (Some Aloc.Set.empty) b.Builtin.taints_args

(* direct may-writes of [f]'s own body: assignments, call result stores
   and the builtin effects of its body-less call sites (callees with
   bodies are the caller's job — see [call_summary]) *)
let direct_writes ctx (f : Ast.func) : Aloc.Set.t option =
  let fn = f.Ast.fname in
  let acc = ref (Some Aloc.Set.empty) in
  let add s =
    match !acc with
    | None -> ()
    | Some cur -> acc := Some (Aloc.Set.union cur s)
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.sdesc with
      | Sassign (lv, _) -> add (Pointsto.denotes_of ctx.pta ~fn lv)
      | Scall (lvo, name, args) ->
          (match lvo with
          | Some lv -> add (Pointsto.denotes_of ctx.pta ~fn lv)
          | None -> ());
          if Program.find_func ctx.prog name = None then begin
            match builtin_site_effect ctx ~fn name args with
            | None -> acc := None
            | Some s -> add s
          end
      | _ -> ())
    f.Ast.fbody;
  !acc

(* transitive may-write summary of a call to [name]: the union of direct
   writes over [name] and every body it can reach.  Memoized; recursion is
   fine because reachability closure needs no fixpoint. *)
let call_summary ctx (name : string) : Aloc.Set.t option =
  match Hashtbl.find_opt ctx.fsummary name with
  | Some s -> s
  | None ->
      let seen = Hashtbl.create 8 in
      let rec visit acc n =
        if Hashtbl.mem seen n then acc
        else begin
          Hashtbl.add seen n ();
          match Program.find_func ctx.prog n with
          | None -> acc
          | Some f ->
              let acc =
                match (acc, direct_writes ctx f) with
                | None, _ | _, None -> None
                | Some a, Some b -> Some (Aloc.Set.union a b)
              in
              List.fold_left visit acc
                (match Hashtbl.find_opt ctx.callees n with
                | Some cs -> cs
                | None -> [])
        end
      in
      let s = visit (Some Aloc.Set.empty) name in
      Hashtbl.replace ctx.fsummary name s;
      s

type write = { defs : Aloc.Set.t; top : bool; calls : string list }

let stmt_write ctx ~fn (s : Ast.stmt) : write =
  match s.Ast.sdesc with
  | Sassign (lv, _) ->
      { defs = Pointsto.denotes_of ctx.pta ~fn lv; top = false; calls = [] }
  | Scall (lvo, name, args) ->
      let res =
        match lvo with
        | Some lv -> Pointsto.denotes_of ctx.pta ~fn lv
        | None -> Aloc.Set.empty
      in
      let eff =
        if Program.find_func ctx.prog name <> None then call_summary ctx name
        else builtin_site_effect ctx ~fn name args
      in
      (match eff with
      | None -> { defs = res; top = true; calls = [ name ] }
      | Some s -> { defs = Aloc.Set.union res s; top = false; calls = [ name ] })
  | _ -> { defs = Aloc.Set.empty; top = false; calls = [] }

(* an unmodelled effect ([top]) may write anything a pointer or another
   frame can reach, so it kills every operand that is not a pure local *)
let write_kills ctx ~fn ~(operands : Aloc.Set.t) (w : write) : bool =
  (not (Aloc.Set.disjoint w.defs operands))
  || (w.top && Aloc.Set.exists (fun a -> not (pure_local ctx ~fn a)) operands)

let write_reenters ctx ~fn (w : write) : bool =
  List.exists (fun c -> call_reaches ctx ~callee:c ~target:fn) w.calls

(* no write on any [srcs]-to-[dst] path (node [avoid] deleted) kills an
   operand; with [check_reentry], no call on such a path can re-enter [fn]
   (re-entry would re-execute the dominator and clobber its bit cursor) *)
let path_safe ctx (cfg : Cfg.t) ~fn ~operands ~(check_reentry : bool) ~avoid
    ~srcs ~dst : bool =
  Cfg.nodes_on_path cfg ~avoid ~srcs ~dst
  |> List.for_all (fun nd ->
         match Cfg.kind cfg nd with
         | Cfg.Stmt s ->
             let w = stmt_write ctx ~fn s in
             (not (write_kills ctx ~fn ~operands w))
             && ((not check_reentry) || not (write_reenters ctx ~fn w))
         | _ -> true)

let spawn_safe ctx ~fn operands =
  (not ctx.has_spawn) || Aloc.Set.for_all (pure_local ctx ~fn) operands

(* ------------------------------------------------------------------ *)
(* Locating a branch and its syntactic context. *)

type enc =
  | In_arm of { dom : Ast.branch; dom_cond : Ast.expr; arm : bool }
  | In_loop of { loop : Ast.branch; body : Ast.block }

(* condition, while-body (for loops) and innermost-first enclosing context
   of branch [bid] in [f] *)
let find_branch (f : Ast.func) (bid : int) :
    (Ast.expr * Ast.block option * enc list) option =
  let rec blk encs = function
    | [] -> None
    | s :: rest -> (
        match stmt encs s with Some r -> Some r | None -> blk encs rest)
  and stmt encs (s : Ast.stmt) =
    match s.sdesc with
    | Sif (br, cond, tb, eb) ->
        if br.bid = bid then Some (cond, None, encs)
        else begin
          match
            blk (In_arm { dom = br; dom_cond = cond; arm = true } :: encs) tb
          with
          | Some r -> Some r
          | None ->
              blk (In_arm { dom = br; dom_cond = cond; arm = false } :: encs) eb
        end
    | Swhile (br, cond, body) ->
        if br.bid = bid then Some (cond, Some body, encs)
        else blk (In_loop { loop = br; body } :: encs) body
    | Sblock b -> blk encs b
    | _ -> None
  in
  blk [] f.fbody

(* everything the per-rule checkers need about one candidate branch *)
type site = {
  s_bid : int;
  s_fn : string;
  s_cond : Ast.expr;
  s_body : Ast.block option;  (* while body, when the branch is a loop *)
  s_encs : enc list;
  s_cfg : Cfg.t;
  s_node : int;
  s_operands : Aloc.Set.t;
}

let site_of ctx bid : (site, string) result =
  if bid < 0 || bid >= Program.nbranches ctx.prog then Error "bid out of range"
  else
    let info = Program.branch_info ctx.prog bid in
    match Program.find_func ctx.prog info.bfunc with
    | None -> Error "function not found"
    | Some f -> (
        match find_branch f bid with
        | None -> Error "branch not in function body"
        | Some (cond, body, encs) -> (
            match Cfg.locate ctx.cfgs ~bid with
            | None -> Error "branch has no CFG node"
            | Some (cfg, node) -> (
                match cond_reads ctx.pta ~fn:info.bfunc cond with
                | operands ->
                    Ok
                      {
                        s_bid = bid;
                        s_fn = info.bfunc;
                        s_cond = cond;
                        s_body = body;
                        s_encs = encs;
                        s_cfg = cfg;
                        s_node = node;
                        s_operands = operands;
                      }
                | exception Unanalyzable -> Error "condition not analyzable")))

(* ------------------------------------------------------------------ *)
(* Per-rule checkers.  [analyze] derives candidates with these and
   [verify] re-checks claims with the same predicates, so verification
   accepts the analysis output by construction. *)

let truthy v = v <> 0

let const_polarity ctx bid : bool option =
  match Constprop.branch_const_value ctx.cp bid with
  | Some v -> Some (truthy v)
  | None -> None

(* innermost enclosing arm whose condition decides this branch, with a
   kill-free arm-entry-to-branch path; [want] restricts the polarity *)
let arm_forced ctx (st : site) ~(want : bool option) :
    (bool * int * bool) option =
  if not (spawn_safe ctx ~fn:st.s_fn st.s_operands) then None
  else
    List.find_map
      (function
        | In_loop _ -> None
        | In_arm { dom; dom_cond; arm } -> (
            match implies dom_cond st.s_cond with
            | None -> None
            | Some rel -> (
                let pol = if arm then rel else not rel in
                if match want with Some w -> w <> pol | None -> false then None
                else
                  match Cfg.branch_node_of st.s_cfg ~bid:dom.bid with
                  | None -> None
                  | Some dn -> (
                      let tbl =
                        if arm then st.s_cfg.Cfg.true_succ
                        else st.s_cfg.Cfg.false_succ
                      in
                      match Hashtbl.find_opt tbl dn with
                      | None -> None
                      | Some arm_entry ->
                          if
                            path_safe ctx st.s_cfg ~fn:st.s_fn
                              ~operands:st.s_operands ~check_reentry:false
                              ~avoid:dn ~srcs:[ arm_entry ] ~dst:st.s_node
                          then Some (pol, dom.bid, arm)
                          else None))))
      st.s_encs

let implied_ok ctx (st : site) ~(dom : int) ~(polarity : bool)
    ~(dom_elided : int -> bool) ~(instrumented : bool array option) : bool =
  (not ctx.has_spawn)
  && dom >= 0
  && dom < Program.nbranches ctx.prog
  && dom < st.s_bid
  && String.equal (Program.branch_info ctx.prog dom).bfunc st.s_fn
  && (match instrumented with
     | Some ins -> dom < Array.length ins && ins.(dom)
     | None -> true)
  && (not (dom_elided dom))
  && (match Program.find_func ctx.prog st.s_fn with
     | None -> false
     | Some f -> (
         match find_branch f dom with
         | None -> false
         | Some (dom_cond, _, _) -> implies dom_cond st.s_cond = Some polarity))
  &&
  match Cfg.branch_node_of st.s_cfg ~bid:dom with
  | None -> false
  | Some dn ->
      Cfg.strictly_dominates st.s_cfg dn st.s_node
      &&
      let srcs = Array.to_list st.s_cfg.Cfg.succ.(dn) in
      path_safe ctx st.s_cfg ~fn:st.s_fn ~operands:st.s_operands
        ~check_reentry:true ~avoid:dn ~srcs ~dst:st.s_node

(* no write in [body] kills an operand and no body call re-enters [fn] *)
let body_invariant ctx ~fn ~operands (body : Ast.block) : bool =
  let ok = ref true in
  Ast.iter_stmts
    (fun s ->
      if !ok then begin
        let w = stmt_write ctx ~fn s in
        if write_kills ctx ~fn ~operands w || write_reenters ctx ~fn w then
          ok := false
      end)
    body;
  !ok

let invariant_ok ctx (st : site) ~(loop : int) : bool =
  (not ctx.has_spawn)
  && loop >= 0
  && loop < Program.nbranches ctx.prog
  && (Program.branch_info ctx.prog loop).bkind = Number.While_branch
  && String.equal (Program.branch_info ctx.prog loop).bfunc st.s_fn
  &&
  let body =
    if loop = st.s_bid then st.s_body
    else
      List.find_map
        (function
          | In_loop { loop = l; body } when l.bid = loop -> Some body
          | _ -> None)
        st.s_encs
  in
  match body with
  | None -> false
  | Some body -> body_invariant ctx ~fn:st.s_fn ~operands:st.s_operands body

(* ------------------------------------------------------------------ *)
(* Analysis: derive the best rule per instrumented branch. *)

let analyze ?pta ?constprop ~(instrumented : bool array) (prog : Program.t) : t
    =
  let ctx = build_ctx ?pta ?constprop prog in
  let n = Program.nbranches prog in
  let rules = Array.make n None in
  let dead = Array.init n (fun bid -> Constprop.is_dead ctx.cp bid) in
  let proofs = ref [] in
  let n_const = ref 0
  and n_arm = ref 0
  and n_implied = ref 0
  and n_invariant = ref 0 in
  let put bid rule kind witness cnt =
    rules.(bid) <- Some rule;
    proofs :=
      { p_bid = bid; p_rule = rule; p_kind = kind; p_witness = witness }
      :: !proofs;
    incr cnt
  in
  let try_implied (st : site) : (int * bool) option =
    if ctx.has_spawn then None
    else
      let cands = ref [] in
      Array.iter
        (fun (i : Number.info) ->
          if
            String.equal i.bfunc st.s_fn
            && i.bid < st.s_bid
            && i.bid < Array.length instrumented
            && instrumented.(i.bid)
            && rules.(i.bid) = None
            && not dead.(i.bid)
          then cands := i.bid :: !cands)
        prog.Program.branches;
      (* nearest (largest bid) candidate first *)
      List.sort (fun a b -> compare b a) !cands
      |> List.find_map (fun dom ->
             match Program.find_func ctx.prog st.s_fn with
             | None -> None
             | Some f -> (
                 match find_branch f dom with
                 | None -> None
                 | Some (dom_cond, _, _) -> (
                     match implies dom_cond st.s_cond with
                     | Some pol
                       when implied_ok ctx st ~dom ~polarity:pol
                              ~dom_elided:(fun d -> rules.(d) <> None)
                              ~instrumented:(Some instrumented) ->
                         Some (dom, pol)
                     | _ -> None)))
  in
  let try_invariant (st : site) : int option =
    (* outermost qualifying loop: fewest logged copies per run *)
    let enclosing =
      List.rev
        (List.filter_map
           (function In_loop { loop; _ } -> Some loop.bid | _ -> None)
           st.s_encs)
    in
    let cands =
      enclosing @ (if st.s_body <> None then [ st.s_bid ] else [])
    in
    List.find_opt (fun l -> invariant_ok ctx st ~loop:l) cands
  in
  let consider (st : site) =
    let bid = st.s_bid in
    match const_polarity ctx bid with
    | Some pol ->
        put bid
          (Forced { polarity = pol })
          Const_cond
          (Printf.sprintf "constprop: condition always %b" pol)
          n_const
    | None -> (
        match arm_forced ctx st ~want:None with
        | Some (pol, dom, arm) ->
            put bid
              (Forced { polarity = pol })
              Arm_forced
              (Printf.sprintf
                 "forced %b in %s-arm of b%d: (%s) decided there; kill-free \
                  arm path"
                 pol
                 (if arm then "then" else "else")
                 dom
                 (Pretty.expr_to_string st.s_cond))
              n_arm
        | None -> (
            match try_implied st with
            | Some (dom, pol) ->
                put bid
                  (Implied_by { dom; polarity = pol })
                  Dom_implied
                  (Printf.sprintf
                     "outcome %s dominating b%d; kill-free, call-safe paths"
                     (if pol then "equals" else "negates")
                     dom)
                  n_implied
            | None -> (
                match try_invariant st with
                | Some loop ->
                    put bid (Invariant_of { loop }) Loop_invariant
                      (Printf.sprintf
                         "operands {%s} invariant in body of loop b%d"
                         (Aloc.set_to_string st.s_operands)
                         loop)
                      n_invariant
                | None -> ())))
  in
  Array.iter
    (fun (info : Number.info) ->
      let bid = info.bid in
      if
        bid >= 0
        && bid < Array.length instrumented
        && instrumented.(bid)
        && not dead.(bid)
      then
        match site_of ctx bid with Error _ -> () | Ok st -> consider st)
    prog.Program.branches;
  {
    nbranches = n;
    rules;
    proofs = Array.of_list (List.rev !proofs);
    dead;
    n_const = !n_const;
    n_arm = !n_arm;
    n_implied = !n_implied;
    n_invariant = !n_invariant;
  }

(* ------------------------------------------------------------------ *)
(* Proof checker: re-derive every claimed rule from scratch. *)

let verify ?pta ?constprop ?instrumented (prog : Program.t)
    (table : (int * rule) list) : (unit, string) result =
  let ctx = build_ctx ?pta ?constprop prog in
  let n = Program.nbranches prog in
  let elided_tbl = Hashtbl.create 16 in
  let rec dedup = function
    | [] -> Ok ()
    | (bid, r) :: rest ->
        if Hashtbl.mem elided_tbl bid then
          Error (Printf.sprintf "b%d: duplicate suppression rule" bid)
        else begin
          Hashtbl.replace elided_tbl bid r;
          dedup rest
        end
  in
  let check (bid, r) : (unit, string) result =
    let err fmt =
      Printf.ksprintf (fun s -> Error (Printf.sprintf "b%d: %s" bid s)) fmt
    in
    if bid < 0 || bid >= n then err "bid out of range"
    else if Constprop.is_dead ctx.cp bid then err "rule on a dead branch"
    else if
      match instrumented with
      | Some ins -> bid >= Array.length ins || not ins.(bid)
      | None -> false
    then err "rule on an uninstrumented branch"
    else
      match site_of ctx bid with
      | Error e -> err "%s" e
      | Ok st -> (
          match r with
          | Forced { polarity } ->
              if
                const_polarity ctx bid = Some polarity
                || arm_forced ctx st ~want:(Some polarity) <> None
              then Ok ()
              else err "forced(%b) not provable" polarity
          | Implied_by { dom; polarity } ->
              if
                implied_ok ctx st ~dom ~polarity
                  ~dom_elided:(fun d -> Hashtbl.mem elided_tbl d)
                  ~instrumented
              then Ok ()
              else err "implication from b%d not provable" dom
          | Invariant_of { loop } ->
              if invariant_ok ctx st ~loop then Ok ()
              else err "invariance in loop b%d not provable" loop)
  in
  match dedup table with
  | Error _ as e -> e
  | Ok () ->
      List.fold_left
        (fun acc entry -> match acc with Error _ -> acc | Ok () -> check entry)
        (Ok ()) table

(* ------------------------------------------------------------------ *)
(* Reconstruction state machine, shared by the field side (to skip the
   write and optionally emit a shadow prediction) and the replay side (to
   synthesize the bit a full log would have carried).  Drive it with
   [on_branch] for EVERY executed branch — instrumented or not, elided or
   not — and [record] at every site where a bit is actually logged or
   consumed. *)

module Recon = struct
  type action =
    | Consume  (** log / consume a bit as usual, then call [record] *)
    | Elide of bool  (** skip the bit; a full log would carry this value *)
    | Elide_unknown
        (** elided, but the referenced bit is unavailable (exhausted log):
            treat like an exhausted reader *)

  type t = {
    rules : rule option array;
    children : int list array;  (* loop bid -> its Invariant_of children *)
    last : bool array;
    valid : bool array;
    fresh : bool array;
  }

  let create (rules : rule option array) : t =
    let n = Array.length rules in
    let children = Array.make n [] in
    Array.iteri
      (fun bid r ->
        match r with
        | Some (Invariant_of { loop }) when loop >= 0 && loop < n ->
            children.(loop) <- bid :: children.(loop)
        | _ -> ())
      rules;
    {
      rules;
      children;
      last = Array.make n false;
      valid = Array.make n false;
      fresh = Array.make n true;
    }

  let on_branch t ~bid ~iter : action =
    if bid < 0 || bid >= Array.length t.rules then Consume
    else begin
      (* a loop header evaluating its condition for the first time in this
         entry starts a fresh invariance window for its children (and for
         itself, via its own entry in [children]) *)
      if iter = 0 then List.iter (fun c -> t.fresh.(c) <- true) t.children.(bid);
      match t.rules.(bid) with
      | None -> Consume
      | Some (Forced { polarity }) -> Elide polarity
      | Some (Implied_by { dom; polarity }) ->
          if t.valid.(dom) then
            Elide (if polarity then t.last.(dom) else not t.last.(dom))
          else Elide_unknown
      | Some (Invariant_of _) ->
          if t.fresh.(bid) then Consume
          else if t.valid.(bid) then Elide t.last.(bid)
          else Elide_unknown
    end

  let record t ~bid bit =
    if bid >= 0 && bid < Array.length t.rules then begin
      t.last.(bid) <- bit;
      t.valid.(bid) <- true;
      t.fresh.(bid) <- false
    end
end

(* ------------------------------------------------------------------ *)
(* Report rendering, mirroring {!Precision}. *)

type verdict = Not_instrumented | Dead | Logged | Elided of kind

let verdict_to_string = function
  | Not_instrumented -> "not-instrumented"
  | Dead -> "dead"
  | Logged -> "logged"
  | Elided k -> "elided-" ^ kind_to_string k

type entry = {
  bid : int;
  loc : Loc.t;
  func : string;
  is_lib : bool;
  instrumented : bool;
  verdict : verdict;
  rule : rule option;
  witness : string option;
}

let entries (t : t) (prog : Program.t) ~(instrumented : bool array) :
    entry array =
  let proof_of bid =
    Array.to_seq t.proofs |> Seq.find (fun p -> p.p_bid = bid)
  in
  Array.map
    (fun (b : Number.info) ->
      let ins = b.bid < Array.length instrumented && instrumented.(b.bid) in
      let rule = rule_of t b.bid in
      let verdict =
        if not ins then Not_instrumented
        else if b.bid < Array.length t.dead && t.dead.(b.bid) then Dead
        else
          match proof_of b.bid with
          | Some p -> Elided p.p_kind
          | None -> Logged
      in
      {
        bid = b.bid;
        loc = b.bloc;
        func = b.bfunc;
        is_lib = b.bis_lib;
        instrumented = ins;
        verdict;
        rule;
        witness =
          (match proof_of b.bid with
          | Some p -> Some p.p_witness
          | None -> None);
      })
    prog.Program.branches

let n_instrumented_in ~(instrumented : bool array) (t : t) =
  let k = ref 0 in
  Array.iteri
    (fun bid ins -> if ins && bid < t.nbranches then incr k)
    instrumented;
  !k

let entry_to_string (e : entry) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "b%03d %s:%d [%s]%s %s" e.bid e.loc.Loc.file e.loc.Loc.line
       e.func
       (if e.is_lib then " (lib)" else "")
       (verdict_to_string e.verdict));
  (match e.rule with
  | Some r -> Buffer.add_string buf (" " ^ rule_to_string r)
  | None -> ());
  (match e.witness with
  | Some w -> Buffer.add_string buf ("\n      witness: " ^ w)
  | None -> ());
  Buffer.contents buf

(** Human-readable report.  By default only elided branches are listed in
    full; [all] lists every branch. *)
let report_to_text ?(all = false) (t : t) (prog : Program.t)
    ~(instrumented : bool array) : string =
  let es = entries t prog ~instrumented in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== suppression report ==\n";
  Array.iter
    (fun e ->
      let interesting =
        all || match e.verdict with Elided _ -> true | _ -> false
      in
      if interesting then begin
        Buffer.add_string buf (entry_to_string e);
        Buffer.add_char buf '\n'
      end)
    es;
  let n_ins = n_instrumented_in ~instrumented t in
  Buffer.add_string buf
    (Printf.sprintf
       "branches: %d  instrumented: %d  elided: %d (%.1f%% of instrumented)\n\
        by kind: const %d  arm-forced %d  implied %d  invariant %d\n"
       t.nbranches n_ins (n_elided t)
       (if n_ins = 0 then 0.0
        else 100.0 *. float_of_int (n_elided t) /. float_of_int n_ins)
       t.n_const t.n_arm t.n_implied t.n_invariant);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let entry_to_json (e : entry) : string =
  Printf.sprintf
    "{\"bid\":%d,\"file\":\"%s\",\"line\":%d,\"func\":\"%s\",\"lib\":%b,\
     \"instrumented\":%b,\"verdict\":\"%s\",\"rule\":%s%s}"
    e.bid (json_escape e.loc.Loc.file) e.loc.Loc.line (json_escape e.func)
    e.is_lib e.instrumented
    (verdict_to_string e.verdict)
    (match e.rule with
    | Some r -> Printf.sprintf "\"%s\"" (rule_to_code r)
    | None -> "null")
    (match e.witness with
    | Some w -> Printf.sprintf ",\"witness\":\"%s\"" (json_escape w)
    | None -> "")

(** Strict JSON report.  [extra] is spliced verbatim into the summary
    object (must start with "," when non-empty). *)
let report_to_json ?(extra = "") (t : t) (prog : Program.t)
    ~(instrumented : bool array) : string =
  let es = entries t prog ~instrumented in
  let n_ins = n_instrumented_in ~instrumented t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"summary\":{\"branches\":%d,\"instrumented\":%d,\"elided\":%d,\
        \"elision_rate\":%.4f,\"const\":%d,\"arm_forced\":%d,\"implied\":%d,\
        \"invariant\":%d%s},\"branches\":["
       t.nbranches n_ins (n_elided t)
       (if n_ins = 0 then 0.0
        else float_of_int (n_elided t) /. float_of_int n_ins)
       t.n_const t.n_arm t.n_implied t.n_invariant extra);
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (entry_to_json e))
    es;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let describe (t : t) : string =
  Printf.sprintf
    "suppression: %d elided (const %d, arm-forced %d, implied %d, invariant %d)"
    (n_elided t) t.n_const t.n_arm t.n_implied t.n_invariant
