(** Per-function control-flow graphs with dominator and post-dominator
    trees, built from the structured MiniC AST.  The explicit graph backs
    the suppression proofs ({!Suppression}): dominance queries, arm
    membership and on-some-path kill sets. *)

type node_kind =
  | Entry
  | Exit
  | Stmt of Minic.Ast.stmt  (** [Sassign] or [Scall] only *)
  | Branch of { bid : int; cond : Minic.Ast.expr; kind : Minic.Number.kind }
  | Join  (** structural merge / arm-entry point *)

type t = {
  func : Minic.Ast.func;
  kinds : node_kind array;
  succ : int array array;
  pred : int array array;
  entry : int;
  exit_ : int;
  branch_node : (int, int) Hashtbl.t;
  true_succ : (int, int) Hashtbl.t;
  false_succ : (int, int) Hashtbl.t;
  idom : int array;
  ipdom : int array;
}

val of_func : Minic.Ast.func -> t
val nnodes : t -> int
val kind : t -> int -> node_kind

(** Node of branch [bid] in this function, if the branch lives here. *)
val branch_node_of : t -> bid:int -> int option

(** The node is reachable from [Entry]. *)
val reachable : t -> int -> bool

(** [dominates t a b]: every entry-to-[b] path passes [a] (reflexive;
    false when either node is unreachable). *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool
val post_dominates : t -> int -> int -> bool

(** Nodes on some path from a node of [srcs] to [dst] in the graph with
    node [avoid] deleted (endpoints included; cycles covered). *)
val nodes_on_path : t -> avoid:int -> srcs:int list -> dst:int -> int list

(** [src] reaches [dst] without passing through [avoid]. *)
val reaches : t -> avoid:int -> src:int -> dst:int -> bool

(** Lazy per-function CFG bundle for a linked program. *)
type program_cfgs

val of_program : Minic.Program.t -> program_cfgs
val for_function : program_cfgs -> string -> t option

(** CFG and node id of branch [bid]. *)
val locate : program_cfgs -> bid:int -> (t * int) option
