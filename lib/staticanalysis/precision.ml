(** Precision report: static labels vs dynamic ground truth.

    Diffs a static labelling against the labels observed by the dynamic
    analysis (`Concolic.Dynamic`, passed in as a plain {!Minic.Label.map})
    and issues a per-branch verdict.  Dynamic labels are ground truth where
    they exist: a dynamically-symbolic branch really received input-derived
    data on some run, and a dynamically-concrete one never did on the
    explored paths (so a static [Symbolic] there is *spurious* — paid-for
    instrumentation the paper's tradeoff wants to avoid).  [Missed] is a
    soundness violation and should never occur; it is reported loudly
    rather than hidden because the whole point of the report is to make the
    static analysis debuggable.

    The [spurious_rate] — spurious / (confirmed + spurious) — is the
    fraction of *dynamically-refuted* symbolic labels, the headline
    precision metric tracked by the bench tables. *)

open Minic

type verdict =
  | Confirmed  (** static Symbolic, dynamic Symbolic *)
  | Spurious  (** static Symbolic, dynamic Concrete: over-approximation *)
  | Unknown  (** static Symbolic, branch never visited dynamically *)
  | Missed  (** static Concrete, dynamic Symbolic: SOUNDNESS VIOLATION *)
  | Agree_concrete  (** both Concrete *)
  | Unobserved  (** static Concrete, never visited dynamically *)

let verdict_to_string = function
  | Confirmed -> "confirmed"
  | Spurious -> "spurious"
  | Unknown -> "unknown"
  | Missed -> "MISSED"
  | Agree_concrete -> "agree-concrete"
  | Unobserved -> "unobserved"

let classify (s : Label.t) (d : Label.t) : verdict =
  match s, d with
  | Label.Symbolic, Label.Symbolic -> Confirmed
  | Label.Symbolic, Label.Concrete -> Spurious
  | Label.Symbolic, Label.Unvisited -> Unknown
  | (Label.Concrete | Label.Unvisited), Label.Symbolic -> Missed
  | (Label.Concrete | Label.Unvisited), Label.Concrete -> Agree_concrete
  | (Label.Concrete | Label.Unvisited), Label.Unvisited -> Unobserved

type entry = {
  bid : int;
  loc : Loc.t;
  func : string;
  is_lib : bool;
  static_label : Label.t;
  dynamic_label : Label.t;
  verdict : verdict;
  const_value : int option;  (** condition proved constant by constprop *)
  dead : bool;  (** branch proved dead by constprop *)
  witness : string option;  (** provenance chain for symbolic labels *)
}

type report = {
  entries : entry array;
  n_confirmed : int;
  n_spurious : int;
  n_unknown : int;
  n_missed : int;
  n_agree_concrete : int;
  n_unobserved : int;
  spurious_rate : float;
      (** spurious / (confirmed + spurious): dynamically-refuted fraction
          of symbolic labels (0 when nothing was refutable) *)
}

let make ?constprop ?provenance (prog : Program.t) ~(static : Label.map)
    ~(dynamic : Label.map) : report =
  let entries =
    Array.map
      (fun (b : Number.info) ->
        let s = if b.bid < Array.length static then static.(b.bid) else Label.Unvisited in
        let d = if b.bid < Array.length dynamic then dynamic.(b.bid) else Label.Unvisited in
        {
          bid = b.bid;
          loc = b.bloc;
          func = b.bfunc;
          is_lib = b.bis_lib;
          static_label = s;
          dynamic_label = d;
          verdict = classify s d;
          const_value =
            (match constprop with
            | Some cp -> Constprop.branch_const_value cp b.bid
            | None -> None);
          dead =
            (match constprop with
            | Some cp -> Constprop.is_dead cp b.bid
            | None -> false);
          witness =
            (match provenance with
            | Some p when Label.equal s Label.Symbolic ->
                Provenance.explain_branch p b.bid
            | Some _ | None -> None);
        })
      prog.branches
  in
  let count v =
    Array.fold_left (fun n e -> if e.verdict = v then n + 1 else n) 0 entries
  in
  let n_confirmed = count Confirmed in
  let n_spurious = count Spurious in
  let refutable = n_confirmed + n_spurious in
  {
    entries;
    n_confirmed;
    n_spurious;
    n_unknown = count Unknown;
    n_missed = count Missed;
    n_agree_concrete = count Agree_concrete;
    n_unobserved = count Unobserved;
    spurious_rate =
      (if refutable = 0 then 0.0 else float_of_int n_spurious /. float_of_int refutable);
  }

let n_static_symbolic r =
  Array.fold_left
    (fun n e -> if Label.equal e.static_label Label.Symbolic then n + 1 else n)
    0 r.entries

(* ------------------------------------------------------------------ *)
(* Text rendering *)

let entry_to_string (e : entry) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "b%03d %s:%d [%s]%s static=%s dynamic=%s -> %s" e.bid
       e.loc.Loc.file e.loc.Loc.line e.func
       (if e.is_lib then " (lib)" else "")
       (Label.to_string e.static_label)
       (Label.to_string e.dynamic_label)
       (verdict_to_string e.verdict));
  (match e.const_value with
  | Some v -> Buffer.add_string buf (Printf.sprintf "\n      condition constant = %d" v)
  | None -> ());
  if e.dead then Buffer.add_string buf "\n      provably dead";
  (match e.witness with
  | Some w -> Buffer.add_string buf ("\n      witness: " ^ w)
  | None -> ());
  Buffer.contents buf

(** Human-readable report.  By default only symbolic-labelled and [Missed]
    branches are listed in full; [all] lists every branch. *)
let to_text ?(all = false) (r : report) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== static precision report ==\n";
  Array.iter
    (fun e ->
      let interesting =
        all
        || Label.equal e.static_label Label.Symbolic
        || e.verdict = Missed
      in
      if interesting then begin
        Buffer.add_string buf (entry_to_string e);
        Buffer.add_char buf '\n'
      end)
    r.entries;
  Buffer.add_string buf
    (Printf.sprintf
       "branches: %d  static-symbolic: %d\n\
        confirmed: %d  spurious: %d  unknown(sym/unvisited): %d\n\
        agree-concrete: %d  unobserved: %d  missed: %d\n\
        spurious rate: %.1f%% (of %d dynamically-checkable symbolic labels)\n"
       (Array.length r.entries) (n_static_symbolic r) r.n_confirmed r.n_spurious
       r.n_unknown r.n_agree_concrete r.n_unobserved r.n_missed
       (100.0 *. r.spurious_rate)
       (r.n_confirmed + r.n_spurious));
  if r.n_missed > 0 then
    Buffer.add_string buf
      "*** SOUNDNESS VIOLATION: dynamically-symbolic branch labelled \
       Concrete ***\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled: no external dependencies) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let entry_to_json (e : entry) : string =
  Printf.sprintf
    "{\"bid\":%d,\"file\":\"%s\",\"line\":%d,\"func\":\"%s\",\"lib\":%b,\
     \"static\":\"%s\",\"dynamic\":\"%s\",\"verdict\":\"%s\",\"const\":%s,\
     \"dead\":%b%s}"
    e.bid (json_escape e.loc.Loc.file) e.loc.Loc.line (json_escape e.func)
    e.is_lib
    (Label.to_string e.static_label)
    (Label.to_string e.dynamic_label)
    (verdict_to_string e.verdict)
    (match e.const_value with Some v -> string_of_int v | None -> "null")
    e.dead
    (match e.witness with
    | Some w -> Printf.sprintf ",\"witness\":\"%s\"" (json_escape w)
    | None -> "")

let to_json (r : report) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"summary\":{\"branches\":%d,\"static_symbolic\":%d,\
        \"confirmed\":%d,\"spurious\":%d,\"unknown\":%d,\"missed\":%d,\
        \"agree_concrete\":%d,\"unobserved\":%d,\"spurious_rate\":%.4f},\
        \"branches\":["
       (* from the verdict counts, not [entries]: callers may strip the
          per-branch array to emit a summary-only line *)
       (r.n_confirmed + r.n_spurious + r.n_unknown + r.n_missed
      + r.n_agree_concrete + r.n_unobserved)
       (r.n_confirmed + r.n_spurious + r.n_unknown)
       r.n_confirmed r.n_spurious r.n_unknown r.n_missed r.n_agree_concrete
       r.n_unobserved r.spurious_rate);
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (entry_to_json e))
    r.entries;
  Buffer.add_string buf "]}";
  Buffer.contents buf
