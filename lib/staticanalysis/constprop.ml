(** Interprocedural constant propagation and folding.

    The first precision pass of the static pipeline: it proves branch
    conditions constant so that {!Static} can label them [Concrete] no
    matter what the taint analysis says (a condition that always evaluates
    to the same value cannot vary with program input), and it identifies
    provably dead code (arms of constant branches, functions unreachable
    from [main]) whose branches can never execute.

    Structure mirrors {!Taint}: a worklist of (function, context) pairs
    where a context records the constant-ness of each parameter, with
    per-context return summaries.  The analysis is *optimistic* (classic
    Kildall style): the value lattice is [Bot <= Const v <= Top], unresolved
    call summaries start at [Bot], and summaries only rise — callers are
    re-analysed through the dependents map whenever a callee's summary
    rises, so every value recorded at a branch forms a rising chain whose
    join is the final verdict.

    The per-function state is flow-sensitive (over {!Dataflow.Make}) and
    tracks only *pure* scalar locals — [int] variables whose address is
    never taken — so no call or pointer write can invalidate a tracked
    binding behind the analysis' back.  Arithmetic is folded with
    {!Solver.Expr.eval_binop}/[eval_unop], the exact semantics the
    interpreter executes (native-int wrap-around; division by zero and
    out-of-range shifts are runtime crashes, so they are never folded).
    There are deliberately no value-absorbing rules ([0 && e], [e * 0]):
    even if the *value* is fixed, a condition reading input is dynamically
    symbolic, and MiniC's strict [&&]/[||] evaluate both sides.

    Soundness of the two outputs:
    - [branch_const bid = Some v]: every runtime evaluation of branch [bid]
      yields [v] (evaluations that crash never reach the branch hook);
    - [is_dead bid]: branch [bid] is never evaluated at runtime (it sits in
      a dead arm or an unreachable function).

    Constant branches prune dead arms during the analysis itself (the
    {!Dataflow.visit} hints), which is also what downstream passes consume
    through {!branch_visit}. *)

open Minic

type cv = Bot | Const of int | Top

let cv_join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Const x, Const y when x = y -> a
  | (Const _ | Top), (Const _ | Top) -> Top

let cv_equal a b =
  match a, b with
  | Bot, Bot -> true
  | Const x, Const y -> x = y
  | Top, Top -> true
  | (Bot | Const _ | Top), _ -> false

type config = { analyze_lib : bool }

let default_config = { analyze_lib = true }

(* Cap on distinct constant contexts per function; beyond it new call sites
   collapse into the all-Top context (sound, less precise). *)
let max_contexts_per_function = 16

module Smap = Map.Make (struct
  type t = string * cv list

  let compare = Stdlib.compare
end)

module SSet = Set.Make (String)
module SM = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Flow-sensitive domain: constant bindings of the tracked locals of the
   function under analysis.  Absent = Top, so joins drop disagreeing
   entries; the lattice height is bounded by the variable count and [join]
   doubles as a terminating widening. *)

module Dom = struct
  type t = cv SM.t

  let join a b =
    SM.merge
      (fun _ x y ->
        match x, y with
        | Some v, Some w ->
            let j = cv_join v w in
            if j = Top then None else Some j
        | _, _ -> None)
      a b

  let widen = join
  let equal = SM.equal cv_equal
end

module Flow = Dataflow.Make (Dom)

type result = {
  branch_const : int option array;
      (** condition value, when provably constant across all evaluations *)
  dead : bool array;  (** branch provably never evaluated at runtime *)
  contexts : int;  (** (function, context) pairs analysed *)
  collapsed_contexts : int;  (** call sites folded into the all-Top context *)
  widened_loops : int;  (** loop fixpoints finished by widening *)
}

type t = {
  prog : Program.t;
  cfg : config;
  tracked : SSet.t SM.t;  (** per function: pure scalar locals *)
  all_locals : SSet.t SM.t;  (** per function: every param/local name *)
  const_globals : int SM.t;  (** provably immutable scalar globals *)
  branches : cv array;  (** accumulated condition verdict; Bot = dead *)
  mutable summaries : cv Smap.t;  (** (f, ctx) -> return-value verdict *)
  mutable dependents : (string * cv list) list Smap.t;
  mutable queued : (string * cv list) list;
  mutable in_queue : unit Smap.t;
  mutable ctx_count : int SM.t;  (** distinct contexts per function *)
  mutable collapsed : int;
  stats : Dataflow.stats;
}

(* ------------------------------------------------------------------ *)
(* Tracked-variable and immutable-global discovery *)

let locals_of (f : Ast.func) : SSet.t =
  let s = List.fold_left (fun s (p, _) -> SSet.add p s) SSet.empty f.fparams in
  List.fold_left (fun s (d : Ast.var_decl) -> SSet.add d.vname s) s f.flocals

(* Pure scalar locals: [int]-typed, address never taken anywhere in the
   body.  Nothing can alias them, so flow-sensitive bindings survive calls
   and pointer writes. *)
let tracked_of (f : Ast.func) : SSet.t =
  let scalar =
    List.filter_map
      (fun (n, ty) -> if Types.equal ty Types.Tint then Some n else None)
      (f.fparams
      @ List.map (fun (d : Ast.var_decl) -> (d.vname, d.vtyp)) f.flocals)
  in
  let addr_taken =
    Ast.fold_exprs
      (fun acc e ->
        match e with Ast.Addr (Ast.Var x) -> SSet.add x acc | _ -> acc)
      SSet.empty f.fbody
  in
  List.fold_left
    (fun s n -> if SSet.mem n addr_taken then s else SSet.add n s)
    SSet.empty scalar

(* Scalar globals with a constant initialiser (or the zero default) that no
   statement assigns and no pointer can reach: their value is fixed for the
   whole execution. *)
let const_globals_of (prog : Program.t) (pta : Pointsto.t) : int SM.t =
  let candidates =
    List.filter_map
      (fun (d : Ast.var_decl) ->
        if not (Types.equal d.vtyp Types.Tint) then None
        else
          match d.vinit with
          | None -> Some (d.vname, 0)
          | Some (Ast.Cint n) -> Some (d.vname, n)
          | Some (Ast.Unop (Ast.Neg, Ast.Cint n)) -> Some (d.vname, -n)
          | Some _ -> None)
      prog.globals
  in
  let pointed = Pointsto.pointed_cells pta in
  let assigned = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      let locals = locals_of f in
      let global_target (lv : Ast.lval) =
        match lv with
        | Ast.Var x when not (SSet.mem x locals) -> Hashtbl.replace assigned x ()
        | Ast.Var _ | Ast.Index _ | Ast.Star _ -> ()
      in
      Ast.iter_stmts
        (fun s ->
          match s.sdesc with
          | Sassign (lv, _) -> global_target lv
          | Scall (Some lv, _, _) -> global_target lv
          | Scall (None, _, _) | Sif _ | Swhile _ | Sreturn _ | Sbreak
          | Scontinue | Sblock _ ->
              ())
        f.fbody)
    prog.funcs;
  List.fold_left
    (fun m (name, v) ->
      if Hashtbl.mem assigned name || Aloc.Set.mem (Aloc.Global name) pointed
      then m
      else SM.add name v m)
    SM.empty candidates

(* ------------------------------------------------------------------ *)
(* Expression folding, with the interpreter's exact semantics *)

let unop_of : Ast.unop -> Solver.Expr.unop = function
  | Neg -> Solver.Expr.Neg
  | Lognot -> Solver.Expr.Lognot
  | Bitnot -> Solver.Expr.Bitnot

let binop_of : Ast.binop -> Solver.Expr.binop = function
  | Add -> Solver.Expr.Add
  | Sub -> Solver.Expr.Sub
  | Mul -> Solver.Expr.Mul
  | Div -> Solver.Expr.Div
  | Mod -> Solver.Expr.Mod
  | Eq -> Solver.Expr.Eq
  | Ne -> Solver.Expr.Ne
  | Lt -> Solver.Expr.Lt
  | Le -> Solver.Expr.Le
  | Gt -> Solver.Expr.Gt
  | Ge -> Solver.Expr.Ge
  | Land -> Solver.Expr.Land
  | Lor -> Solver.Expr.Lor
  | Band -> Solver.Expr.Band
  | Bor -> Solver.Expr.Bor
  | Bxor -> Solver.Expr.Bxor
  | Shl -> Solver.Expr.Shl
  | Shr -> Solver.Expr.Shr

let rec eval_expr t ~fn (state : Dom.t) (e : Ast.expr) : cv =
  match e with
  | Cint n -> Const n
  | Cstr _ | Addr _ -> Top
  | Lval (Var x) -> (
      let tracked =
        match SM.find_opt fn t.tracked with
        | Some s -> SSet.mem x s
        | None -> false
      in
      if tracked then
        match SM.find_opt x state with Some v -> v | None -> Top
      else
        let is_local =
          match SM.find_opt fn t.all_locals with
          | Some s -> SSet.mem x s
          | None -> false
        in
        if is_local then Top
        else
          match SM.find_opt x t.const_globals with
          | Some v -> Const v
          | None -> Top)
  | Lval (Index _ | Star _) -> Top
  | Unop (op, a) -> (
      match eval_expr t ~fn state a with
      | Const n -> Const (Solver.Expr.eval_unop (unop_of op) n)
      | (Bot | Top) as v -> v)
  | Binop (op, a, b) -> (
      (* no absorbing rules (0 && e, e * 0, ...): a constant *value* is not
         enough — if [e] reads input the condition is dynamically symbolic,
         and MiniC's strict && / || really evaluate both sides, so
         [0 && (1/0)] crashes and must not fold ([Undefined] handles it) *)
      match eval_expr t ~fn state a, eval_expr t ~fn state b with
      | Const x, Const y -> (
          match Solver.Expr.eval_binop (binop_of op) x y with
          | v -> Const v
          | exception Solver.Expr.Undefined -> Top)
      | Bot, _ | _, Bot -> Bot
      | (Const _ | Top), (Const _ | Top) -> Top)
  | Ecall _ -> Top

(* ------------------------------------------------------------------ *)
(* Worklist, summaries, contexts *)

let enqueue t key =
  if not (Smap.mem key t.in_queue) then begin
    t.in_queue <- Smap.add key () t.in_queue;
    t.queued <- key :: t.queued
  end

let add_dependent t ~callee ~caller =
  let cur =
    match Smap.find_opt callee t.dependents with Some l -> l | None -> []
  in
  if not (List.mem caller cur) then
    t.dependents <- Smap.add callee (caller :: cur) t.dependents

let summary t key =
  match Smap.find_opt key t.summaries with Some s -> s | None -> Bot

let set_summary t key v =
  let old = summary t key in
  let next = cv_join old v in
  t.summaries <- Smap.add key next t.summaries;
  if not (cv_equal next old) then
    match Smap.find_opt key t.dependents with
    | Some callers -> List.iter (enqueue t) callers
    | None -> ()

let top_ctx (f : Ast.func) : cv list = List.map (fun _ -> Top) f.fparams

(* Intern a call context, collapsing into all-Top once the per-function
   budget is spent (recorded in [collapsed]). *)
let intern_ctx t (f : Ast.func) (ctx : cv list) : cv list =
  let key = (f.fname, ctx) in
  if Smap.mem key t.summaries then ctx
  else
    let n =
      match SM.find_opt f.fname t.ctx_count with Some n -> n | None -> 0
    in
    if n < max_contexts_per_function then begin
      t.ctx_count <- SM.add f.fname (n + 1) t.ctx_count;
      ctx
    end
    else begin
      if List.exists (function Const _ | Bot -> true | Top -> false) ctx then
        t.collapsed <- t.collapsed + 1;
      top_ctx f
    end

(* [Bot] records nothing: either the branch was not reached yet in the
   rising fixpoint, or it sits behind a call that never returns — in both
   cases a later pass (or nothing at all, if truly dead) supplies the
   verdict. *)
let record_branch t (br : Ast.branch) (v : cv) =
  if br.bid >= 0 && v <> Bot then
    t.branches.(br.bid) <- cv_join t.branches.(br.bid) v

let analyzable t (f : Ast.func) = t.cfg.analyze_lib || not f.fis_lib

(* Request analysis of a callee in a context; returns its current summary
   ([Bot] until some return is seen — optimistic, re-analysed on rise). *)
let request t ~caller_key (f : Ast.func) (ctx : cv list) : cv =
  let ctx = intern_ctx t f ctx in
  let key = (f.fname, ctx) in
  add_dependent t ~callee:key ~caller:caller_key;
  if not (Smap.mem key t.summaries) then begin
    t.summaries <- Smap.add key Bot t.summaries;
    (match SM.find_opt f.fname t.ctx_count with
    | None -> t.ctx_count <- SM.add f.fname 1 t.ctx_count
    | Some _ -> ());
    enqueue t key
  end;
  summary t key

let apply_call t ~fn ~caller_key (state : Dom.t) lvo callee args : Dom.t =
  let ret : cv =
    if String.equal callee "spawn" then begin
      (* the spawned function runs with the given argument; make sure its
         branches are analysed even though no direct call exists *)
      (match args with
      | [ Ast.Cstr target; arg ] -> (
          match Program.find_func t.prog target with
          | Some g when analyzable t g ->
              let bit = eval_expr t ~fn state arg in
              let n = List.length g.fparams in
              let ctx =
                if n = 0 then []
                else bit :: List.init (n - 1) (fun _ -> Top)
              in
              ignore (request t ~caller_key g ctx)
          | Some _ | None -> ())
      | _ ->
          (* unknown spawn target: any function may run *)
          List.iter
            (fun (g : Ast.func) ->
              if analyzable t g then
                ignore (request t ~caller_key g (top_ctx g)))
            t.prog.funcs);
      Top
    end
    else if Builtin.is_builtin callee then Top
    else
      match Program.find_func t.prog callee with
      | None -> Top
      | Some g when not (analyzable t g) -> Top
      | Some g ->
          let ctx =
            List.mapi
              (fun i (_, pty) ->
                if not (Types.equal pty Types.Tint) then Top
                else
                  match List.nth_opt args i with
                  | Some a -> eval_expr t ~fn state a
                  | None -> Top)
              g.fparams
          in
          request t ~caller_key g ctx
  in
  match lvo with
  | Some (Ast.Var x)
    when match SM.find_opt fn t.tracked with
         | Some s -> SSet.mem x s
         | None -> false -> (
      match ret with
      | Const _ | Bot -> SM.add x ret state
      | Top -> SM.remove x state)
  | Some _ | None -> state

let transfer t ~fn ~caller_key (state : Dom.t) (s : Ast.stmt) : Dom.t =
  match s.sdesc with
  | Sassign (Ast.Var x, e)
    when match SM.find_opt fn t.tracked with
         | Some s -> SSet.mem x s
         | None -> false -> (
      match eval_expr t ~fn state e with
      | (Const _ | Bot) as v -> SM.add x v state
      | Top -> SM.remove x state)
  | Sassign _ -> state (* pointer/array writes cannot reach tracked locals *)
  | Scall (lvo, callee, args) -> apply_call t ~fn ~caller_key state lvo callee args
  | Sif _ | Swhile _ | Sreturn _ | Sbreak | Scontinue | Sblock _ -> state

let analyze_one t ((fname, ctx) as key) =
  match Program.find_func t.prog fname with
  | None -> ()
  | Some f ->
      let tracked =
        match SM.find_opt fname t.tracked with Some s -> s | None -> SSet.empty
      in
      (* parameters from the context; other tracked locals start at the
         interpreter's zero-initialised value *)
      let entry =
        List.fold_left2
          (fun st (p, _) v ->
            match v with
            | (Const _ | Bot) when SSet.mem p tracked -> SM.add p v st
            | Const _ | Bot | Top -> st)
          SM.empty f.fparams
          (if List.length ctx = List.length f.fparams then ctx else top_ctx f)
      in
      let entry =
        List.fold_left
          (fun st (d : Ast.var_decl) ->
            if SSet.mem d.vname tracked then SM.add d.vname (Const 0) st else st)
          entry f.flocals
      in
      let ret = ref Bot in
      let client =
        {
          Flow.transfer = (fun st s -> transfer t ~fn:fname ~caller_key:key st s);
          on_branch =
            (fun st br cond ->
              let v = eval_expr t ~fn:fname st cond in
              record_branch t br v;
              match v with
              | Const n when n <> 0 -> Dataflow.Visit_then
              | Const _ -> Dataflow.Visit_else
              | Bot | Top -> Dataflow.Visit_both);
          on_return =
            (fun st e ->
              let v =
                match e with
                | Some e -> eval_expr t ~fn:fname st e
                | None -> Const 0 (* [return;] yields 0, like fall-through *)
              in
              ret := cv_join !ret v);
        }
      in
      (match Flow.func ~stats:t.stats client entry f.fbody with
      | Some _ -> ret := cv_join !ret (Const 0) (* fall-through returns 0 *)
      | None -> ());
      set_summary t key !ret

(* Branches never evaluated by the fixpoint are provably dead: either their
   function is unreachable from [main] (and [spawn] targets), or they sit
   in the pruned arm of a constant branch, or behind a call that provably
   never returns. *)
let analyze ?(cfg = default_config) (prog : Program.t) (pta : Pointsto.t) :
    result =
  let tracked, all_locals =
    List.fold_left
      (fun (tr, al) (f : Ast.func) ->
        (SM.add f.fname (tracked_of f) tr, SM.add f.fname (locals_of f) al))
      (SM.empty, SM.empty) prog.funcs
  in
  let t =
    {
      prog;
      cfg;
      tracked;
      all_locals;
      const_globals = const_globals_of prog pta;
      branches = Array.make (Program.nbranches prog) Bot;
      summaries = Smap.empty;
      dependents = Smap.empty;
      queued = [];
      in_queue = Smap.empty;
      ctx_count = SM.empty;
      collapsed = 0;
      stats = Dataflow.create_stats ();
    }
  in
  (match Program.find_func prog "main" with
  | Some f -> ignore (request t ~caller_key:("main", []) f (top_ctx f))
  | None -> ());
  let iterations = ref 0 in
  let rec drain () =
    match t.queued with
    | [] -> ()
    | key :: rest ->
        t.queued <- rest;
        t.in_queue <- Smap.remove key t.in_queue;
        incr iterations;
        if !iterations < 10_000 then begin
          analyze_one t key;
          drain ()
        end
  in
  drain ();
  let n = Array.length t.branches in
  if t.queued <> [] then
    (* worklist exhausted before the fixpoint: no constancy or deadness
       claim is trustworthy *)
    {
      branch_const = Array.make n None;
      dead = Array.make n false;
      contexts = Smap.cardinal t.summaries;
      collapsed_contexts = t.collapsed;
      widened_loops = t.stats.widened_loops;
    }
  else
    {
      branch_const =
        Array.map
          (function Const v -> Some v | Bot | Top -> None)
          t.branches;
      dead = Array.map (function Bot -> true | Const _ | Top -> false) t.branches;
      contexts = Smap.cardinal t.summaries;
      collapsed_contexts = t.collapsed;
      widened_loops = t.stats.widened_loops;
    }

let branch_const_value (r : result) bid =
  if bid < 0 || bid >= Array.length r.branch_const then None
  else r.branch_const.(bid)

let is_dead (r : result) bid =
  bid >= 0 && bid < Array.length r.dead && r.dead.(bid)

let n_const (r : result) =
  Array.fold_left
    (fun n v -> if Option.is_some v then n + 1 else n)
    0 r.branch_const

let n_dead (r : result) =
  Array.fold_left (fun n d -> if d then n + 1 else n) 0 r.dead

(** Arm-visit hint for downstream flow-sensitive passes: which arms of a
    branch can execute, given the constancy verdict. *)
let branch_visit (r : result) bid : Dataflow.visit =
  match branch_const_value r bid with
  | Some v when v <> 0 -> Dataflow.Visit_then
  | Some _ -> Dataflow.Visit_else
  | None -> Dataflow.Visit_both
