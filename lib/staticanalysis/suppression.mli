(** Proof-producing probe-elision analysis.

    Proves, per instrumented branch, that its log bit is statically
    redundant and emits a deterministic reconstruction rule the replay side
    evaluates instead of consuming a bit.  Every rule carries a checkable
    witness; {!verify} re-derives each rule against the {!Cfg} before a
    table is trusted.

    Calls on a path are modelled by transitive may-write summaries
    (functions with bodies) or the {!Minic.Builtin.taints_args} pointer
    arguments (builtins); only unmodelled effects — [checkpoint], [spawn],
    unknown names — conservatively kill every operand a pointer could
    reach. *)

type rule =
  | Forced of { polarity : bool }
      (** every execution takes side [polarity] (constant condition, or
          decided by the arm of a dominating branch) *)
  | Implied_by of { dom : int; polarity : bool }
      (** outcome equals ([polarity]) or negates the last bit consumed at
          the strictly-dominating, instrumented, non-elided branch [dom] *)
  | Invariant_of of { loop : int }
      (** condition invariant in loop [loop]: first execution per loop
          entry is logged, later ones repeat the branch's last bit *)

type kind = Const_cond | Arm_forced | Dom_implied | Loop_invariant

val kind_to_string : kind -> string

type proof = { p_bid : int; p_rule : rule; p_kind : kind; p_witness : string }

type t = {
  nbranches : int;
  rules : rule option array;
  proofs : proof array;  (** one per elided branch, ascending bid *)
  dead : bool array;
  n_const : int;
  n_arm : int;
  n_implied : int;
  n_invariant : int;
}

val n_elided : t -> int
val rule_of : t -> int -> rule option
val elided : t -> int -> bool

(** {2 Wire codec} — codes [f1]/[f0], [d<dom>+]/[d<dom>-], [i<loop>];
    tables serialize as ["bid=code,bid=code,..."] sorted by bid. *)

val rule_to_code : rule -> string
val rule_to_string : rule -> string
val rule_of_code : string -> (rule, string) result
val table_to_string : (int * rule) list -> string
val table_of_string : string -> ((int * rule) list, string) result
val to_table : t -> (int * rule) list

(** Decode into a dense rule array; fail-closed on out-of-range or
    duplicate bids, dangling references, and implied-by rules whose
    dominator is itself elided. *)
val of_table :
  nbranches:int -> (int * rule) list -> (rule option array, string) result

(** {2 Analysis and proof checking} *)

(** Derive the best rule per instrumented live branch.  [pta]/[constprop]
    are recomputed when not supplied. *)
val analyze :
  ?pta:Pointsto.t ->
  ?constprop:Constprop.result ->
  instrumented:bool array ->
  Minic.Program.t ->
  t

(** Re-derive every claimed rule from scratch; rejects rules on dead or
    (when [instrumented] is given) uninstrumented branches.  Anything a
    field report claims must pass this before replay trusts it. *)
val verify :
  ?pta:Pointsto.t ->
  ?constprop:Constprop.result ->
  ?instrumented:bool array ->
  Minic.Program.t ->
  (int * rule) list ->
  (unit, string) result

(** Structural condition implication: [Some true] when [b] is taken iff
    [a] is, [Some false] when taken iff [a] is not (exposed for tests). *)
val implies : Minic.Ast.expr -> Minic.Ast.expr -> bool option

(** {2 Reconstruction} — one state machine shared by the field side (skip
    the write) and the replay side (synthesize the missing bit).  Drive
    [on_branch] for every executed branch, elided or not, instrumented or
    not; call [record] wherever a bit is actually logged or consumed. *)

module Recon : sig
  type action =
    | Consume  (** log / consume a bit as usual, then call [record] *)
    | Elide of bool  (** skip the bit; a full log would carry this value *)
    | Elide_unknown
        (** elided but the referenced bit is unavailable: treat like an
            exhausted reader *)

  type t

  val create : rule option array -> t
  val on_branch : t -> bid:int -> iter:int -> action
  val record : t -> bid:int -> bool -> unit
end

(** {2 Reports} — mirror {!Precision}'s text / strict-JSON style. *)

type verdict = Not_instrumented | Dead | Logged | Elided of kind

val verdict_to_string : verdict -> string

val report_to_text :
  ?all:bool -> t -> Minic.Program.t -> instrumented:bool array -> string

(** [extra] is spliced verbatim into the summary object (must start with
    "," when non-empty). *)
val report_to_json :
  ?extra:string -> t -> Minic.Program.t -> instrumented:bool array -> string

val describe : t -> string
