(** Interprocedural constant propagation and folding.

    Runs after {!Pointsto} and before {!Taint}: proves branch conditions
    constant (so {!Static} can label them [Concrete] regardless of taint)
    and identifies provably dead branches (pruned arms of constant
    branches, functions unreachable from [main] and [spawn] targets).

    Only *pure* scalar locals — [int] variables whose address is never
    taken — are tracked flow-sensitively, so the bindings are immune to
    pointer writes and callee side effects.  Folding uses
    {!Solver.Expr.eval_binop} / [eval_unop], the interpreter's exact
    semantics; expressions that would crash at runtime (division by zero,
    out-of-range shifts) are never folded. *)

(** Optimistic value lattice, [Bot <= Const v <= Top].  [Bot] is the
    not-yet-computed / unreachable element: unresolved call summaries start
    there and only rise, so interprocedural constants survive the fixpoint
    ([Top] would leak into callers analysed before their callees). *)
type cv = Bot | Const of int | Top

type config = { analyze_lib : bool }

val default_config : config

(** Distinct constant contexts analysed per function before new call sites
    collapse into the all-[Top] context. *)
val max_contexts_per_function : int

type result = {
  branch_const : int option array;
      (** per-bid condition value, when provably constant *)
  dead : bool array;  (** per-bid: branch provably never evaluated *)
  contexts : int;  (** (function, context) pairs analysed *)
  collapsed_contexts : int;  (** call sites folded into the all-Top context *)
  widened_loops : int;  (** loop fixpoints finished by widening *)
}

val analyze : ?cfg:config -> Minic.Program.t -> Pointsto.t -> result

(** [Some v] iff every runtime evaluation of branch [bid] yields [v].
    Out-of-range bids return [None]. *)
val branch_const_value : result -> int -> int option

(** Branch [bid] is provably never evaluated at runtime. *)
val is_dead : result -> int -> bool

val n_const : result -> int
val n_dead : result -> int

(** Arm-visit hint for downstream flow-sensitive passes. *)
val branch_visit : result -> int -> Dataflow.visit
