(** Checkpointed field runs.

    Like {!Instrument.Field_run}, but every [checkpoint()] executed by the
    program discards the branch and syscall logs accumulated so far and
    snapshots the structure of global state.  A crash then ships only the
    *final epoch*'s logs plus the last snapshot — bounding both the storage
    at the user site and the replay horizon at the developer site, which is
    the point of §6's proposal. *)

type result = {
  outcome : Interp.Crash.outcome;
  cost : Interp.Cost.t;
  output : string;
  branch_log : Instrument.Branch_log.log;  (** final epoch only *)
  syscall_log : Instrument.Syscall_log.log option;  (** final epoch only *)
  snapshot : Snapshot.t option;  (** at the last checkpoint, if any *)
  epochs : int;  (** checkpoints taken *)
  discarded_bits : int;  (** bits dropped at checkpoints *)
  total_bits : int;  (** bits a checkpoint-less run would have shipped *)
}

let run ?(log_syscalls = true) ~(plan : Instrument.Plan.t)
    (sc : Concolic.Scenario.t) : result =
  let world, handle = Osmodel.World.kernel sc.world in
  ignore world;
  let writer = ref (Instrument.Branch_log.Writer.create ()) in
  let sys_log = ref (if log_syscalls then Some (Instrument.Syscall_log.create ()) else None) in
  let snapshot = ref None in
  let epochs = ref 0 in
  let discarded = ref 0 in
  let side_cost = Interp.Cost.create () in
  let hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid ~iter:_ ~taken ~cond:_ ->
          if Instrument.Plan.is_instrumented plan bid then begin
            Instrument.Branch_log.Writer.add_bit !writer taken;
            Interp.Cost.charge_logged_branch side_cost
          end);
      on_checkpoint =
        (fun access ->
          discarded := !discarded + Instrument.Branch_log.Writer.nbits !writer;
          writer := Instrument.Branch_log.Writer.create ();
          if log_syscalls then sys_log := Some (Instrument.Syscall_log.create ());
          snapshot := Some (Snapshot.capture ~epoch:!epochs access);
          incr epochs);
    }
  in
  let kernel req =
    let res = handle req in
    (match !sys_log with
    | Some log when Osmodel.Sysreq.loggable req ->
        Instrument.Syscall_log.record log ~kind:(Osmodel.Sysreq.req_name req)
          ~value:(Osmodel.Sysreq.res_int res);
        Interp.Cost.charge_logged_syscall side_cost
    | _ -> ());
    Interp.Kernel.concrete_reply res
  in
  let cfg =
    {
      Interp.Eval.inputs = Interp.Inputs.of_strings sc.args;
      kernel;
      hooks;
      max_steps = sc.max_steps;
      scheduler = None;
    }
  in
  let r = Interp.Eval.run sc.prog cfg in
  let cost = r.cost in
  cost.instr <- cost.instr + side_cost.instr;
  cost.logged_branches <- side_cost.logged_branches;
  cost.logged_syscalls <- side_cost.logged_syscalls;
  let final = Instrument.Branch_log.finish !writer in
  {
    outcome = r.outcome;
    cost;
    output = r.output;
    branch_log = final;
    syscall_log = Option.map Instrument.Syscall_log.finish !sys_log;
    snapshot = !snapshot;
    epochs = !epochs;
    discarded_bits = !discarded;
    total_bits = !discarded + final.nbits;
  }

(** Assemble the bug report (final-epoch logs) plus the snapshot needed by
    {!Creplay.reproduce}.  [None] if the run did not crash. *)
let report_of ~(sc : Concolic.Scenario.t) ~(plan : Instrument.Plan.t)
    (r : result) : (Instrument.Report.t * Snapshot.t option) option =
  match r.outcome with
  | Interp.Crash.Crash crash ->
      Some
        ( {
            Instrument.Report.program = sc.name;
            method_used = plan.meth;
            cohort = plan.Instrument.Plan.cohort;
            branch_log = Instrument.Report.Raw r.branch_log;
            syscall_log = r.syscall_log;
            schedule_log = None (* the checkpointed server is single-threaded *);
            crash;
            shape = Concolic.Scenario.shape_of sc;
            (* checkpointed field runs do not apply suppression: the
               restore protocol discards pre-checkpoint bits, which would
               invalidate the reconstruction cursors *)
            suppression = [];
          },
          r.snapshot )
  | Interp.Crash.Exit _ | Interp.Crash.Budget_exhausted | Interp.Crash.Aborted _
    ->
      None
