(** Deterministic pseudo-random number generator (64-bit LCG).

    Used for every source of simulated-kernel non-determinism (partial read
    sizes, ready-set ordering, connection arrival) so that field runs are
    reproducible given their seed, while still exercising the
    non-determinism-handling paths of the paper (§2.3, §3.3). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed * 2654435761 + 1) }

let next t =
  (* Knuth MMIX LCG *)
  t.state <-
    Int64.add (Int64.mul t.state 6364136223846793005L) 1442695040888963407L;
  t.state

(* SplitMix64 finalizer: a full-avalanche 64-bit mixer, so derived states
   share no low-dimensional lattice structure with the parent LCG. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = mix64 (next t) }

let derive t ~index =
  Int64.to_int
    (Int64.shift_right_logical
       (mix64 (Int64.add t.state (Int64.of_int ((2 * index) + 1))))
       2)

(** Uniform int in [0, bound) ; [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else
    let v = Int64.to_int (Int64.shift_right_logical (next t) 17) in
    v mod bound

(** Uniform int in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range" else lo + int t (hi - lo + 1)

let bool t = int t 2 = 1

(** Fisher-Yates shuffle (in place). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
