(** Deterministic pseudo-random number generator (64-bit LCG).

    Drives every source of simulated-kernel non-determinism (partial read
    sizes, ready-set ordering, connection arrival, the field thread
    scheduler) so that a (config, seed) pair fully determines behaviour. *)

type t

val create : int -> t

(** Split off an independent child generator: the parent advances once and
    the child's state is a SplitMix64-mixed image of that draw, so the two
    streams are decorrelated.  This is the one sanctioned way to fan a seed
    out to sub-tasks (the fuzzer's per-case and per-phase streams) — never
    the global [Stdlib.Random] state, which [bin/check.sh] rejects in [lib/]
    and [bench/]. *)
val split : t -> t

(** A replayable per-index seed derived from [t]'s current state without
    advancing it: [derive t ~index] is stable for a given (seed, index)
    pair, and suitable for printing so one fuzz case can be re-run alone. *)
val derive : t -> index:int -> int

(** Uniform int in [0, bound); raises [Invalid_argument] on bound <= 0. *)
val int : t -> int -> int

(** Uniform int in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** Fisher-Yates shuffle (in place). *)
val shuffle : t -> 'a array -> unit
