(** The unified counter-snapshot view that [Engine.stats], [Guided.stats]
    and [Solver.Cache.snapshot] all convert into (the record types survive
    for the bench tables). *)

type snapshot = {
  scope : string;  (** e.g. ["engine"], ["replay"], ["solver.cache"] *)
  counters : (string * int) list;  (** monotonic counts, emission order *)
  gauges : (string * float) list;  (** point-in-time values (rates, seconds) *)
}

val make : ?gauges:(string * float) list -> scope:string -> (string * int) list -> snapshot
val find : snapshot -> string -> int option
val gauge : snapshot -> string -> float option

(** Sum counters pointwise (union of names); right-biased on gauges;
    left scope wins. *)
val merge : snapshot -> snapshot -> snapshot

(** Flatten several scoped snapshots into one, names prefixed by their
    original scope. *)
val union : scope:string -> snapshot list -> snapshot

(** Snapshot of a handle's metric registry (counters plus histogram
    count/mean/min/max gauges), sorted by name. *)
val of_core : ?scope:string -> Core.t -> snapshot

val pp : Format.formatter -> snapshot -> unit
val to_string : snapshot -> string

(** Strict-JSON object: [{"scope": .., "counters": {..}, "gauges": {..}}]. *)
val to_json : snapshot -> string
