(** Counters and histograms.

    Counters are monotonic ([incr] rejects negative increments, so a
    snapshot can only ever grow — the invariant the tier-1 monotonicity
    test pins down).  Histograms are summaries (count/sum/min/max),
    enough for the solver-time split and span-duration statistics without
    per-observation storage.  Both live in the handle's registry and are
    *pull*-model: nothing reaches the sink until {!publish}.  [sample] is
    the push-model exception — an immediately-emitted time-series point
    (e.g. the exploration frontier depth over time).

    Hot paths should hoist the name lookup with {!counter} and bump the
    returned cell; the cell is an [Atomic.t], so worker domains can share
    it without a lock. *)

type counter = Noop | Cell of int Atomic.t

(** Resolve (or create) a named counter cell.  On a disabled handle the
    returned counter is a no-op. *)
let counter (core : Core.t) (name : string) : counter =
  if not (Core.enabled core) then Noop else Cell (Core.counter_cell core name)

(** Add [by] (default 1) to the counter.  Raises [Invalid_argument] on a
    negative increment: counters are monotonic by contract. *)
let incr ?(by = 1) (c : counter) =
  if by < 0 then invalid_arg "Telemetry.Metrics.incr: negative increment";
  match c with
  | Noop -> ()
  | Cell cell -> ignore (Atomic.fetch_and_add cell by)

(** [incr_named core name] without hoisting the lookup (cold paths). *)
let incr_named ?(by = 1) (core : Core.t) (name : string) =
  if Core.enabled core then incr ~by (Cell (Core.counter_cell core name))

(** Current value of a named counter (0 if never incremented). *)
let counter_value (core : Core.t) (name : string) : int =
  if not (Core.enabled core) then 0
  else Atomic.get (Core.counter_cell core name)

(** Record one observation into a named histogram. *)
let observe (core : Core.t) (name : string) (v : float) =
  if Core.enabled core then begin
    let h = Core.hist_cell core name in
    Mutex.lock h.Core.h_mu;
    h.Core.h_count <- h.Core.h_count + 1;
    h.Core.h_sum <- h.Core.h_sum +. v;
    if v < h.Core.h_min then h.Core.h_min <- v;
    if v > h.Core.h_max then h.Core.h_max <- v;
    Mutex.unlock h.Core.h_mu
  end

(** Time [f] and record the elapsed seconds into histogram [name]. *)
let time (core : Core.t) (name : string) (f : unit -> 'a) : 'a =
  if not (Core.enabled core) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    match f () with
    | v ->
        observe core name (Unix.gettimeofday () -. t0);
        v
    | exception e ->
        observe core name (Unix.gettimeofday () -. t0);
        raise e
  end

(** Emit one timestamped time-series point straight to the sink. *)
let sample (core : Core.t) (name : string) (v : float) =
  if Core.enabled core then
    Core.emit core (Event.Sample { name; t = Core.now core; value = v })

(** Emit every registry counter's current value as a [Counter] event (the
    trace's final-totals section).  Histogram summaries are emitted as
    [Sample]s named [<hist>.count/.sum/.min/.max].  Call once per stage or
    at process end; counters stay in the registry, so publishing twice
    emits the newer (never smaller) values again. *)
let publish (core : Core.t) =
  if Core.enabled core then begin
    let t = Core.now core in
    Core.fold_counters core
      (fun name v () -> Core.emit core (Event.Counter { name; t; value = v }))
      ();
    Core.fold_hists core
      (fun name (count, sum, minv, maxv) () ->
        Core.emit core
          (Event.Sample { name = name ^ ".count"; t; value = float_of_int count });
        if count > 0 then begin
          Core.emit core (Event.Sample { name = name ^ ".sum"; t; value = sum });
          Core.emit core (Event.Sample { name = name ^ ".min"; t; value = minv });
          Core.emit core (Event.Sample { name = name ^ ".max"; t; value = maxv })
        end)
      ()
  end
