(** The telemetry handle: clock, span-id generator, metric registry and the
    sink every event is routed to.  Disabled handles short-circuit every
    operation on a single field load (see DESIGN.md §5d for the overhead
    argument). *)

type hist = {
  h_mu : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t

(** The shared no-op handle: spans run their body directly, metric updates
    return immediately, nothing is ever emitted. *)
val disabled : t

(** An enabled handle over [sink] (default {!Sink.null}: counters and
    histograms accumulate, span events are discarded). *)
val create : ?sink:Sink.t -> unit -> t

val enabled : t -> bool

(** Seconds since the handle was created. *)
val now : t -> float

val fresh_id : t -> int
val emit : t -> Event.t -> unit
val flush : t -> unit

(** {1 Registry access (used by {!Metrics} and {!Counters})} *)

val counter_cell : t -> string -> int Atomic.t
val hist_cell : t -> string -> hist
val fold_counters : t -> (string -> int -> 'a -> 'a) -> 'a -> 'a

(** Folds [(count, sum, min, max)] summaries per histogram. *)
val fold_hists : t -> (string -> int * float * float * float -> 'a -> 'a) -> 'a -> 'a
