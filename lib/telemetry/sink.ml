(** Pluggable telemetry sinks.

    A sink is two closures: [emit] receives every event, [flush] is called
    when the owning stage (or the whole process) is done with the handle.
    The three stock sinks cover the paper's measurement needs: [null]
    (disabled observation — the overhead baseline), [jsonl] (the [--trace]
    machine-readable artifact) and [memory] (in-process collection for the
    pretty span-tree printer and the tests).

    Sinks must be thread-safe: a parallel exploration emits from every
    worker domain.  [jsonl] and [memory] serialize internally; [tee]
    inherits its children's guarantees. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

(** Discards everything.  A handle over the null sink still accumulates
    registry counters; use {!Core.disabled} for a no-op handle. *)
let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

(** One strict-JSON object per line on [oc].  The channel is flushed on
    [flush]; closing it is the caller's business. *)
let jsonl (oc : out_channel) : t =
  let mu = Mutex.create () in
  {
    emit =
      (fun e ->
        let line = Event.to_json e in
        Mutex.lock mu;
        output_string oc line;
        output_char oc '\n';
        Mutex.unlock mu);
    flush =
      (fun () ->
        Mutex.lock mu;
        flush oc;
        Mutex.unlock mu);
  }

(** In-memory collection; the getter returns events in emission order. *)
let memory () : t * (unit -> Event.t list) =
  let mu = Mutex.create () in
  let events = ref [] in
  ( {
      emit =
        (fun e ->
          Mutex.lock mu;
          events := e :: !events;
          Mutex.unlock mu);
      flush = (fun () -> ());
    },
    fun () ->
      Mutex.lock mu;
      let l = List.rev !events in
      Mutex.unlock mu;
      l )

(** Duplicate every event to both sinks. *)
let tee (a : t) (b : t) : t =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }
