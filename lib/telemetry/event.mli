(** Telemetry events: the vocabulary every sink consumes.

    Timestamps are seconds relative to the owning handle's creation. *)

type attr_value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * attr_value) list

type t =
  | Span_begin of {
      id : int;
      parent : int option;
      name : string;
      t : float;
      attrs : attrs;
    }
  | Span_end of { id : int; name : string; t : float; attrs : attrs }
  | Sample of { name : string; t : float; value : float }
      (** one point of a time series, emitted as it is observed *)
  | Counter of { name : string; t : float; value : int }
      (** final (monotonic) counter value, emitted on publish *)

val timestamp : t -> float

(** One-line strict-JSON form, the unit of the [--trace] JSONL output. *)
val to_json : t -> string

(**/**)

(* exposed for the JSONL writer and the trace pretty-printer *)
val json_escape : string -> string
val json_float : float -> string
val attr_value_to_json : attr_value -> string
