(** Trace decoding, validation and pretty-printing for sink event streams
    and [--trace] JSONL artifacts. *)

(** Parse a whole JSONL trace (one event per non-empty line); errors carry
    the 1-based line number. *)
val of_jsonl : string -> (Event.t list, string) result

type summary = { spans : int; events : int; roots : int }

(** Check the invariants CI enforces on every emitted trace: span ids
    begun at most once and ended exactly once, end time >= begin time,
    parents resolving to spans still open when the child begins. *)
val validate : Event.t list -> (summary, string) result

(** Parse and validate a JSONL trace file. *)
val validate_file : string -> (summary, string) result

type node = {
  id : int;
  name : string;
  start_t : float;
  end_t : float;
  begin_attrs : Event.attrs;
  end_attrs : Event.attrs;
  children : node list;  (** in start order *)
}

(** Rebuild the span forest (roots in start order); tolerant of unclosed
    spans and orphaned parents so it is usable on invalid traces too. *)
val tree : Event.t list -> node list

(** Render the span forest with durations and attributes. *)
val pp_tree : Format.formatter -> node list -> unit

val tree_to_string : Event.t list -> string
