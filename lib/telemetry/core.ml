(** The telemetry handle: clock, span-id generator, metric registry and the
    sink every event is routed to.

    A handle is either *enabled* (it owns a sink and a registry) or the
    shared {!disabled} constant.  Every instrumentation site checks
    [enabled] first, so the disabled path is one immutable-field load and a
    branch — the "near-zero cost when observation is off" requirement that
    lets the telemetry default into every API without a measurable
    instrumentation tax (the same overhead discipline the paper applies to
    the branch log itself).

    The clock is the process wall clock relative to handle creation; the
    repo's exploration budgets use the same [Unix.gettimeofday] source, so
    span durations and engine budgets are directly comparable. *)

type hist = {
  h_mu : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  enabled : bool;
  sink : Sink.t;
  next_id : int Atomic.t;
  reg_mu : Mutex.t;  (** guards registry table shape, not counter bumps *)
  counters : (string, int Atomic.t) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  t0 : float;
}

let make ~enabled ~sink =
  {
    enabled;
    sink;
    next_id = Atomic.make 1;
    reg_mu = Mutex.create ();
    counters = Hashtbl.create 32;
    hists = Hashtbl.create 16;
    t0 = Unix.gettimeofday ();
  }

(** The shared no-op handle: spans run their body directly, metric updates
    return immediately, nothing is ever emitted. *)
let disabled = make ~enabled:false ~sink:Sink.null

(** An enabled handle over [sink] (default {!Sink.null}: counters and
    histograms accumulate, span events are discarded). *)
let create ?(sink = Sink.null) () = make ~enabled:true ~sink

let enabled t = t.enabled

(** Seconds since the handle was created. *)
let now t = Unix.gettimeofday () -. t.t0

let fresh_id t = Atomic.fetch_and_add t.next_id 1

let emit t e = if t.enabled then t.sink.Sink.emit e

let flush t = if t.enabled then t.sink.Sink.flush ()

(* -------------------------------------------------------------- *)
(* Registry access (for Metrics) *)

let counter_cell t name : int Atomic.t =
  Mutex.lock t.reg_mu;
  let c =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace t.counters name c;
        c
  in
  Mutex.unlock t.reg_mu;
  c

let hist_cell t name : hist =
  Mutex.lock t.reg_mu;
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h =
          { h_mu = Mutex.create (); h_count = 0; h_sum = 0.0;
            h_min = infinity; h_max = neg_infinity }
        in
        Hashtbl.replace t.hists name h;
        h
  in
  Mutex.unlock t.reg_mu;
  h

let fold_counters t f acc =
  Mutex.lock t.reg_mu;
  let r = Hashtbl.fold (fun k c acc -> f k (Atomic.get c) acc) t.counters acc in
  Mutex.unlock t.reg_mu;
  r

let fold_hists t f acc =
  Mutex.lock t.reg_mu;
  let r =
    Hashtbl.fold
      (fun k h acc ->
        Mutex.lock h.h_mu;
        let snap = (h.h_count, h.h_sum, h.h_min, h.h_max) in
        Mutex.unlock h.h_mu;
        f k snap acc)
      t.hists acc
  in
  Mutex.unlock t.reg_mu;
  r
