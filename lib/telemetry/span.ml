(** Monotonic-clock spans with automatic nesting.

    [with_ core ~name f] opens a span, runs [f], and closes the span when
    [f] returns or raises.  Nesting is tracked per domain (a
    [Domain.DLS]-held stack), so sequential code gets parent links for
    free; code that fans out to worker domains passes [?parent] explicitly
    (each domain has its own stack).  A span carries two attribute sets:
    the opening ones, fixed at begin, and end attributes added with {!add}
    while the span runs — the natural place for a stage's result counters.

    On a disabled handle [with_] runs the body directly with the shared
    {!noop} span: no id allocation, no clock read, no emission. *)

type live = {
  core : Core.t;
  id : int;
  name : string;
  mu : Mutex.t;
  mutable end_attrs : Event.attrs;  (** reversed; workers may add concurrently *)
}

type t = Noop | Live of live

let noop = Noop

let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_parent () =
  match !(Domain.DLS.get stack_key) with [] -> None | p :: _ -> Some p

(** Span id, [None] for the no-op span. *)
let id = function Noop -> None | Live l -> Some l.id

(** Add an end attribute (thread-safe; no-op on the no-op span). *)
let add (sp : t) (k : string) (v : Event.attr_value) =
  match sp with
  | Noop -> ()
  | Live l ->
      Mutex.lock l.mu;
      l.end_attrs <- (k, v) :: l.end_attrs;
      Mutex.unlock l.mu

let addi sp k i = add sp k (Event.Int i)
let addf sp k f = add sp k (Event.Float f)
let adds sp k s = add sp k (Event.Str s)

let with_ (core : Core.t) ?(attrs : Event.attrs = []) ?parent ~(name : string)
    (f : t -> 'a) : 'a =
  if not (Core.enabled core) then f Noop
  else begin
    let sid = Core.fresh_id core in
    let stack = Domain.DLS.get stack_key in
    let parent_id =
      match parent with
      | Some (Live l) -> Some l.id
      | Some Noop -> None
      | None -> current_parent ()
    in
    Core.emit core
      (Event.Span_begin
         { id = sid; parent = parent_id; name; t = Core.now core; attrs });
    stack := sid :: !stack;
    let sp = Live { core; id = sid; name; mu = Mutex.create (); end_attrs = [] } in
    let finish ~error =
      (match !stack with
      | x :: rest when x = sid -> stack := rest
      | l -> stack := List.filter (fun x -> x <> sid) l);
      let end_attrs =
        match sp with
        | Live l ->
            Mutex.lock l.mu;
            let a = List.rev l.end_attrs in
            Mutex.unlock l.mu;
            a
        | Noop -> []
      in
      let end_attrs =
        match error with
        | Some msg -> end_attrs @ [ ("error", Event.Str msg) ]
        | None -> end_attrs
      in
      Core.emit core
        (Event.Span_end { id = sid; name; t = Core.now core; attrs = end_attrs })
    in
    match f sp with
    | v ->
        finish ~error:None;
        v
    | exception e ->
        finish ~error:(Some (Printexc.to_string e));
        raise e
  end
