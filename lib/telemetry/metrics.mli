(** Counters (monotonic) and histograms (count/sum/min/max summaries),
    pull-model via {!publish}; {!sample} pushes immediate time-series
    points.  All operations are thread-safe and no-ops on a disabled
    handle. *)

type counter

(** Resolve (or create) a named counter cell; hoist this out of hot loops.
    On a disabled handle the returned counter is a no-op. *)
val counter : Core.t -> string -> counter

(** Add [by] (default 1).  Raises [Invalid_argument] on a negative
    increment: counters are monotonic by contract. *)
val incr : ?by:int -> counter -> unit

(** [incr_named core name] without hoisting the lookup (cold paths). *)
val incr_named : ?by:int -> Core.t -> string -> unit

(** Current value of a named counter (0 if never incremented or handle
    disabled). *)
val counter_value : Core.t -> string -> int

(** Record one observation into a named histogram. *)
val observe : Core.t -> string -> float -> unit

(** Time [f] and record the elapsed seconds into histogram [name] (also on
    exception). *)
val time : Core.t -> string -> (unit -> 'a) -> 'a

(** Emit one timestamped time-series point straight to the sink. *)
val sample : Core.t -> string -> float -> unit

(** Emit every registry counter as a [Counter] event and histogram
    summaries as [Sample]s ([<hist>.count/.sum/.min/.max]). *)
val publish : Core.t -> unit
