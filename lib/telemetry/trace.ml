(** Trace decoding, validation and pretty-printing.

    A trace is the event stream a sink saw: in-memory (from
    {!Sink.memory}) or re-read from a JSONL file (the [--trace]
    artifact).  [of_jsonl] parses the latter with a small strict-JSON
    reader — the emitter and the reader live in the same library, so the
    format is round-trip tested.  [validate] checks the structural
    invariants CI enforces on every emitted trace: every span closed
    exactly once, start before end, parents resolving to already-open
    spans.  [tree]/[pp_tree] rebuild and render the span hierarchy. *)

(* ------------------------------------------------------------------ *)
(* Minimal strict-JSON reader (objects, arrays, strings, numbers,
   true/false/null) — just enough for our own emitted lines. *)

type json =
  | Null
  | Jbool of bool
  | Num of float
  | Jstr of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "bad \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* our emitter only escapes control chars, so ASCII is
                     enough here; other code points round-trip as '?' *)
                  Buffer.add_char b
                    (if code < 128 then Char.chr code else '?')
              | _ -> fail "bad escape"));
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
        pos := !pos + 4;
        Jbool true
    | Some 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
        pos := !pos + 5;
        Jbool false
    | Some 'n' when !pos + 4 <= n && String.sub s !pos 4 = "null" ->
        pos := !pos + 4;
        Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* JSON -> event *)

let ( let* ) = Result.bind

let obj_field o k =
  match o with
  | Obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> Ok v
      | None -> Error ("missing field " ^ k))
  | _ -> Error "not an object"

let as_int = function
  | Num f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error "expected integer"

let as_float = function Num f -> Ok f | Null -> Ok Float.nan | _ -> Error "expected number"
let as_string = function Jstr s -> Ok s | _ -> Error "expected string"

let attr_of_json : json -> (Event.attr_value, string) result = function
  | Jstr s -> Ok (Event.Str s)
  | Jbool b -> Ok (Event.Bool b)
  | Num f when Float.is_integer f && Float.abs f < 1e15 ->
      Ok (Event.Int (int_of_float f))
  | Num f -> Ok (Event.Float f)
  | Null -> Ok (Event.Float Float.nan)
  | Arr _ | Obj _ -> Error "nested attribute values are not supported"

let attrs_of_json (j : json) : (Event.attrs, string) result =
  match j with
  | Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* v = attr_of_json v in
          Ok ((k, v) :: acc))
        (Ok []) fields
      |> Result.map List.rev
  | _ -> Error "attrs must be an object"

let event_of_json (j : json) : (Event.t, string) result =
  let* ev = Result.bind (obj_field j "ev") as_string in
  match ev with
  | "span_begin" ->
      let* id = Result.bind (obj_field j "id") as_int in
      let* name = Result.bind (obj_field j "name") as_string in
      let* t = Result.bind (obj_field j "t") as_float in
      let* attrs =
        match obj_field j "attrs" with
        | Ok a -> attrs_of_json a
        | Error _ -> Ok []
      in
      let* parent =
        match obj_field j "parent" with
        | Ok p -> Result.map Option.some (as_int p)
        | Error _ -> Ok None
      in
      Ok (Event.Span_begin { id; parent; name; t; attrs })
  | "span_end" ->
      let* id = Result.bind (obj_field j "id") as_int in
      let* name = Result.bind (obj_field j "name") as_string in
      let* t = Result.bind (obj_field j "t") as_float in
      let* attrs =
        match obj_field j "attrs" with
        | Ok a -> attrs_of_json a
        | Error _ -> Ok []
      in
      Ok (Event.Span_end { id; name; t; attrs })
  | "sample" ->
      let* name = Result.bind (obj_field j "name") as_string in
      let* t = Result.bind (obj_field j "t") as_float in
      let* value = Result.bind (obj_field j "value") as_float in
      Ok (Event.Sample { name; t; value })
  | "counter" ->
      let* name = Result.bind (obj_field j "name") as_string in
      let* t = Result.bind (obj_field j "t") as_float in
      let* value = Result.bind (obj_field j "value") as_int in
      Ok (Event.Counter { name; t; value })
  | s -> Error ("unknown event kind " ^ s)

(** Parse a whole JSONL trace (one event per non-empty line). *)
let of_jsonl (contents : string) : (Event.t list, string) result =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest when String.trim l = "" -> go (lineno + 1) acc rest
    | l :: rest -> (
        match Result.bind (parse_json l) event_of_json with
        | Ok e -> go (lineno + 1) (e :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Validation *)

type summary = { spans : int; events : int; roots : int }

(** Check the invariants CI enforces on every emitted trace:
    - span ids are begun at most once and ended exactly once;
    - no end without a begin, end time >= begin time;
    - a parent id refers to a span already begun (and not yet ended) when
      the child begins.
    Samples and counters are unconstrained apart from parsing. *)
let validate (events : Event.t list) : (summary, string) result =
  let open_spans : (int, float) Hashtbl.t = Hashtbl.create 32 in
  let closed : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let spans = ref 0 in
  let roots = ref 0 in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go = function
    | [] ->
        if Hashtbl.length open_spans > 0 then
          err "%d span(s) never closed" (Hashtbl.length open_spans)
        else Ok { spans = !spans; events = List.length events; roots = !roots }
    | Event.Span_begin b :: rest ->
        if Hashtbl.mem open_spans b.id || Hashtbl.mem closed b.id then
          err "span id %d begun twice" b.id
        else begin
          (match b.parent with
          | None -> Ok ()
          | Some p ->
              if Hashtbl.mem open_spans p then Ok ()
              else err "span %d (%s): parent %d is not an open span" b.id b.name p)
          |> function
          | Error _ as e -> e
          | Ok () ->
              Hashtbl.replace open_spans b.id b.t;
              incr spans;
              if b.parent = None then incr roots;
              go rest
        end
    | Event.Span_end e :: rest -> (
        match Hashtbl.find_opt open_spans e.id with
        | None ->
            if Hashtbl.mem closed e.id then err "span id %d ended twice" e.id
            else err "span id %d ended but never begun" e.id
        | Some t0 ->
            if e.t < t0 then
              err "span %d (%s): end %.6f before begin %.6f" e.id e.name e.t t0
            else begin
              Hashtbl.remove open_spans e.id;
              Hashtbl.replace closed e.id ();
              go rest
            end)
    | (Event.Sample _ | Event.Counter _) :: rest -> go rest
  in
  go events

(** Parse and validate a JSONL trace file. *)
let validate_file (path : string) : (summary, string) result =
  let contents =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  Result.bind (of_jsonl contents) validate

(* ------------------------------------------------------------------ *)
(* Span tree *)

type node = {
  id : int;
  name : string;
  start_t : float;
  end_t : float;
  begin_attrs : Event.attrs;
  end_attrs : Event.attrs;
  children : node list;  (** in start order *)
}

(** Rebuild the span forest (roots in start order).  Unclosed spans get
    [end_t = start_t]; orphaned parents demote the child to a root, so the
    printer is usable even on a trace that fails {!validate}. *)
let tree (events : Event.t list) : node list =
  let begins : (int, int option * string * float * Event.attrs) Hashtbl.t =
    Hashtbl.create 32
  in
  let ends : (int, float * Event.attrs) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (function
      | Event.Span_begin b ->
          Hashtbl.replace begins b.id (b.parent, b.name, b.t, b.attrs);
          order := b.id :: !order
      | Event.Span_end e -> Hashtbl.replace ends e.id (e.t, e.attrs)
      | Event.Sample _ | Event.Counter _ -> ())
    events;
  let order = List.rev !order in
  let children_of : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  let root_ids = ref [] in
  List.iter
    (fun id ->
      let parent, _, _, _ = Hashtbl.find begins id in
      match parent with
      | Some p when Hashtbl.mem begins p ->
          Hashtbl.replace children_of p
            (id :: Option.value ~default:[] (Hashtbl.find_opt children_of p))
      | _ -> root_ids := id :: !root_ids)
    order;
  let rec build id : node =
    let _, name, start_t, begin_attrs = Hashtbl.find begins id in
    let end_t, end_attrs =
      Option.value ~default:(start_t, []) (Hashtbl.find_opt ends id)
    in
    let kids =
      Option.value ~default:[] (Hashtbl.find_opt children_of id)
      |> List.rev |> List.map build
    in
    { id; name; start_t; end_t; begin_attrs; end_attrs; children = kids }
  in
  List.rev_map build !root_ids

let attr_to_string (k, v) = Printf.sprintf "%s=%s" k (Event.attr_value_to_json v)

(** Render the span forest with durations and end attributes:
    {v
    analyze                             0.132s
      analyze.dynamic                   0.101s  runs=42 coverage=0.87
    v} *)
let pp_tree (fmt : Format.formatter) (nodes : node list) =
  let rec pp_node depth (n : node) =
    let label = String.make (2 * depth) ' ' ^ n.name in
    let attrs =
      n.begin_attrs @ n.end_attrs |> List.map attr_to_string |> String.concat " "
    in
    Format.fprintf fmt "%-42s %8.3fs%s@\n" label (n.end_t -. n.start_t)
      (if attrs = "" then "" else "  " ^ attrs);
    List.iter (pp_node (depth + 1)) n.children
  in
  List.iter (pp_node 0) nodes

let tree_to_string (events : Event.t list) : string =
  Format.asprintf "%a" pp_tree (tree events)
