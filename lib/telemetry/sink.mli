(** Pluggable telemetry sinks: [null] (overhead baseline), [jsonl]
    ([--trace] artifact), [memory] (pretty-printer and tests), [tee].
    All stock sinks are thread-safe. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

(** Discards everything.  A handle over the null sink still accumulates
    registry counters; use {!Core.disabled} for a fully no-op handle. *)
val null : t

(** One strict-JSON object per line on the channel.  The channel is flushed
    on [flush]; closing it is the caller's business. *)
val jsonl : out_channel -> t

(** In-memory collection; the getter returns events in emission order. *)
val memory : unit -> t * (unit -> Event.t list)

(** Duplicate every event to both sinks. *)
val tee : t -> t -> t
