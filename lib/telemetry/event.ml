(** Telemetry events: the vocabulary every sink consumes.

    Four event kinds cover the whole observation surface of the pipeline:
    span begin/end pairs (nested, monotonic timestamps), point-in-time
    samples (time series such as the exploration frontier depth) and final
    counter values published when a stage closes.  Timestamps are seconds
    relative to the owning handle's creation, so traces are
    machine-comparable without a shared epoch. *)

type attr_value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * attr_value) list

type t =
  | Span_begin of {
      id : int;
      parent : int option;
      name : string;
      t : float;
      attrs : attrs;
    }
  | Span_end of { id : int; name : string; t : float; attrs : attrs }
  | Sample of { name : string; t : float; value : float }
      (** one point of a time series, emitted as it is observed *)
  | Counter of { name : string; t : float; value : int }
      (** final (monotonic) counter value, emitted on publish *)

let timestamp = function
  | Span_begin s -> s.t
  | Span_end s -> s.t
  | Sample s -> s.t
  | Counter c -> c.t

(* ------------------------------------------------------------------ *)
(* Strict-JSON encoding (one object per line; CI parses it) *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    (* shortest decimal that parses back to the same float, so a trace
       round-trips exactly through of_jsonl *)
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let attr_value_to_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Bool b -> if b then "true" else "false"

let attrs_to_json (attrs : attrs) =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": %s" (json_escape k) (attr_value_to_json v)))
    attrs;
  Buffer.add_char b '}';
  Buffer.contents b

(** One-line strict-JSON form, the unit of the [--trace] JSONL output. *)
let to_json (e : t) : string =
  match e with
  | Span_begin s ->
      Printf.sprintf
        "{\"ev\": \"span_begin\", \"id\": %d%s, \"name\": \"%s\", \"t\": %s, \
         \"attrs\": %s}"
        s.id
        (match s.parent with
        | Some p -> Printf.sprintf ", \"parent\": %d" p
        | None -> "")
        (json_escape s.name) (json_float s.t) (attrs_to_json s.attrs)
  | Span_end s ->
      Printf.sprintf
        "{\"ev\": \"span_end\", \"id\": %d, \"name\": \"%s\", \"t\": %s, \
         \"attrs\": %s}"
        s.id (json_escape s.name) (json_float s.t) (attrs_to_json s.attrs)
  | Sample s ->
      Printf.sprintf "{\"ev\": \"sample\", \"name\": \"%s\", \"t\": %s, \"value\": %s}"
        (json_escape s.name) (json_float s.t) (json_float s.value)
  | Counter c ->
      Printf.sprintf "{\"ev\": \"counter\", \"name\": \"%s\", \"t\": %s, \"value\": %d}"
        (json_escape c.name) (json_float c.t) c.value
