(** The unified counter-snapshot view.

    The repo used to expose three divergent record types for the same
    idea — [Engine.stats], [Guided.stats] and [Solver.Cache.snapshot] —
    each with its own field names and printing code.  A [snapshot] is the
    common shape they all convert into: a scope name, monotonic integer
    counters and point-in-time float gauges.  The record types survive for
    the bench tables; everything that wants "the numbers" generically
    (CLI [--metrics], the JSONL trace, tests) goes through this view. *)

type snapshot = {
  scope : string;  (** e.g. ["engine"], ["replay"], ["solver.cache"] *)
  counters : (string * int) list;  (** monotonic counts, emission order *)
  gauges : (string * float) list;  (** point-in-time values (rates, seconds) *)
}

let make ?(gauges = []) ~scope counters = { scope; counters; gauges }

let find (s : snapshot) name = List.assoc_opt name s.counters
let gauge (s : snapshot) name = List.assoc_opt name s.gauges

(** Sum counters pointwise (union of names); right-biased on gauges.
    Scope is taken from the left operand. *)
let merge (a : snapshot) (b : snapshot) : snapshot =
  let names l = List.map fst l in
  let counter_names =
    names a.counters @ List.filter (fun n -> not (List.mem_assoc n a.counters)) (names b.counters)
  in
  let counters =
    List.map
      (fun n ->
        let va = Option.value ~default:0 (find a n)
        and vb = Option.value ~default:0 (find b n) in
        (n, va + vb))
      counter_names
  in
  let gauges =
    a.gauges
    |> List.filter (fun (n, _) -> not (List.mem_assoc n b.gauges))
    |> fun rest -> rest @ b.gauges
  in
  { scope = a.scope; counters; gauges }

(** Prefix every counter and gauge name with [scope ^ "."] and re-scope;
    used to fold stage snapshots into one flat view. *)
let prefixed (s : snapshot) : (string * int) list * (string * float) list =
  ( List.map (fun (n, v) -> (s.scope ^ "." ^ n, v)) s.counters,
    List.map (fun (n, v) -> (s.scope ^ "." ^ n, v)) s.gauges )

(** Flatten several scoped snapshots into one, names prefixed by their
    original scope. *)
let union ~scope (l : snapshot list) : snapshot =
  let counters = List.concat_map (fun s -> fst (prefixed s)) l in
  let gauges = List.concat_map (fun s -> snd (prefixed s)) l in
  { scope; counters; gauges }

(** Snapshot of a handle's metric registry (counters plus histogram means
    as gauges), sorted by name for stable output. *)
let of_core ?(scope = "metrics") (core : Core.t) : snapshot =
  let counters =
    Core.fold_counters core (fun n v acc -> (n, v) :: acc) []
    |> List.sort compare
  in
  let gauges =
    Core.fold_hists core
      (fun n (count, sum, minv, maxv) acc ->
        if count = 0 then acc
        else
          (n ^ ".mean", sum /. float_of_int count)
          :: (n ^ ".min", minv) :: (n ^ ".max", maxv)
          :: (n ^ ".count", float_of_int count) :: acc)
      []
    |> List.sort compare
  in
  { scope; counters; gauges }

let pp (fmt : Format.formatter) (s : snapshot) =
  Format.fprintf fmt "[%s]@\n" s.scope;
  List.iter (fun (n, v) -> Format.fprintf fmt "  %-36s %d@\n" n v) s.counters;
  List.iter (fun (n, v) -> Format.fprintf fmt "  %-36s %g@\n" n v) s.gauges

let to_string (s : snapshot) = Format.asprintf "%a" pp s

(** Strict-JSON object: [{"scope": .., "counters": {..}, "gauges": {..}}]. *)
let to_json (s : snapshot) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"scope\": \"%s\", \"counters\": {" (Event.json_escape s.scope));
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" (Event.json_escape n) v))
    s.counters;
  Buffer.add_string b "}, \"gauges\": {";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": %s" (Event.json_escape n) (Event.json_float v)))
    s.gauges;
  Buffer.add_string b "}}";
  Buffer.contents b
