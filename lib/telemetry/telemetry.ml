(** Unified telemetry: spans, counters/histograms, pluggable sinks.

    One handle ({!t}) threads through the whole analyze -> plan ->
    field_run -> reproduce pipeline; each stage opens {!Span.with_} spans,
    bumps {!Metrics} counters at run granularity and publishes final
    totals.  {!disabled} (the default everywhere) short-circuits every
    operation on a single field load, so instrumentation stays in the code
    unconditionally — the same bounded-observation-cost discipline the
    paper applies to the branch log itself.  See DESIGN.md §5d. *)

type t = Core.t

(** The shared no-op handle (the default of every [?telemetry] argument). *)
let disabled = Core.disabled

(** An enabled handle over [sink] (default {!Sink.null}: counters
    accumulate, span events are discarded). *)
let create = Core.create

let enabled = Core.enabled

(** Seconds since the handle was created (the trace's time origin). *)
let now = Core.now

(** Flush the handle's sink (does not publish counters — see
    {!Metrics.publish}). *)
let flush = Core.flush

module Event = Event
module Sink = Sink
module Span = Span
module Metrics = Metrics
module Counters = Counters
module Trace = Trace
