(** Monotonic-clock spans with automatic nesting.

    Nesting is tracked per domain; code that fans out to worker domains
    passes [?parent] explicitly.  On a disabled handle the body runs
    directly with the shared {!noop} span. *)

type t

(** The span handed to bodies under a disabled handle. *)
val noop : t

(** Span id, [None] for the no-op span. *)
val id : t -> int option

(** [with_ core ~name f] opens a span, runs [f], closes the span when [f]
    returns or raises (a raising body gets an ["error"] end attribute and
    the exception is re-raised).  [attrs] are fixed at begin; end
    attributes are added with {!add} while the span runs.  [parent]
    overrides the per-domain nesting (needed across [Domain.spawn]). *)
val with_ :
  Core.t ->
  ?attrs:Event.attrs ->
  ?parent:t ->
  name:string ->
  (t -> 'a) ->
  'a

(** Add an end attribute (thread-safe; no-op on the no-op span). *)
val add : t -> string -> Event.attr_value -> unit

val addi : t -> string -> int -> unit
val addf : t -> string -> float -> unit
val adds : t -> string -> string -> unit
