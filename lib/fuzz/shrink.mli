(** Greedy AST shrinker: minimize a failing fuzz case.

    Enumerates single local edits of the generated unit — delete a
    statement, keep one arm of an [if], unwrap a loop body, collapse a
    binary operator to one operand, replace an expression by a constant,
    drop an auxiliary function / global / local declaration, shorten the
    program input — and greedily accepts any edit that both {b strictly
    shrinks} the AST (by {!Minic.Astcmp.size_unit}; inputs shrink
    lexicographically) and {b still fails} the caller's predicate.
    Iterates to a fixpoint, so the result is 1-minimal with respect to the
    edit set.

    The predicate receives a re-printed {!Gen.t}; it is expected to
    re-elaborate and re-run the violated oracle, returning [true] when the
    failure persists (candidates that no longer parse, link or fail are
    simply rejected). *)

(** [minimize ~pred g] returns the shrunk case and the number of accepted
    edits.  [max_steps] bounds accepted edits (default 10_000).
    [telemetry] accumulates [fuzz.shrink.steps] / [fuzz.shrink.tried]
    counters. *)
val minimize :
  ?max_steps:int ->
  ?telemetry:Telemetry.t ->
  pred:(Gen.t -> bool) ->
  Gen.t ->
  Gen.t * int
