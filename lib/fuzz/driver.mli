(** Fuzz campaign driver: generate, elaborate, run the oracles, shrink.

    The fuzz stage plugs into the pipeline the same way every other stage
    does — it consumes a {!Bugrepro.Pipeline.Config.t} (budgets, jobs,
    solver cache, telemetry) and opens [fuzz] / [fuzz.case] / [fuzz.gen] /
    [fuzz.oracle.*] telemetry spans with [fuzz.gen], [fuzz.oracle.*.pass/
    skip/fail], [fuzz.shrink.steps] and [fuzz.violations] counters.

    Heavier oracles rotate across case indices (replay methods cycle
    [Dynamic]/[Static]/[Dynamic_static] with [All_branches] always on; the
    jobs-pool determinism check runs every 4th case, the cache check every
    2nd) so a 200-case smoke finishes inside a CI minute; [thorough]
    disables the rotation. *)

type opts = {
  seed : int;  (** campaign seed; per-case seeds derive from it *)
  count : int;
  shrink : bool;  (** minimize any violation before reporting it *)
  save_corpus : string option;  (** save every generated case to this dir *)
  thorough : bool;  (** all oracles and all methods on every case *)
  config : Bugrepro.Pipeline.Config.t;
}

(** Seed 42, 100 cases, no shrinking, smoke budgets. *)
val default_opts : opts

type violation = {
  case_seed : int;  (** re-run alone with [Gen.generate ~seed:case_seed] *)
  oracle : string;
  detail : string;
  src : string;  (** the offending program, pre-shrink *)
  shrunk : Gen.t option;
  repro_path : string option;  (** corpus file written for this violation *)
}

type summary = {
  cases : int;
  gen_errors : int;  (** elaboration failures: parse/round-trip/link *)
  crashed_cases : int;  (** cases whose field run produced a report *)
  passes : int;  (** individual oracle passes across all cases *)
  skips : int;  (** inconclusive oracle runs (no crash, truncation) *)
  violations : violation list;
}

(** No generator errors and no violations. *)
val ok : summary -> bool

(** Run a generation campaign. *)
val run : opts -> summary

(** Replay every [.mc] file under a corpus directory through the oracles. *)
val replay_dir : opts -> string -> summary

val pp_summary : Format.formatter -> summary -> unit
val summary_to_string : summary -> string
