(** The differential oracles, spanning every pipeline stage.

    Five cross-stage invariants, checked per generated case (the sixth —
    the print/parse round trip — is enforced by {!Gen.elaborate} before a
    case ever reaches this module):

    - {b replay}: for each instrumentation method, a crashing field run's
      report must be reproduced by guided replay; a search that exhausts
      its space without reproducing is a violation, and the failure
      message flags searches killed purely by concrete-log contradictions
      ([case3b]) on the logged prefix.  (Contradiction dead ends that are
      later backtracked are legitimate even under [All_branches]: a store
      through a concretized symbolic index can make a field-symbolic
      branch concrete in a replay run — see the minimized witness in
      [test/corpus/known/].)
    - {b labels}: every branch dynamic analysis observed symbolic must be
      statically labelled symbolic ({!Staticanalysis.Precision},
      [n_missed = 0] — the paper's soundness direction).
    - {b determinism}: [Engine.explore ~jobs:1] and [~jobs:4] find the
      same crash set and the same symbolic-branch set, whenever both
      explorations exhaust the frontier (truncated searches are not
      comparable and are skipped).
    - {b cache}: for the path constraint sets the exploration actually
      produced (and their negated-tail variants), a fresh
      {!Solver.Cache}-backed solve must agree with the direct solve on
      satisfiability, and any cached model must satisfy the query.
    - {b wire}: [serialize -> deserialize -> serialize] is the identity on
      every generated report, and the decoded report preserves the crash
      site.
    - {b suppression}: the probe-elision analysis' own table passes the
      proof checker; a suppressed field run's shadow log equals the
      suppression-free log bit for bit with zero reconstruction
      mismatches and unchanged outcome/output; and, when the run
      crashed, the table survives the wire and guided replay from the
      suppressed report reaches the same verdict — with the same §3.1
      case counters absent timeouts — as replay from the raw report.
    - {b incremental}: for the collected path constraint sets (and their
      negated-tail variants), the scoped incremental solver must agree
      with the from-scratch solver on satisfiability — across a plain
      scoped solve, a pop-half/re-push re-sync, the enumeration-first
      portfolio strategy, and two passes of the full {!Solver.Incr}
      pipeline (the second exercises learned cores: a learned core must
      never flip a fresh [Sat] to [Unsat]); every [Sat] model must
      satisfy the query — for the sliced full pipeline, its independence
      slice, the part a model answers for.  [Unknown] is tolerated on
      both sides.
    - {b salvage}: truncating the wire form at every byte boundary and
      salvaging ({!Instrument.Wire.deserialize_salvage}) never raises,
      never misreads a truncation as an unknown version, preserves the
      crash site and program on every successful salvage, recovers a bit
      count monotone in the cut, and yields a report the strict reader
      round-trips; one deep cut (half the branch log) is then actually
      replayed and must come back [Reproduced] at the recorded site or a
      clean [Not_reproduced] — never an exception.
    - {b streaming}: a small report set (duplicates under distinct
      provenance paths plus one torn copy) triaged through the batch
      entry point and through a live {!Triage.Service} — same items,
      seeded-shuffled arrival, tiny ingest bursts with eager replay
      between ticks — must render byte-identical timing-stripped
      summaries ([Summary.to_json ~timing:false]); a timeout-status flip
      between the two modes is wall-clock noise and skips.
    - {b encoding}: per method, the same field run with the streaming
      {!Instrument.Codec} on and off agrees on outcome, output and the
      exact bit log; the shipped token stream validates and carries
      exactly the logged bit count; a crashing run's v4 report round
      trips the strict wire byte-identically; and torn or byte-corrupted
      [branch-enc] payloads fail the strict reader closed while salvage
      keeps the crash site and never recovers more bits than shipped.

    Oracles that cannot run (no crash, truncated exploration, replay
    timeout) report [Skip] with a reason — a skip is not a pass, and the
    driver counts them separately. *)

type verdict = Pass | Skip of string | Fail of string

type outcome = { oracle : string; verdict : verdict }

type cfg = {
  config : Bugrepro.Pipeline.Config.t;
      (** budgets ([dynamic_budget]/[replay_budget]), [solver_cache],
          [seed] and [telemetry] are read from here — the fuzz stage
          consumes the same knob record as every other pipeline stage *)
  methods : Instrument.Methods.t list;  (** replay methods for this case *)
  check_determinism : bool;
  check_cache : bool;
  check_salvage : bool;
  check_suppression : bool;
  check_incremental : bool;
  check_streaming : bool;
  check_encoding : bool;
  det_jobs : int;  (** worker count for the parallel half of determinism *)
  max_steps : int;  (** interpreter step cap per exploration run *)
}

(** Moderate per-case budgets tuned for the CI smoke; telemetry disabled. *)
val default_cfg : cfg

(** Run the oracles on one elaborated case.  [only] restricts to a single
    oracle by name (the shrinker's predicate uses this). *)
val run : ?only:string -> cfg -> Gen.case -> outcome list

val failed : outcome list -> outcome list
val verdict_to_string : verdict -> string
