(** Seeded random MiniC program generator (see gen.mli).

    Design constraints, all load-bearing:

    - {b Round-trippable}: the AST must be exactly what the parser would
      rebuild from its printed form.  Locals are emitted with [vinit = None]
      (the parser hoists declarations and turns initializers into
      assignments), calls appear only as [Scall] statements, and [Neg] is
      never applied to an integer literal (the parser folds those).
    - {b Terminating}: every loop is a counter loop [i = 0; while (i < N)
      { ...; i = i + 1; }] whose counter is excluded from the body's
      writable set and which never contains [continue]; [break] only ever
      appears guarded inside a branch.
    - {b Crash-reachable}: planted crash guards compare input bytes against
      the concrete input chosen by the generator itself, so the field run
      is guaranteed to take them (unless an adversarial statement crashes
      first — any deterministic crash serves the replay oracle equally).
    - {b Memory-safe by default}: array indices are masked with
      [e & (2^k - 1)] against power-of-two array sizes and division is
      guarded with [d | 1]; only [adversarial] mode emits raw indices and
      unguarded division, whose crashes are themselves deterministic. *)

open Minic
module Rng = Osmodel.Rng

type cfg = {
  n_aux : int;
  main_stmts : int;
  aux_stmts : int;
  max_depth : int;
  arg_len : int;
  with_file : bool;
  file_len : int;
  big_loop : bool;
  adversarial : bool;
  plant_crash : bool;
}

let default_cfg =
  {
    n_aux = 1;
    main_stmts = 8;
    aux_stmts = 4;
    max_depth = 2;
    arg_len = 4;
    with_file = false;
    file_len = 5;
    big_loop = false;
    adversarial = true;
    plant_crash = true;
  }

let cfg_of_rng rng =
  {
    n_aux = Rng.int rng 3;
    main_stmts = 4 + Rng.int rng 7;
    aux_stmts = 2 + Rng.int rng 4;
    max_depth = 1 + Rng.int rng 2;
    arg_len = 2 + Rng.int rng 5;
    with_file = Rng.int rng 3 = 0;
    file_len = 3 + Rng.int rng 5;
    big_loop = Rng.int rng 6 = 0;
    adversarial = Rng.int rng 4 > 0;
    plant_crash = Rng.int rng 10 < 9;
  }

type t = {
  seed : int;
  cfg : cfg;
  ast : Ast.unit_;
  src : string;
  args : string list;
  files : (string * string) list;
  world_seed : int;
}

(* Input bytes come from this set only: printable, no separators, so the
   corpus format can store them on one comment line. *)
let input_charset = "abcdefghijklmnopqrstuvwxyz0123456789XYZ"

let gen_string rng len =
  String.init len (fun _ ->
      input_charset.[Rng.int rng (String.length input_charset)])

(* ------------------------------------------------------------------ *)
(* Generator state and scopes *)

type st = {
  rng : Rng.t;
  cfg : cfg;
  mutable funcs : (string * int) list;  (** callable earlier aux functions *)
  mutable big_done : bool;  (** the widening loop was already emitted *)
  arg_bytes : int array;
  file_bytes : int array;
}

type scope = {
  scalars : string list;  (** readable int scalars *)
  writable : string list;  (** assignable here (excludes live loop counters) *)
  arrays : (string * int) list;  (** (name, power-of-two size) *)
  ptrs : string list;  (** initialized [int *] variables *)
  ptr_targets : string list;  (** scalars safe to take the address of *)
  depth : int;
  loops : int;  (** loop nesting level = number of live counters *)
  in_main : bool;
}

let pick rng l = List.nth l (Rng.int rng (List.length l))
let stmt d = Ast.mk_stmt d
let branch () = Ast.mk_branch ()
let cint n = Ast.Cint n
let v n = Ast.Lval (Ast.Var n)
let counter k = "i" ^ string_of_int k

let decl name ty = { Ast.vname = name; vtyp = ty; vinit = None; vloc = Loc.none }

(* ------------------------------------------------------------------ *)
(* Expressions *)

let cmp_ops = Ast.[ Eq; Ne; Lt; Le; Gt; Ge ]

let safe_ops =
  Ast.[ Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge; Band; Bor; Bxor; Land; Lor ]

let rec gen_expr st sc depth =
  if depth <= 0 then gen_leaf st sc
  else
    match Rng.int st.rng 12 with
    | 0 | 1 | 2 -> gen_leaf st sc
    | 3 -> (
        let sub = gen_expr st sc (depth - 1) in
        match Rng.int st.rng 3 with
        | 0 -> Ast.Unop (Lognot, sub)
        | 1 -> Ast.Unop (Bitnot, sub)
        | _ -> (
            (* the parser folds -<literal>, so Neg never wraps a constant *)
            match sub with
            | Ast.Cint _ -> Ast.Unop (Bitnot, sub)
            | _ -> Ast.Unop (Neg, sub)))
    | 4 ->
        (* guarded division: [d | 1] is never zero *)
        let op = if Rng.bool st.rng then Ast.Div else Ast.Mod in
        Ast.Binop
          ( op,
            gen_expr st sc (depth - 1),
            Ast.Binop (Bor, gen_expr st sc (depth - 1), cint 1) )
    | 5 ->
        (* masked shift: amounts confined to [0, 7] *)
        let op = if Rng.bool st.rng then Ast.Shl else Ast.Shr in
        Ast.Binop
          ( op,
            gen_expr st sc (depth - 1),
            Ast.Binop (Band, gen_expr st sc (depth - 1), cint 7) )
    | _ ->
        Ast.Binop
          (pick st.rng safe_ops, gen_expr st sc (depth - 1), gen_expr st sc (depth - 1))

and gen_leaf st sc =
  match Rng.int st.rng 8 with
  | 0 | 1 -> cint (Rng.range st.rng (-4) 120)
  | 2 | 3 | 4 -> v (pick st.rng sc.scalars)
  | (5 | 6) when sc.arrays <> [] -> Ast.Lval (masked_index st sc)
  | _ when sc.ptrs <> [] -> Ast.Lval (Ast.Star (v (pick st.rng sc.ptrs)))
  | _ -> v (pick st.rng sc.scalars)

(* In-bounds by construction: [e & (size - 1)] with a power-of-two size is
   always within [0, size). *)
and masked_index st sc =
  let name, size = pick st.rng sc.arrays in
  let idx =
    match Rng.int st.rng 3 with
    | 0 -> cint (Rng.int st.rng size)
    | _ -> Ast.Binop (Band, v (pick st.rng sc.scalars), cint (size - 1))
  in
  Ast.Index (Ast.Var name, idx)

let gen_cond st sc =
  match Rng.int st.rng 4 with
  | 0 -> gen_expr st sc 2
  | _ ->
      Ast.Binop
        (pick st.rng cmp_ops, gen_expr st sc 1, cint (Rng.range st.rng 0 126))

(* ------------------------------------------------------------------ *)
(* Statements *)

let gen_assign st sc =
  [ stmt (Ast.Sassign (Ast.Var (pick st.rng sc.writable), gen_expr st sc 2)) ]

let rec gen_stmt st sc : Ast.stmt list =
  let r = Rng.int st.rng 100 in
  if r < 26 then gen_assign st sc
  else if r < 40 && sc.arrays <> [] then
    [ stmt (Ast.Sassign (masked_index st sc, gen_expr st sc 2)) ]
  else if r < 54 && sc.depth < st.cfg.max_depth then gen_if st sc
  else if r < 64 && sc.depth < st.cfg.max_depth && sc.loops < 3 then
    gen_while st sc
  else if r < 72 && st.funcs <> [] then
    let fname, arity = pick st.rng st.funcs in
    let args = List.init arity (fun _ -> gen_expr st sc 1) in
    [ stmt (Ast.Scall (Some (Ast.Var (pick st.rng sc.writable)), fname, args)) ]
  else if r < 82 && sc.ptrs <> [] then gen_ptr_op st sc
  else if r < 86 && sc.loops > 0 then
    (* guarded break; never [continue], which would skip the increment *)
    [ stmt (Ast.Sif (branch (), gen_cond st sc, [ stmt Ast.Sbreak ], [])) ]
  else if r < 92 then
    [ stmt (Ast.Scall (None, "print_int", [ gen_expr st sc 1 ])) ]
  else if st.cfg.adversarial then gen_adversarial st sc
  else gen_assign st sc

and gen_if st sc =
  let body_sc = { sc with depth = sc.depth + 1 } in
  let then_b = gen_block st body_sc (1 + Rng.int st.rng 2) in
  let else_b =
    if Rng.bool st.rng then gen_block st body_sc (1 + Rng.int st.rng 2) else []
  in
  [ stmt (Ast.Sif (branch (), gen_cond st sc, then_b, else_b)) ]

and gen_while st sc =
  let k = sc.loops in
  let cname = counter k in
  let big = sc.in_main && st.cfg.big_loop && not st.big_done && sc.depth = 0 in
  let bound =
    if big then begin
      st.big_done <- true;
      (* past Dataflow.loop_fixpoint_cap (200): the static fixpoint must
         widen to finish *)
      205 + Rng.int st.rng 60
    end
    else 2 + Rng.int st.rng 4
  in
  let body_sc =
    {
      sc with
      depth = sc.depth + 1;
      loops = k + 1;
      scalars = cname :: sc.scalars;
      writable = List.filter (fun x -> x <> cname) sc.writable;
    }
  in
  let body =
    if big then
      [
        stmt
          (Ast.Sassign
             ( Ast.Var (pick st.rng body_sc.writable),
               Ast.Binop (Add, v (pick st.rng body_sc.scalars), v cname) ));
      ]
    else gen_block st body_sc (1 + Rng.int st.rng 2)
  in
  let inc =
    stmt (Ast.Sassign (Ast.Var cname, Ast.Binop (Add, v cname, cint 1)))
  in
  [
    stmt (Ast.Sassign (Ast.Var cname, cint 0));
    stmt
      (Ast.Swhile
         (branch (), Ast.Binop (Lt, v cname, cint bound), body @ [ inc ]));
  ]

and gen_ptr_op st sc =
  let p = pick st.rng sc.ptrs in
  match Rng.int st.rng 3 with
  | 0 when sc.ptr_targets <> [] ->
      let target =
        if Rng.int st.rng 4 = 0 && sc.arrays <> [] then
          let name, size = pick st.rng sc.arrays in
          Ast.Index (Ast.Var name, cint (Rng.int st.rng size))
        else Ast.Var (pick st.rng sc.ptr_targets)
      in
      [ stmt (Ast.Sassign (Ast.Var p, Ast.Addr target)) ]
  | 1 -> [ stmt (Ast.Sassign (Ast.Star (v p), gen_expr st sc 2)) ]
  | _ ->
      [
        stmt
          (Ast.Sassign
             (Ast.Var (pick st.rng sc.writable), Ast.Lval (Ast.Star (v p))));
      ]

and gen_adversarial st sc =
  match Rng.int st.rng 4 with
  | 0 ->
      (* unguarded division: divisor may be zero at runtime *)
      [
        stmt
          (Ast.Sassign
             ( Ast.Var (pick st.rng sc.writable),
               Ast.Binop
                 ( (if Rng.bool st.rng then Div else Mod),
                   cint (Rng.range st.rng 1 60),
                   gen_expr st sc 1 ) ));
      ]
  | 1 when sc.arrays <> [] ->
      (* raw (unmasked) index: input bytes usually land out of bounds *)
      let name, _ = pick st.rng sc.arrays in
      [
        stmt
          (Ast.Sassign
             (Ast.Index (Ast.Var name, gen_expr st sc 1), gen_expr st sc 1));
      ]
  | 2 -> [ stmt (Ast.Scall (None, "assert", [ gen_cond st sc ])) ]
  | _ -> gen_assign st sc

and gen_block st sc n =
  if n <= 0 then [] else gen_stmt st sc @ gen_block st sc (n - 1)

(* ------------------------------------------------------------------ *)
(* The planted crash site *)

let plant_crash st =
  let from_file =
    st.cfg.with_file && Array.length st.file_bytes > 0 && Rng.bool st.rng
  in
  let buf, bytes =
    if from_file then ("fbuf", st.file_bytes) else ("b0", st.arg_bytes)
  in
  let read_at k = Ast.Lval (Ast.Index (Ast.Var buf, cint k)) in
  let k = Rng.int st.rng (Array.length bytes) in
  let k2 = Rng.int st.rng (Array.length bytes) in
  let bval = bytes.(k) and v2 = bytes.(k2) in
  (* true for the generated input by construction *)
  let guard = Ast.Binop (Eq, read_at k, cint bval) in
  let payload =
    match Rng.int st.rng 4 with
    | 0 -> [ stmt (Ast.Scall (None, "crash", [])) ]
    | 1 ->
        (* input bytes are printable (>= 48), far beyond ga's 8 cells *)
        [ stmt (Ast.Sassign (Ast.Index (Ast.Var "ga", read_at k2), cint 1)) ]
    | 2 ->
        [
          stmt
            (Ast.Sassign
               ( Ast.Var "t0",
                 Ast.Binop (Div, cint 1, Ast.Binop (Sub, read_at k2, cint v2))
               ));
        ]
    | _ ->
        [ stmt (Ast.Scall (None, "assert", [ Ast.Binop (Lt, read_at k2, cint 9) ])) ]
  in
  let payload =
    if Rng.bool st.rng then
      (* nest behind a second guard that also holds for the chosen input *)
      let slack = Rng.int st.rng 5 in
      [
        stmt
          (Ast.Sif
             ( branch (),
               Ast.Binop (Ge, read_at k2, cint (v2 - slack)),
               payload,
               [] ));
      ]
    else payload
  in
  stmt (Ast.Sif (branch (), guard, payload, []))

(* ------------------------------------------------------------------ *)
(* Functions *)

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 2

let aux_counters cfg = List.init (cfg.max_depth + 1) counter

let gen_aux st idx =
  let cfg = st.cfg in
  let name = "fn" ^ string_of_int idx in
  let counters = aux_counters cfg in
  let scalars = [ "p0"; "p1"; "t0"; "t1"; "g0"; "g1" ] in
  let sc =
    {
      scalars;
      writable = [ "t0"; "t1"; "g0"; "g1" ];
      arrays = [ ("ga", 8) ];
      ptrs = [ "gp" ];
      ptr_targets = [ "g0"; "g1" ];
      depth = 0;
      loops = 0;
      in_main = false;
    }
  in
  let body = gen_block st sc cfg.aux_stmts in
  let body =
    if Rng.bool st.rng then
      (* an early return, always guarded *)
      let early =
        stmt
          (Ast.Sif
             ( branch (),
               gen_cond st sc,
               [ stmt (Ast.Sreturn (Some (gen_expr st sc 1))) ],
               [] ))
      in
      let pos = Rng.int st.rng (List.length body + 1) in
      List.filteri (fun i _ -> i < pos) body
      @ [ early ]
      @ List.filteri (fun i _ -> i >= pos) body
    else body
  in
  let body = body @ [ stmt (Ast.Sreturn (Some (gen_expr st sc 2))) ] in
  {
    Ast.fname = name;
    fret = Types.Tint;
    fparams = [ ("p0", Types.Tint); ("p1", Types.Tint) ];
    flocals =
      List.map (fun n -> decl n Types.Tint) ([ "t0"; "t1" ] @ counters);
    fbody = body;
    floc = Loc.none;
    fis_lib = false;
  }

let gen_main st =
  let cfg = st.cfg in
  let cap = pow2_at_least (cfg.arg_len + 2) in
  let fcap = pow2_at_least (cfg.file_len + 1) in
  let counters = aux_counters cfg in
  let base_locals =
    [ decl "b0" (Types.Tarr (Types.Tint, cap)); decl "n0" Types.Tint ]
    @ (if cfg.with_file then
         [
           decl "fd" Types.Tint;
           decl "nf" Types.Tint;
           decl "fbuf" (Types.Tarr (Types.Tint, fcap));
         ]
       else [])
    @ List.map (fun n -> decl n Types.Tint) ([ "t0"; "t1"; "t2" ] @ counters)
    @ [ decl "lp" (Types.Tptr Types.Tint) ]
  in
  let prologue =
    [
      stmt
        (Ast.Scall
           ( Some (Ast.Var "n0"),
             "arg",
             [ cint 0; Ast.Lval (Ast.Var "b0"); cint cap ] ));
      stmt (Ast.Sassign (Ast.Var "gp", Ast.Addr (Ast.Var "g0")));
      stmt (Ast.Sassign (Ast.Var "lp", Ast.Addr (Ast.Var "t0")));
      stmt (Ast.Sassign (Ast.Var "t1", v "n0"));
    ]
    @
    if cfg.with_file then
      [
        stmt
          (Ast.Scall
             (Some (Ast.Var "fd"), "open", [ Ast.Cstr "f0.txt"; cint 0 ]));
        stmt (Ast.Sassign (Ast.Var "nf", cint 0));
        stmt
          (Ast.Sif
             ( branch (),
               Ast.Binop (Ge, v "fd", cint 0),
               [
                 stmt
                   (Ast.Scall
                      ( Some (Ast.Var "nf"),
                        "read",
                        [ v "fd"; Ast.Lval (Ast.Var "fbuf"); cint fcap ] ));
               ],
               [] ));
      ]
    else []
  in
  let sc =
    {
      scalars =
        [ "n0"; "t0"; "t1"; "t2"; "g0"; "g1" ]
        @ (if cfg.with_file then [ "fd"; "nf" ] else []);
      writable = [ "t0"; "t1"; "t2"; "g0"; "g1" ];
      arrays =
        [ ("b0", cap); ("ga", 8) ]
        @ (if cfg.with_file then [ ("fbuf", fcap) ] else []);
      ptrs = [ "gp"; "lp" ];
      ptr_targets = [ "g0"; "g1"; "t0"; "t2" ];
      depth = 0;
      loops = 0;
      in_main = true;
    }
  in
  let body = gen_block st sc cfg.main_stmts in
  let body =
    if cfg.plant_crash then begin
      let pos = Rng.int st.rng (List.length body + 1) in
      List.filteri (fun i _ -> i < pos) body
      @ [ plant_crash st ]
      @ List.filteri (fun i _ -> i >= pos) body
    end
    else body
  in
  let body =
    prologue @ body
    @ [
        stmt (Ast.Scall (None, "print_int", [ v "t0" ]));
        stmt (Ast.Sreturn (Some (cint 0)));
      ]
  in
  {
    Ast.fname = "main";
    fret = Types.Tint;
    fparams = [];
    flocals = base_locals;
    fbody = body;
    floc = Loc.none;
    fis_lib = false;
  }

let globals =
  [
    decl "g0" Types.Tint;
    decl "g1" Types.Tint;
    decl "ga" (Types.Tarr (Types.Tint, 8));
    decl "gp" (Types.Tptr Types.Tint);
  ]

let generate ?cfg ~seed () =
  let rng = Rng.create seed in
  let cfg =
    match cfg with Some c -> c | None -> cfg_of_rng (Rng.split rng)
  in
  let arg = gen_string rng cfg.arg_len in
  let file =
    if cfg.with_file then Some ("f0.txt", gen_string rng cfg.file_len)
    else None
  in
  let st =
    {
      rng;
      cfg;
      funcs = [];
      big_done = false;
      arg_bytes = Array.init (String.length arg) (fun i -> Char.code arg.[i]);
      file_bytes =
        (match file with
        | Some (_, c) -> Array.init (String.length c) (fun i -> Char.code c.[i])
        | None -> [||]);
    }
  in
  let aux =
    List.init cfg.n_aux (fun i ->
        let f = gen_aux st i in
        st.funcs <- (f.Ast.fname, 2) :: st.funcs;
        f)
  in
  let main = gen_main st in
  let ast = { Ast.u_globals = globals; u_funcs = aux @ [ main ] } in
  {
    seed;
    cfg;
    ast;
    src = Pretty.unit_to_string ast;
    args = [ arg ];
    files = (match file with Some f -> [ f ] | None -> []);
    world_seed = Rng.int rng 100_000;
  }

(* ------------------------------------------------------------------ *)
(* Elaboration: print -> parse -> compare -> link *)

type case = { gen : t; parsed : Ast.unit_; prog : Program.t }

type error = Parse of string | Roundtrip | Link of string

let error_to_string = function
  | Parse m -> "parse: " ^ m
  | Roundtrip -> "print/parse round trip changed the AST"
  | Link m -> "link: " ^ m

let case_name g = Printf.sprintf "fuzz-%d" g.seed

let elaborate (g : t) : (case, error) result =
  match Parser.parse_unit ~file:(case_name g) g.src with
  | exception Parser.Error (m, _) -> Error (Parse m)
  | exception e -> Error (Parse (Printexc.to_string e))
  | parsed -> (
      if not (Astcmp.equal_unit g.ast parsed) then Error Roundtrip
      else
        match Program.link ~name:(case_name g) ~app:parsed ~libs:[] () with
        | exception Program.Link_error m -> Error (Link m)
        | exception e -> Error (Link (Printexc.to_string e))
        | prog -> Ok { gen = g; parsed; prog })

let scenario ?(max_steps = 200_000) (c : case) =
  let world =
    {
      Osmodel.World.default_config with
      seed = c.gen.world_seed;
      files = c.gen.files;
    }
  in
  Concolic.Scenario.make ~name:(case_name c.gen) ~args:c.gen.args ~world
    ~max_steps c.prog
