(** On-disk fuzz corpus (see corpus.mli). *)

let ok_byte c =
  (* must survive a one-line comment directive and the comma separator *)
  Char.code c > 32 && Char.code c < 127 && c <> ',' && c <> ':'

let check_text what s =
  String.iter
    (fun c ->
      if not (ok_byte c) then
        invalid_arg
          (Printf.sprintf "Corpus.save: %s contains unsafe byte %#x" what
             (Char.code c)))
    s

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save ~dir ?name (g : Gen.t) =
  mkdir_p dir;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "seed-%d" g.Gen.seed
  in
  let path = Filename.concat dir (name ^ ".mc") in
  let buf = Buffer.create (String.length g.Gen.src + 256) in
  Buffer.add_string buf (Printf.sprintf "// fuzz-seed: %d\n" g.Gen.seed);
  Buffer.add_string buf
    (Printf.sprintf "// fuzz-world-seed: %d\n" g.Gen.world_seed);
  if g.Gen.args <> [] then begin
    List.iter (check_text "argument") g.Gen.args;
    Buffer.add_string buf
      (Printf.sprintf "// fuzz-args: %s\n" (String.concat "," g.Gen.args))
  end;
  List.iter
    (fun (fname, contents) ->
      check_text "file name" fname;
      check_text "file contents" contents;
      Buffer.add_string buf
        (Printf.sprintf "// fuzz-file: %s:%s\n" fname contents))
    g.Gen.files;
  Buffer.add_string buf g.Gen.src;
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  path

let directive line key =
  let prefix = "// " ^ key ^ ":" in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let load path : (Gen.t, string) result =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | content -> (
      let seed = ref 0 and world_seed = ref 0 in
      let args = ref [] and files = ref [] in
      List.iter
        (fun line ->
          match directive line "fuzz-seed" with
          | Some v -> seed := int_of_string v
          | None -> (
              match directive line "fuzz-world-seed" with
              | Some v -> world_seed := int_of_string v
              | None -> (
                  match directive line "fuzz-args" with
                  | Some v -> args := String.split_on_char ',' v
                  | None -> (
                      match directive line "fuzz-file" with
                      | Some v -> (
                          match split_on_first ':' v with
                          | Some (name, data) -> files := !files @ [ (name, data) ]
                          | None -> ())
                      | None -> ()))))
        (String.split_on_char '\n' content);
      match
        Minic.Parser.parse_unit ~file:(Filename.basename path) content
      with
      | exception Minic.Parser.Error (m, _) -> Error ("parse: " ^ m)
      | exception e -> Error ("parse: " ^ Printexc.to_string e)
      | ast ->
          Ok
            {
              Gen.seed = !seed;
              cfg = Gen.default_cfg;
              ast;
              src = content;
              args = !args;
              files = !files;
              world_seed = !world_seed;
            })

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> [ (dir, Error e) ]
  | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".mc")
      |> List.sort String.compare
      |> List.map (fun f ->
             let path = Filename.concat dir f in
             (path, load path))
