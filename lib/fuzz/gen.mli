(** Seeded random MiniC program generator.

    Emits programs that are well-typed by construction over the {!Minic.Ast}
    surface: nested branches, bounded counter loops (occasionally long
    enough to push the dataflow fixpoint into widening), pointer writes
    through a global [int *] (the strong-update trigger), calls to generated
    auxiliary functions, symbolic reads ([arg]/[open]/[read]) and planted
    crash sites whose guards compare input bytes against the concrete input
    the generator chose — so the field run is guaranteed to reach them.

    Everything is derived from one {!Osmodel.Rng} stream: a (seed) pair
    fully determines the program, its arguments and its simulated files. *)

type cfg = {
  n_aux : int;  (** auxiliary functions (each may call lower-numbered ones) *)
  main_stmts : int;  (** random statements in [main] besides the prologue *)
  aux_stmts : int;  (** random statements per auxiliary function *)
  max_depth : int;  (** nesting depth of generated [if]/[while] *)
  arg_len : int;  (** bytes of the single (symbolic) program argument *)
  with_file : bool;  (** also provide a simulated input file *)
  file_len : int;
  big_loop : bool;  (** include a loop long enough to force widening *)
  adversarial : bool;  (** unguarded division, raw indices, asserts *)
  plant_crash : bool;  (** plant a guard-protected crash site *)
}

val default_cfg : cfg

(** Draw a program shape (all [cfg] knobs) from the stream. *)
val cfg_of_rng : Osmodel.Rng.t -> cfg

(** A generated program together with the inputs it was built against. *)
type t = {
  seed : int;
  cfg : cfg;
  ast : Minic.Ast.unit_;  (** as built; locations are all [Loc.none] *)
  src : string;  (** [Pretty]-printed source *)
  args : string list;
  files : (string * string) list;
  world_seed : int;
}

val generate : ?cfg:cfg -> seed:int -> unit -> t

(** A generated program after the frontend round trip: printed, re-parsed
    (giving every statement a real source location, which crash-site
    identity needs) and linked. *)
type case = { gen : t; parsed : Minic.Ast.unit_; prog : Minic.Program.t }

type error =
  | Parse of string  (** the printed source does not parse *)
  | Roundtrip  (** parse (print ast) is not [Astcmp]-equal to [ast] *)
  | Link of string  (** type or link error: the generator emitted bad code *)

val error_to_string : error -> string

(** Print, re-parse, round-trip-compare and link.  Any [Error] is a bug in
    the generator or the frontend — the fuzz driver reports it as an oracle
    violation in its own right. *)
val elaborate : t -> (case, error) result

(** The concrete run environment the program was generated against. *)
val scenario : ?max_steps:int -> case -> Concolic.Scenario.t
