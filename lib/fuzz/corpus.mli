(** On-disk fuzz corpus: self-contained [.mc] repro files.

    A corpus file is plain MiniC source prefixed with comment directives
    the MiniC lexer already skips, so every file is simultaneously a valid
    program and a complete run recipe:

    {v
    // fuzz-seed: 12345
    // fuzz-world-seed: 678
    // fuzz-args: ab3x
    // fuzz-file: f0.txt:q0z
    int g0;
    ...
    v}

    Replay parses the {e stored source} (it does not re-generate from the
    seed), so checked-in repros stay stable as the generator evolves; the
    seed is kept for provenance.  Argument and file bytes are restricted by
    the generator to a printable, separator-free character set, so one line
    per directive always suffices. *)

(** Write [g] to [dir/<name>.mc] (default name [seed-<seed>]); creates
    [dir] if needed.  Returns the path written. *)
val save : dir:string -> ?name:string -> Gen.t -> string

(** Load one corpus file. *)
val load : string -> (Gen.t, string) result

(** Load every [.mc] file directly under [dir], sorted by file name. *)
val load_dir : string -> (string * (Gen.t, string) result) list
