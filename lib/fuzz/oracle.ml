(** Differential oracle runner (see oracle.mli). *)

module SSet = Set.Make (String)

type verdict = Pass | Skip of string | Fail of string

type outcome = { oracle : string; verdict : verdict }

type cfg = {
  config : Bugrepro.Pipeline.Config.t;
  methods : Instrument.Methods.t list;
  check_determinism : bool;
  check_cache : bool;
  check_salvage : bool;
  check_suppression : bool;
  check_incremental : bool;
  check_streaming : bool;
  check_encoding : bool;
  det_jobs : int;
  max_steps : int;
}

let default_cfg =
  {
    config =
      Bugrepro.Pipeline.Config.(
        default
        |> with_budget
             ~dynamic:{ Concolic.Engine.max_runs = 80; max_time_s = 2.0 }
             ~replay:{ Concolic.Engine.max_runs = 4_000; max_time_s = 6.0 });
    methods = Instrument.Methods.[ Dynamic_static; All_branches ];
    check_determinism = true;
    check_cache = true;
    check_salvage = true;
    check_suppression = true;
    check_incremental = true;
    check_streaming = true;
    check_encoding = true;
    det_jobs = 4;
    max_steps = 200_000;
  }

let verdict_to_string = function
  | Pass -> "pass"
  | Skip r -> "skip (" ^ r ^ ")"
  | Fail r -> "FAIL: " ^ r

let failed = List.filter (fun o -> match o.verdict with Fail _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Shared exploration: one pass gives dynamic labels, the crash set and
   the solver queries the cache oracle replays. *)

type explo = {
  stats : Concolic.Engine.stats;
  labels : Minic.Label.map;
  crashes : SSet.t;
  queries : Solver.Expr.t list list;  (** collected path constraint sets *)
  vars : Solver.Symvars.t;
  exhausted : bool;  (** the whole frontier was drained within budget *)
}

let max_queries = 12

let explore ~(cfg : cfg) ~jobs ?cache (sc : Concolic.Scenario.t) : explo =
  let budget = cfg.config.dynamic_budget in
  let prog = sc.Concolic.Scenario.prog in
  let vars = Solver.Symvars.create () in
  let labels =
    Minic.Label.make ~nbranches:(Minic.Program.nbranches prog)
      Minic.Label.Unvisited
  in
  let crashes = ref SSet.empty in
  let queries = ref [] and n_queries = ref 0 in
  let run =
    Concolic.Dynamic.make_run ~max_steps:cfg.max_steps sc ~vars
      ~on_branch_observed:(fun bid sym ->
        Minic.Label.observe labels bid ~symbolic:sym)
  in
  let stats, _ =
    Concolic.Engine.explore ~vars ~budget ~strategy:Concolic.Engine.Bfs ~jobs
      ?cache ~telemetry:cfg.config.telemetry ~run
      ~on_run:(fun _ (r : Concolic.Engine.run_result) ->
        (match r.outcome with
        | Interp.Crash.Crash c ->
            crashes := SSet.add (Interp.Crash.to_string c) !crashes
        | _ -> ());
        if !n_queries < max_queries then begin
          let cs =
            List.filter_map
              (fun (e : Concolic.Path.entry) ->
                if e.negatable then Some e.cons else None)
              r.trace
          in
          if cs <> [] then begin
            incr n_queries;
            queries := cs :: !queries
          end
        end)
      ()
  in
  {
    stats;
    labels;
    crashes = !crashes;
    queries = !queries;
    vars;
    exhausted = (not stats.timed_out) && stats.runs < budget.max_runs;
  }

(* ------------------------------------------------------------------ *)
(* Oracle (b): label soundness *)

let labels_oracle (cfg : cfg) (case : Gen.case) (base : explo) : verdict =
  let static =
    Staticanalysis.Static.analyze ~analyze_lib:true ~refine:cfg.config.refine
      ~telemetry:cfg.config.telemetry case.Gen.prog
  in
  let report =
    Staticanalysis.Static.precision static case.Gen.prog ~dynamic:base.labels
  in
  if report.Staticanalysis.Precision.n_missed = 0 then Pass
  else
    let missed =
      Array.to_list report.entries
      |> List.filter (fun (e : Staticanalysis.Precision.entry) ->
             e.verdict = Staticanalysis.Precision.Missed)
      |> List.map Staticanalysis.Precision.entry_to_string
      |> String.concat "; "
    in
    Fail
      (Printf.sprintf "%d dynamically-symbolic branch(es) labelled concrete: %s"
         report.n_missed missed)

(* ------------------------------------------------------------------ *)
(* Oracle (c): engine determinism, jobs:1 vs jobs:N *)

let symbolic_set (labels : Minic.Label.map) =
  let s = ref SSet.empty in
  Array.iteri
    (fun bid l ->
      if l = Minic.Label.Symbolic then s := SSet.add (string_of_int bid) !s)
    labels;
  !s

let determinism_oracle (cfg : cfg) (sc : Concolic.Scenario.t) (base : explo) :
    verdict =
  if not base.exhausted then
    Skip "sequential exploration truncated by budget; not comparable"
  else
    let par = explore ~cfg ~jobs:cfg.det_jobs sc in
    if not par.exhausted then
      Skip "parallel exploration truncated by budget; not comparable"
    else if not (SSet.equal base.crashes par.crashes) then
      Fail
        (Printf.sprintf "crash sets differ: jobs:1 {%s} vs jobs:%d {%s}"
           (String.concat ", " (SSet.elements base.crashes))
           cfg.det_jobs
           (String.concat ", " (SSet.elements par.crashes)))
    else if not (SSet.equal (symbolic_set base.labels) (symbolic_set par.labels))
    then
      Fail
        (Printf.sprintf "symbolic-branch sets differ: jobs:1 {%s} vs jobs:%d {%s}"
           (String.concat ", " (SSet.elements (symbolic_set base.labels)))
           cfg.det_jobs
           (String.concat ", " (SSet.elements (symbolic_set par.labels))))
    else Pass

(* ------------------------------------------------------------------ *)
(* Oracle (d): cache transparency.  For each collected path constraint set
   (and its negated-tail variant, the engine's fork shape) the cached
   solve must agree with the direct solve on satisfiability, and a cached
   Sat model must actually satisfy the query.  Each query runs twice
   against the cache so the second hit exercises the memoized path. *)

let cache_oracle (cfg : cfg) (base : explo) : verdict =
  if base.queries = [] then Skip "no symbolic path constraints collected"
  else begin
    let cache = Solver.Cache.create ~capacity:256 () in
    let vars = base.vars in
    let negate_tail cs =
      match List.rev cs with
      | [] -> []
      | last :: pre -> List.rev (Solver.Expr.negate last :: pre)
    in
    let queries =
      List.concat_map (fun cs -> [ cs; negate_tail cs ]) base.queries
    in
    let mismatch =
      List.find_map
        (fun cs ->
          let direct = Solver.Solve.solve ~vars cs in
          let check_cached () =
            let cached =
              Solver.Cache.solve cache ~telemetry:cfg.config.telemetry ~vars cs
            in
            match direct, cached with
            | Solver.Solve.Sat _, Solver.Solve.Sat m ->
                if Solver.Model.satisfies_all m cs then None
                else
                  Some
                    "cached Sat model does not satisfy the query constraints"
            | Solver.Solve.Unsat, Solver.Solve.Unsat -> None
            | Solver.Solve.Unknown, Solver.Solve.Unknown -> None
            | _ ->
                Some
                  (Printf.sprintf "status differs (direct %s, cached %s)"
                     (match direct with
                     | Solver.Solve.Sat _ -> "sat"
                     | Solver.Solve.Unsat -> "unsat"
                     | Solver.Solve.Unknown -> "unknown")
                     (match cached with
                     | Solver.Solve.Sat _ -> "sat"
                     | Solver.Solve.Unsat -> "unsat"
                     | Solver.Solve.Unknown -> "unknown"))
          in
          (* miss then hit *)
          match check_cached () with
          | Some e -> Some e
          | None -> check_cached ())
        queries
    in
    match mismatch with None -> Pass | Some e -> Fail e
  end

(* ------------------------------------------------------------------ *)
(* Oracle (h): incremental-solver transparency.  For each collected path
   constraint set (and its negated-tail variant) the scoped solver must
   agree with the from-scratch solve on satisfiability — across a plain
   scoped solve, a pop-half/re-push re-sync (the trail-undo path), the
   enumeration-first portfolio strategy, and two passes of the full
   Incr pipeline on one session (the second pass runs against whatever
   cores the first learned: a learned core must never flip a fresh Sat
   to Unsat).  Any Sat model on the incremental side must satisfy the
   query.  Unknown is tolerated on either side: the strategies bound
   their search differently, so one giving up is not a disagreement. *)

let incremental_oracle (base : explo) : verdict =
  if base.queries = [] then Skip "no symbolic path constraints collected"
  else begin
    let vars = base.vars in
    let negate_tail cs =
      match List.rev cs with
      | [] -> []
      | last :: pre -> List.rev (Solver.Expr.negate last :: pre)
    in
    let queries =
      List.concat_map (fun cs -> [ cs; negate_tail cs ]) base.queries
    in
    let incr = Solver.Incr.create () in
    let session = Solver.Incr.session incr ~vars in
    let status = function
      | Solver.Solve.Sat _ -> "sat"
      | Solver.Solve.Unsat -> "unsat"
      | Solver.Solve.Unknown -> "unknown"
    in
    let check name fresh got cs =
      match fresh, got with
      | Solver.Solve.Unknown, _ | _, Solver.Solve.Unknown -> None
      | Solver.Solve.Sat _, Solver.Solve.Sat m ->
          if Solver.Model.satisfies_all m cs then None
          else Some (name ^ ": Sat model does not satisfy the query")
      | Solver.Solve.Unsat, Solver.Solve.Unsat -> None
      | _ ->
          Some
            (Printf.sprintf "%s: status differs (fresh %s, incremental %s)"
               name (status fresh) (status got))
    in
    let rec drop n l =
      if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
    in
    let mismatch =
      List.find_map
        (fun cs ->
          let fresh = Solver.Solve.solve ~vars cs in
          let scope = Solver.Scope.create ~vars () in
          List.iter (Solver.Scope.push scope) cs;
          match check "scoped" fresh (Solver.Scope.solve scope cs) cs with
          | Some e -> Some e
          | None -> (
              (* undo the innermost half and re-push it: verdict must
                 survive the trail restore *)
              let n = List.length cs in
              let half = n / 2 in
              for _ = 1 to half do
                Solver.Scope.pop scope
              done;
              List.iter (Solver.Scope.push scope) (drop (n - half) cs);
              match
                check "re-synced scope" fresh (Solver.Scope.solve scope cs) cs
              with
              | Some e -> Some e
              | None -> (
                  match
                    check "enum-first scope" fresh
                      (Solver.Scope.solve ~order:`Smallest_dom ~prop_rounds:4
                         scope cs)
                      cs
                  with
                  | Some e -> Some e
                  | None -> (
                      (* the full pipeline slices to the independence
                         component of the last constraint (the engine
                         merges its model over the pending's hint), so
                         its Sat models are only accountable to the
                         slice; the verdict still answers for all of
                         [cs] *)
                      let slice = Solver.Cache.slice_focus cs in
                      match
                        check "incr pipeline" fresh
                          (Solver.Incr.solve session cs)
                          slice
                      with
                      | Some e -> Some e
                      | None ->
                          check "incr pipeline (learned cores)" fresh
                            (Solver.Incr.solve session cs)
                            slice))))
        queries
    in
    match mismatch with None -> Pass | Some e -> Fail e
  end

(* ------------------------------------------------------------------ *)
(* Oracles (a) replay and (e) wire, per instrumentation method *)

let wire_check (report : Instrument.Report.t) : verdict =
  let s1 = Instrument.Wire.serialize report in
  match Instrument.Wire.deserialize_v s1 with
  | Error e ->
      Fail
        ("serialized report does not deserialize: "
        ^ Instrument.Wire.error_to_string e)
  | Ok r2 ->
      if not (Interp.Crash.equal_site report.crash r2.crash) then
        Fail "crash site changed across the wire"
      else
        let s2 = Instrument.Wire.serialize r2 in
        if String.equal s1 s2 then Pass
        else Fail "serialize . deserialize . serialize is not the identity"

(* Oracle (f): salvage soundness.  Serialize the report and truncate at
   every byte boundary: salvaging the prefix must never raise, never
   misread a truncation as an unknown version, and every successful
   salvage must keep the crash site and program, recover a bit count
   monotone in the cut, and re-serialize to something the strict reader
   accepts.  Then one deep cut — half the branch-log hex — is actually
   replayed: it must come back [Reproduced] at the recorded site or a
   clean [Not_reproduced], never an exception (the §3.1 [log_exhausted]
   degradation the salvage path exists for). *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* Byte position cutting halfway into the branch payload hex —
   "branch-enc: " on a v4 encoded report, "branch-log: " on a raw one.
   The resulting prefix is strictly malformed but salvageable. *)
let payload_tear_pos wire =
  let field =
    match find_sub wire "branch-enc: " with
    | Some _ -> "branch-enc: "
    | None -> "branch-log: "
  in
  match find_sub wire field with
  | None -> None
  | Some pos ->
      let start = pos + String.length field in
      let hex_end =
        match String.index_from_opt wire start '\n' with
        | Some e -> e
        | None -> String.length wire
      in
      Some (start + ((hex_end - start) / 2))

let salvage_check (cfg : cfg) (case : Gen.case) (plan : Instrument.Plan.t)
    (report : Instrument.Report.t) : verdict =
  let wire = Instrument.Wire.serialize report in
  let n = String.length wire in
  let failure = ref None in
  let fail cut msg =
    if !failure = None then
      failure := Some (Printf.sprintf "cut at byte %d/%d: %s" cut n msg)
  in
  let prev_bits = ref 0 in
  (try
     for cut = 0 to n do
       if !failure = None then
         match Instrument.Wire.deserialize_salvage (String.sub wire 0 cut) with
         | Error (Instrument.Wire.Unknown_version v) ->
             fail cut (Printf.sprintf "truncation misread as version %d" v)
         | Error (Instrument.Wire.Malformed _) ->
             (* identity fields lost: rejection is the correct degradation *)
             ()
         | Ok (r, diag) ->
             if not (Interp.Crash.equal_site r.crash report.crash) then
               fail cut "salvage changed the crash site"
             else if not (String.equal r.program report.program) then
               fail cut "salvage changed the program name"
             else begin
               let bits = Instrument.Report.nbits r in
               if bits < !prev_bits then
                 fail cut
                   (Printf.sprintf "salvaged bit count fell from %d to %d"
                      !prev_bits bits)
               else prev_bits := bits;
               (match Instrument.Wire.deserialize_v (Instrument.Wire.serialize r)
                with
               | Ok _ -> ()
               | Error e ->
                   fail cut
                     ("salvaged report fails the strict reader: "
                     ^ Instrument.Wire.error_to_string e));
               if cut = n && not diag.Instrument.Wire.complete then
                 fail cut "intact input diagnosed as torn"
             end
     done;
     (* deep cut: replay with half the branch payload hex torn away *)
     if !failure = None then
       match payload_tear_pos wire with
       | None -> ()
       | Some cut ->
           (match
              Instrument.Wire.deserialize_salvage (String.sub wire 0 cut)
            with
           | Error _ -> ()
           | Ok (torn, _) -> (
               match
                 Bugrepro.Pipeline.Run.reproduce cfg.config
                   ~prog:case.Gen.prog ~plan torn
               with
               | Replay.Guided.Reproduced rr, _ ->
                   if not (Interp.Crash.equal_site rr.crash report.crash) then
                     fail cut "torn-log replay reproduced at a different site"
               | Replay.Guided.Not_reproduced _, _ -> ()))
   with exn ->
     fail (-1) ("salvage raised " ^ Printexc.to_string exn));
  match !failure with None -> Pass | Some msg -> Fail msg

(* Oracle (g): suppression parity.  Run the Dynamic_static plan twice —
   suppression off, then on with the shadow log enabled.  The proof
   checker must accept the analysis' own table; the shadow log (elided
   bits reconstructed by rule) must equal the suppression-free log bit
   for bit with zero reconstruction mismatches; outcome and output must
   be untouched.  When the run crashed, the suppressed report must
   round-trip its table across the wire, and guided replay from it must
   reach the same verdict — and, absent timeouts, the same §3.1 case
   counters — as replay from the raw report. *)

let suppression_check (cfg : cfg) (case : Gen.case) (sc : Concolic.Scenario.t)
    ~dynamic ~static : verdict =
  let prog = case.Gen.prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      ?dynamic ~static Instrument.Methods.Dynamic_static
  in
  let instrumented = plan.Instrument.Plan.instrumented in
  let sup = Staticanalysis.Suppression.analyze ~instrumented prog in
  match
    Staticanalysis.Suppression.verify ~instrumented prog
      (Staticanalysis.Suppression.to_table sup)
  with
  | Error msg -> Fail ("proof checker rejected the analysis' own table: " ^ msg)
  | Ok () -> (
      let full = Bugrepro.Pipeline.Run.field_run cfg.config ~plan sc in
      let sup_plan = Instrument.Plan.with_suppression plan sup in
      let elided =
        Instrument.Field_run.run ~log_syscalls:cfg.config.log_syscalls
          ~telemetry:cfg.config.telemetry ~shadow:true ~plan:sup_plan sc
      in
      let outcome_str (r : Instrument.Field_run.result) =
        Interp.Crash.outcome_to_string r.outcome
      in
      if outcome_str full <> outcome_str elided then
        Fail
          (Printf.sprintf "elision changed the outcome: %s vs %s"
             (outcome_str full) (outcome_str elided))
      else if full.output <> elided.output then
        Fail "elision changed the program output"
      else if elided.shadow_mismatches > 0 then
        Fail
          (Printf.sprintf
             "%d elided execution(s) reconstructed the wrong bit"
             elided.shadow_mismatches)
      else
        match elided.shadow_log with
        | None -> Fail "shadow run produced no shadow log"
        | Some sh ->
            let fl = full.branch_log in
            if
              sh.Instrument.Branch_log.nbits <> fl.Instrument.Branch_log.nbits
              || sh.Instrument.Branch_log.bytes
                 <> fl.Instrument.Branch_log.bytes
            then
              Fail
                (Printf.sprintf
                   "reconstructed log differs from the raw log (%d bits vs %d)"
                   sh.Instrument.Branch_log.nbits
                   fl.Instrument.Branch_log.nbits)
            else (
              match
                ( Instrument.Report.of_field_run ~sc ~plan full,
                  Instrument.Report.of_field_run ~sc ~plan:sup_plan elided )
              with
              | None, None -> Pass (* no crash: log parity is the whole check *)
              | Some _, None | None, Some _ ->
                  Fail "only one of the two runs produced a report"
              | Some raw_report, Some sup_report -> (
                  (* the table must survive the wire *)
                  match
                    Instrument.Wire.deserialize_v
                      (Instrument.Wire.serialize sup_report)
                  with
                  | Error e ->
                      Fail
                        ("suppressed report does not deserialize: "
                        ^ Instrument.Wire.error_to_string e)
                  | Ok rt
                    when rt.Instrument.Report.suppression
                         <> sup_report.Instrument.Report.suppression ->
                      Fail "suppression table changed across the wire"
                  | Ok _ -> (
                      let raw_result, raw_stats =
                        Bugrepro.Pipeline.Run.reproduce cfg.config ~prog ~plan
                          raw_report
                      in
                      let sup_result, sup_stats =
                        Bugrepro.Pipeline.Run.reproduce cfg.config ~prog
                          ~plan:sup_plan sup_report
                      in
                      match raw_result, sup_result with
                      | Replay.Guided.Not_reproduced { timed_out = true; _ }, _
                      | _, Replay.Guided.Not_reproduced { timed_out = true; _ }
                        ->
                          Skip "replay budget exhausted; not comparable"
                      | Replay.Guided.Reproduced _, Replay.Guided.Reproduced _
                        ->
                          let rc = raw_stats.Replay.Guided.cases
                          and sc_ = sup_stats.Replay.Guided.cases in
                          if
                            (rc.case1, rc.case2a, rc.case2b, rc.case3a,
                             rc.case3b, rc.case4, rc.log_exhausted)
                            <> (sc_.case1, sc_.case2a, sc_.case2b, sc_.case3a,
                                sc_.case3b, sc_.case4, sc_.log_exhausted)
                          then
                            Fail
                              (Printf.sprintf
                                 "§3.1 counters diverge: raw \
                                  (%d,%d,%d,%d,%d,%d,%d) vs suppressed \
                                  (%d,%d,%d,%d,%d,%d,%d)"
                                 rc.case1 rc.case2a rc.case2b rc.case3a
                                 rc.case3b rc.case4 rc.log_exhausted sc_.case1
                                 sc_.case2a sc_.case2b sc_.case3a sc_.case3b
                                 sc_.case4 sc_.log_exhausted)
                          else Pass
                      | Replay.Guided.Not_reproduced _,
                        Replay.Guided.Not_reproduced _ ->
                          Pass
                      | Replay.Guided.Reproduced _,
                        Replay.Guided.Not_reproduced _ ->
                          Fail
                            "raw report reproduces but the suppressed one \
                             does not"
                      | Replay.Guided.Not_reproduced _,
                        Replay.Guided.Reproduced _ ->
                          Fail
                            "suppressed report reproduces but the raw one \
                             does not"))))

let replay_check (cfg : cfg) (case : Gen.case) (plan : Instrument.Plan.t)
    (meth : Instrument.Methods.t) (report : Instrument.Report.t) : verdict =
  let result, stats =
    Bugrepro.Pipeline.Run.reproduce cfg.config ~prog:case.Gen.prog ~plan report
  in
  (* Note: [case3b] contradictions can occur even under [All_branches] —
     a store through a concretized symbolic index can turn a branch that
     was symbolic in the field run concrete in a replay run, which then
     mismatches its logged bit and aborts.  Those dead ends are legitimate
     prunes (the search backtracks and still reproduces); the minimized
     witness lives in test/corpus/known/.  The oracle therefore only
     condemns contradictions when they killed the whole search. *)
  match result with
  | Replay.Guided.Reproduced _ -> Pass
  | Replay.Guided.Not_reproduced { timed_out = true; runs; _ } ->
      Skip (Printf.sprintf "replay budget exhausted after %d runs" runs)
  | Replay.Guided.Not_reproduced { runs; _ } ->
      let c = stats.Replay.Guided.cases in
      let contradiction_only = c.case3b > 0 && c.case1 = 0 in
      Fail
        (Printf.sprintf
           "replay search space exhausted after %d runs without reaching %s \
            (method %s)%s"
           runs
           (Interp.Crash.to_string report.crash)
           (Instrument.Methods.to_string meth)
           (if contradiction_only then
              Printf.sprintf
                "; %d contradiction-only dead end(s) on the logged prefix"
                c.case3b
            else ""))

(* Oracle (i): streaming-vs-batch equivalence.  Build a small report set
   from the first crashing method — duplicates with distinct provenance
   paths plus one torn copy — and triage it twice: once through the
   batch entry point in canonical path order, once through a live
   {!Triage.Service} fed the same items in a seeded shuffle with a tiny
   queue burst (many ticks, eager rung climbs between them).  The two
   timing-stripped summaries must be byte-identical: arrival order,
   tick boundaries and eager replay must never change what triage
   concludes. *)

let streaming_check (cfg : cfg) (case : Gen.case) (sc : Concolic.Scenario.t)
    ~dynamic ~static : verdict =
  let rec first_crash = function
    | [] -> None
    | meth :: rest -> (
        let plan =
          Instrument.Plan.make
            ~nbranches:(Minic.Program.nbranches case.Gen.prog)
            ?dynamic ~static meth
        in
        match Bugrepro.Pipeline.Run.field_run_report cfg.config ~plan sc with
        | _, Some report -> Some (plan, report)
        | _, None -> first_crash rest)
  in
  match first_crash cfg.methods with
  | None -> Skip "no crash under any method"
  | Some (plan, report) -> (
      let wire = Instrument.Wire.serialize report in
      let torn =
        match payload_tear_pos wire with
        | None -> wire
        | Some cut -> String.sub wire 0 cut
      in
      let texts =
        [ wire; wire; torn; wire ]
        |> List.mapi (fun i s -> (Printf.sprintf "r%03d.report" i, s))
      in
      let items =
        List.filter_map
          (fun (path, s) ->
            Result.to_option (Triage.Ingest.of_string ~path s))
          texts
      in
      let resolve _ = Ok (case.Gen.prog, plan) in
      let policy =
        { (Triage.Sched.policy_of_config cfg.config) with
          Triage.Sched.deadline_s = 30.0 }
      in
      try
        let batch =
          match Triage.run_items ~policy ~resolve items with
          | Ok s -> s
          | Error e -> failwith (Triage.Index.error_to_string e)
        in
        let shuffled = Array.of_list items in
        Osmodel.Rng.shuffle
          (Osmodel.Rng.create (cfg.config.Bugrepro.Pipeline.Config.seed + 1))
          shuffled;
        let config =
          {
            Triage.Service.default_config with
            Triage.Service.policy;
            queue_capacity = max 1 (Array.length shuffled);
            burst = 1;
            window = 8;
            eager = true;
          }
        in
        let svc =
          match Triage.Service.open_ ~config ~resolve () with
          | Ok svc -> svc
          | Error e -> failwith (Triage.Index.error_to_string e)
        in
        Array.iter
          (fun item -> ignore (Triage.Service.submit_item svc item))
          shuffled;
        while Triage.Service.queue_depth svc > 0 do
          ignore (Triage.Service.tick svc)
        done;
        let streamed = Triage.Service.drain svc in
        Triage.Service.close svc;
        let canon s = Triage.Summary.to_json ~timing:false s in
        let b = canon batch and s = canon streamed in
        if String.equal b s then
          (* timeout-status flips are wall-clock noise, not divergence;
             only equal-status summaries are comparable, like the
             determinism oracle's exhausted-only comparison *)
          Pass
        else if
          batch.Triage.Summary.timed_out <> streamed.Triage.Summary.timed_out
        then Skip "replay budget expired in one mode"
        else
          Fail
            (Printf.sprintf
               "streaming summary diverged from batch:\n--- batch\n%s\n--- \
                streaming\n%s"
               b s)
      with exn -> Fail ("streaming triage raised " ^ Printexc.to_string exn))

(* Oracle (j): online-encoding equivalence.  Per method, the same
   deterministic field run with the streaming encoder on and off must
   agree on outcome, output and the exact bit log; the encoded stream
   must validate and carry exactly the logged bit count; a crashing run's
   v4 report must survive the strict wire round trip byte-identically;
   and a torn or byte-corrupted encoded payload must fail the strict
   reader closed while salvage still recovers the crash site with no
   more bits than were shipped. *)

let encoding_check (cfg : cfg) (case : Gen.case) (sc : Concolic.Scenario.t)
    ~dynamic ~static : verdict =
  let failure = ref None in
  let fail msg = if !failure = None then failure := Some msg in
  (try
     List.iter
       (fun meth ->
         if !failure = None then begin
           let mname = Instrument.Methods.to_string meth in
           let err msg = fail (mname ^ ": " ^ msg) in
           let plan =
             Instrument.Plan.make
               ~nbranches:(Minic.Program.nbranches case.Gen.prog)
               ?dynamic ~static meth
           in
           let enc = Instrument.Field_run.run ~encode:true ~plan sc in
           let raw = Instrument.Field_run.run ~encode:false ~plan sc in
           if
             Interp.Crash.outcome_to_string enc.outcome
             <> Interp.Crash.outcome_to_string raw.outcome
           then err "encoding changed the run outcome"
           else if not (String.equal enc.output raw.output) then
             err "encoding changed the program output"
           else if
             enc.branch_log.Instrument.Branch_log.nbits
             <> raw.branch_log.Instrument.Branch_log.nbits
             || not
                  (String.equal enc.branch_log.Instrument.Branch_log.bytes
                     raw.branch_log.Instrument.Branch_log.bytes)
           then err "encoded log decodes to different bits than the raw run"
           else begin
             (match enc.encoded_log with
             | None -> err "encode-on run shipped no encoded stream"
             | Some e -> (
                 match Instrument.Codec.count_bits e.Instrument.Codec.data with
                 | Error m -> err ("shipped stream invalid: " ^ m)
                 | Ok n when n <> e.Instrument.Codec.nbits ->
                     err
                       (Printf.sprintf "stream carries %d bits, claims %d" n
                          e.Instrument.Codec.nbits)
                 | Ok _ -> ()));
             if !failure = None then
               match Instrument.Report.of_field_run ~sc ~plan enc with
               | None -> ()
               | Some report -> (
                   let wire = Instrument.Wire.serialize report in
                   (match Instrument.Wire.deserialize_v wire with
                   | Error e ->
                       err
                         ("v4 wire rejected its own report: "
                        ^ Instrument.Wire.error_to_string e)
                   | Ok report' ->
                       if
                         not
                           (String.equal wire
                              (Instrument.Wire.serialize report'))
                       then err "v4 wire round trip is not the identity"
                       else if
                         not
                           (String.equal
                              (Instrument.Report.raw_log report')
                                .Instrument.Branch_log.bytes
                              enc.branch_log.Instrument.Branch_log.bytes)
                       then err "wire round trip changed the decoded bits");
                   (* negatives, only meaningful on an encoded payload *)
                   match find_sub wire "branch-enc: " with
                   | None -> err "crashing encoded run shipped no branch-enc"
                   | Some pos ->
                       let start = pos + String.length "branch-enc: " in
                       let hex_end =
                         match String.index_from_opt wire start '\n' with
                         | Some e -> e
                         | None -> String.length wire
                       in
                       let torn =
                         String.sub wire 0 (start + ((hex_end - start) / 2))
                       in
                       (if hex_end > start + 1 then
                          match Instrument.Wire.deserialize_v torn with
                          | Ok _ -> err "strict reader accepted a torn payload"
                          | Error _ -> ());
                       (match Instrument.Wire.deserialize_salvage torn with
                       | Error (Instrument.Wire.Unknown_version v) ->
                           err
                             (Printf.sprintf
                                "tear misread as wire version %d" v)
                       | Error (Instrument.Wire.Malformed _) -> ()
                       | Ok (r, _) ->
                           if not (Interp.Crash.equal_site r.crash report.crash)
                           then err "salvage of a torn payload moved the crash"
                           else if
                             Instrument.Report.nbits r
                             > Instrument.Report.nbits report
                           then err "salvage invented branch bits");
                       if hex_end > start + 1 then
                         let corrupt = Bytes.of_string wire in
                         Bytes.set corrupt start 'z';
                         match
                           Instrument.Wire.deserialize_v
                             (Bytes.to_string corrupt)
                         with
                         | Ok _ ->
                             err "strict reader accepted corrupted payload hex"
                         | Error _ -> ())
           end
         end)
       cfg.methods
   with exn -> fail ("encoding oracle raised " ^ Printexc.to_string exn));
  match !failure with None -> Pass | Some msg -> Fail msg

(* ------------------------------------------------------------------ *)

let run ?only (cfg : cfg) (case : Gen.case) : outcome list =
  let tel = cfg.config.telemetry in
  let want name = match only with None -> true | Some o -> String.equal o name in
  let span name f =
    Telemetry.Span.with_ tel ~name:("fuzz.oracle." ^ name) (fun _ -> f ())
  in
  let results = ref [] in
  let record name verdict =
    Telemetry.Metrics.incr_named tel
      ("fuzz.oracle." ^ name ^ "."
      ^ (match verdict with Pass -> "pass" | Skip _ -> "skip" | Fail _ -> "fail")
      );
    results := { oracle = name; verdict } :: !results
  in
  let sc = Gen.scenario ~max_steps:cfg.max_steps case in
  let need_explore =
    want "labels" || want "determinism" || want "cache"
    || (cfg.check_incremental && want "incremental")
    || (cfg.check_suppression && want "suppression")
    || (cfg.check_streaming && want "streaming")
    || List.exists
         (fun m ->
           m <> Instrument.Methods.All_branches
           && m <> Instrument.Methods.No_instrumentation)
         cfg.methods
       && (want "replay" || want "wire" || want "salvage"
          || (cfg.check_encoding && want "encoding"))
  in
  let base =
    if need_explore then
      Some
        (Telemetry.Span.with_ tel ~name:"fuzz.explore" (fun _ ->
             explore ~cfg ~jobs:1 sc))
    else None
  in
  (if want "labels" then
     match base with
     | Some b -> record "labels" (span "labels" (fun () -> labels_oracle cfg case b))
     | None -> ());
  (if cfg.check_determinism && want "determinism" then
     match base with
     | Some b ->
         record "determinism"
           (span "determinism" (fun () -> determinism_oracle cfg sc b))
     | None -> ());
  (if cfg.check_cache && want "cache" then
     match base with
     | Some b -> record "cache" (span "cache" (fun () -> cache_oracle cfg b))
     | None -> ());
  (if cfg.check_incremental && want "incremental" then
     match base with
     | Some b ->
         record "incremental"
           (span "incremental" (fun () -> incremental_oracle b))
     | None -> ());
  (* static labels for the plans, computed once *)
  let static_labels =
    lazy
      (Staticanalysis.Static.analyze ~analyze_lib:true ~refine:cfg.config.refine
         case.Gen.prog)
        .labels
  in
  (* the truncation sweep is method-independent soundness, so one report
     (the first crashing method's) is enough per case *)
  let salvage_done = ref false in
  if want "replay" || want "wire" || want "salvage" then
    List.iter
      (fun meth ->
        let mname = Instrument.Methods.to_string meth in
        let plan =
          Instrument.Plan.make
            ~nbranches:(Minic.Program.nbranches case.Gen.prog)
            ?dynamic:(Option.map (fun (b : explo) -> b.labels) base)
            ~static:(Lazy.force static_labels) meth
        in
        let _run, report =
          Bugrepro.Pipeline.Run.field_run_report cfg.config ~plan sc
        in
        match report with
        | None ->
            if want "replay" then
              record "replay" (Skip ("no crash under " ^ mname))
        | Some report ->
            if want "wire" then
              record "wire" (span "wire" (fun () -> wire_check report));
            if cfg.check_salvage && want "salvage" && not !salvage_done then begin
              salvage_done := true;
              record "salvage"
                (span "salvage" (fun () -> salvage_check cfg case plan report))
            end;
            if want "replay" then
              record "replay"
                (span "replay" (fun () -> replay_check cfg case plan meth report)))
      cfg.methods;
  if cfg.check_suppression && want "suppression" then
    record "suppression"
      (span "suppression" (fun () ->
           suppression_check cfg case sc
             ~dynamic:(Option.map (fun (b : explo) -> b.labels) base)
             ~static:(Lazy.force static_labels)));
  if cfg.check_streaming && want "streaming" then
    record "streaming"
      (span "streaming" (fun () ->
           streaming_check cfg case sc
             ~dynamic:(Option.map (fun (b : explo) -> b.labels) base)
             ~static:(Lazy.force static_labels)));
  if cfg.check_encoding && want "encoding" then
    record "encoding"
      (span "encoding" (fun () ->
           encoding_check cfg case sc
             ~dynamic:(Option.map (fun (b : explo) -> b.labels) base)
             ~static:(Lazy.force static_labels)));
  List.rev !results
