(** Greedy AST shrinker (see shrink.mli).

    Candidate enumeration is lazy ([Seq.t]) because the predicate — a full
    oracle re-run — dominates the cost: the greedy loop stops scanning at
    the first accepted edit and restarts from the smaller unit.
    Termination: every accepted AST edit strictly decreases
    {!Astcmp.size_unit} and every accepted input edit strictly decreases
    total input length at unchanged AST size. *)

open Minic

let seq_append3 a b c = Seq.append a (Seq.append b c)

(* ------------------------------------------------------------------ *)
(* Expression edits: collapse to an operand, or to a constant *)

let rec expr_edits (e : Ast.expr) : Ast.expr Seq.t =
  let consts =
    match e with
    | Ast.Cint _ | Ast.Cstr _ -> []
    | _ -> [ Ast.Cint 0; Ast.Cint 1 ]
  in
  let subs =
    match e with
    | Ast.Binop (_, a, b) -> [ a; b ]
    | Ast.Unop (_, a) -> [ a ]
    | Ast.Lval (Ast.Index (Ast.Var _, i)) -> [ i ]
    | _ -> []
  in
  let deeper =
    match e with
    | Ast.Binop (op, a, b) ->
        Seq.append
          (Seq.map (fun a' -> Ast.Binop (op, a', b)) (expr_edits a))
          (Seq.map (fun b' -> Ast.Binop (op, a, b')) (expr_edits b))
    | Ast.Unop (op, a) -> Seq.map (fun a' -> Ast.Unop (op, a')) (expr_edits a)
    | _ -> Seq.empty
  in
  Seq.append (List.to_seq (consts @ subs)) deeper

let exprs_edits (es : Ast.expr list) : Ast.expr list Seq.t =
  let rec go = function
    | [] -> Seq.empty
    | e :: rest ->
        Seq.append
          (Seq.map (fun e' -> e' :: rest) (expr_edits e))
          (Seq.map (fun rest' -> e :: rest') (go rest))
  in
  go es

(* ------------------------------------------------------------------ *)
(* Statement and block edits *)

let rec stmt_edits (s : Ast.stmt) : Ast.stmt Seq.t =
  let mk d = { s with Ast.sdesc = d } in
  match s.Ast.sdesc with
  | Ast.Sif (br, c, t, e) ->
      seq_append3
        (List.to_seq [ mk (Ast.Sblock t); mk (Ast.Sblock e) ])
        (Seq.map (fun c' -> mk (Ast.Sif (br, c', t, e))) (expr_edits c))
        (Seq.append
           (Seq.map (fun t' -> mk (Ast.Sif (br, c, t', e))) (block_edits t))
           (Seq.map (fun e' -> mk (Ast.Sif (br, c, t, e'))) (block_edits e)))
  | Ast.Swhile (br, c, body) ->
      seq_append3
        (Seq.return (mk (Ast.Sblock body)))
        (Seq.map (fun c' -> mk (Ast.Swhile (br, c', body))) (expr_edits c))
        (Seq.map (fun b' -> mk (Ast.Swhile (br, c, b'))) (block_edits body))
  | Ast.Sblock body ->
      Seq.map (fun b' -> mk (Ast.Sblock b')) (block_edits body)
  | Ast.Sassign (lv, e) ->
      Seq.map (fun e' -> mk (Ast.Sassign (lv, e'))) (expr_edits e)
  | Ast.Scall (lvo, f, args) ->
      Seq.map (fun args' -> mk (Ast.Scall (lvo, f, args'))) (exprs_edits args)
  | Ast.Sreturn (Some e) ->
      Seq.map (fun e' -> mk (Ast.Sreturn (Some e'))) (expr_edits e)
  | Ast.Sreturn None | Ast.Sbreak | Ast.Scontinue -> Seq.empty

and block_edits (b : Ast.block) : Ast.block Seq.t =
  match b with
  | [] -> Seq.empty
  | s :: rest ->
      seq_append3
        (Seq.return rest) (* delete the head statement *)
        (Seq.map (fun s' -> s' :: rest) (stmt_edits s))
        (Seq.map (fun rest' -> s :: rest') (block_edits rest))

(* ------------------------------------------------------------------ *)
(* Unit edits *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let func_edits (f : Ast.func) : Ast.func Seq.t =
  Seq.append
    (Seq.map (fun b' -> { f with Ast.fbody = b' }) (block_edits f.Ast.fbody))
    (Seq.init
       (List.length f.Ast.flocals)
       (fun i -> { f with Ast.flocals = drop_nth f.Ast.flocals i }))

let unit_edits (u : Ast.unit_) : Ast.unit_ Seq.t =
  let drop_funcs =
    (* never drop main *)
    Seq.filter_map
      (fun i ->
        if (List.nth u.Ast.u_funcs i).Ast.fname = "main" then None
        else Some { u with Ast.u_funcs = drop_nth u.Ast.u_funcs i })
      (Seq.init (List.length u.Ast.u_funcs) Fun.id)
  in
  let drop_globals =
    Seq.init
      (List.length u.Ast.u_globals)
      (fun i -> { u with Ast.u_globals = drop_nth u.Ast.u_globals i })
  in
  let in_funcs =
    let rec go pre = function
      | [] -> Seq.empty
      | f :: rest ->
          Seq.append
            (Seq.map
               (fun f' -> { u with Ast.u_funcs = List.rev_append pre (f' :: rest) })
               (func_edits f))
            (go (f :: pre) rest)
    in
    go [] u.Ast.u_funcs
  in
  seq_append3 drop_funcs drop_globals in_funcs

(* ------------------------------------------------------------------ *)
(* Input edits: shorten the argument, drop the file *)

let input_edits (g : Gen.t) : Gen.t Seq.t =
  let arg_shorter =
    match g.Gen.args with
    | [ a ] when String.length a > 1 ->
        List.to_seq
          [
            { g with Gen.args = [ String.sub a 0 (String.length a / 2) ] };
            { g with Gen.args = [ String.sub a 0 (String.length a - 1) ] };
          ]
    | _ -> Seq.empty
  in
  let drop_file =
    match g.Gen.files with
    | [] -> Seq.empty
    | _ -> Seq.return { g with Gen.files = [] }
  in
  Seq.append arg_shorter drop_file

(* ------------------------------------------------------------------ *)
(* The greedy loop *)

let reprint (g : Gen.t) ast = { g with Gen.ast; src = Pretty.unit_to_string ast }

let input_len (g : Gen.t) =
  List.fold_left (fun n a -> n + String.length a) 0 g.Gen.args
  + List.fold_left (fun n (_, c) -> n + String.length c) 0 g.Gen.files

let minimize ?(max_steps = 10_000) ?(telemetry = Telemetry.disabled)
    ~(pred : Gen.t -> bool) (g : Gen.t) : Gen.t * int =
  let steps = Telemetry.Metrics.counter telemetry "fuzz.shrink.steps" in
  let tried = Telemetry.Metrics.counter telemetry "fuzz.shrink.tried" in
  let accepted = ref 0 in
  let try_candidate cur cand =
    Telemetry.Metrics.incr tried;
    if pred cand then begin
      ignore cur;
      Telemetry.Metrics.incr steps;
      incr accepted;
      Some cand
    end
    else None
  in
  (* one pass over the lazy edit stream; [None] when no edit is accepted *)
  let step (cur : Gen.t) : Gen.t option =
    let size = Astcmp.size_unit cur.Gen.ast in
    let ast_candidates =
      Seq.filter_map
        (fun ast' ->
          if Astcmp.size_unit ast' < size then Some (reprint cur ast')
          else None)
        (unit_edits cur.Gen.ast)
    in
    let inlen = input_len cur in
    let input_candidates =
      Seq.filter (fun g' -> input_len g' < inlen) (input_edits cur)
    in
    Seq.append ast_candidates input_candidates
    |> Seq.filter_map (try_candidate cur)
    |> Seq.uncons
    |> Option.map fst
  in
  let rec loop cur =
    if !accepted >= max_steps then cur
    else match step cur with None -> cur | Some next -> loop next
  in
  let result = loop g in
  (result, !accepted)
