(** Fuzz campaign driver (see driver.mli).

    All randomness flows from one {!Osmodel.Rng} stream: the campaign seed
    derives one printable per-case seed per index ({!Rng.derive}), so any
    reported failure can be re-run alone with [Gen.generate ~seed:<case
    seed>] regardless of how many cases ran before it. *)

module Config = Bugrepro.Pipeline.Config

type opts = {
  seed : int;
  count : int;
  shrink : bool;
  save_corpus : string option;
  thorough : bool;
  config : Config.t;
}

let default_opts =
  {
    seed = 42;
    count = 100;
    shrink = false;
    save_corpus = None;
    thorough = false;
    config = Oracle.default_cfg.Oracle.config;
  }

type violation = {
  case_seed : int;
  oracle : string;
  detail : string;
  src : string;
  shrunk : Gen.t option;
  repro_path : string option;
}

type summary = {
  cases : int;
  gen_errors : int;
  crashed_cases : int;
  passes : int;
  skips : int;
  violations : violation list;
}

let ok (s : summary) = s.gen_errors = 0 && s.violations = []

(* ------------------------------------------------------------------ *)
(* Per-case oracle configuration: the cheap oracles run every case; the
   heavy ones (extra replay methods, a second exploration with a worker
   pool) rotate across case indices so a 200-case smoke stays in CI
   budget.  [--thorough] runs everything on every case. *)

let oracle_cfg (opts : opts) ~index : Oracle.cfg =
  let rotating =
    Instrument.Methods.[| Dynamic; Static; Dynamic_static |].(index mod 3)
  in
  {
    Oracle.config = opts.config;
    methods =
      (if opts.thorough then Instrument.Methods.instrumented
       else [ rotating; Instrument.Methods.All_branches ]);
    check_determinism = opts.thorough || index mod 4 = 0;
    check_cache = opts.thorough || index mod 2 = 0;
    check_salvage = opts.thorough || index mod 3 = 1;
    check_suppression = opts.thorough || index mod 3 = 2;
    check_incremental = opts.thorough || index mod 4 = 2;
    check_streaming = opts.thorough || index mod 4 = 3;
    check_encoding = opts.thorough || index mod 4 = 1;
    det_jobs = max 2 opts.config.Config.jobs;
    max_steps = 200_000;
  }

let shrink_failure (opts : opts) (ocfg : Oracle.cfg) oracle (g : Gen.t) :
    Gen.t option =
  let pred g' =
    match Gen.elaborate g' with
    | Error _ -> false
    | Ok case' ->
        Oracle.run ~only:oracle ocfg case'
        |> List.exists (fun (o : Oracle.outcome) ->
               match o.verdict with Oracle.Fail _ -> true | _ -> false)
  in
  if not (pred g) then None
  else
    let shrunk, steps =
      Shrink.minimize ~telemetry:opts.config.Config.telemetry ~pred g
    in
    ignore steps;
    Some shrunk

(* ------------------------------------------------------------------ *)

let run_case (opts : opts) ~index ~case_seed : violation list * Oracle.outcome list =
  let tel = opts.config.Config.telemetry in
  Telemetry.Span.with_ tel ~name:"fuzz.case"
    ~attrs:[ ("seed", Telemetry.Event.Int case_seed) ]
  @@ fun sp ->
  let g =
    Telemetry.Span.with_ tel ~name:"fuzz.gen" (fun _ ->
        Gen.generate ~seed:case_seed ())
  in
  Telemetry.Metrics.incr_named tel "fuzz.gen";
  match Gen.elaborate g with
  | Error e ->
      Telemetry.Span.adds sp "error" (Gen.error_to_string e);
      ( [
          {
            case_seed;
            oracle = "generate";
            detail = Gen.error_to_string e;
            src = g.Gen.src;
            shrunk = None;
            repro_path = None;
          };
        ],
        [] )
  | Ok case ->
      (match opts.save_corpus with
      | Some dir -> ignore (Corpus.save ~dir g)
      | None -> ());
      let ocfg = oracle_cfg opts ~index in
      let outcomes = Oracle.run ocfg case in
      let violations =
        Oracle.failed outcomes
        |> List.map (fun (o : Oracle.outcome) ->
               let detail =
                 match o.verdict with Oracle.Fail d -> d | _ -> assert false
               in
               let shrunk =
                 if opts.shrink then shrink_failure opts ocfg o.oracle g
                 else None
               in
               let repro_path =
                 let dir =
                   match opts.save_corpus with
                   | Some d -> Some d
                   | None -> if opts.shrink then Some "fuzz-failures" else None
                 in
                 Option.map
                   (fun d ->
                     Corpus.save ~dir:d
                       ~name:
                         (Printf.sprintf "violation-%s-%d" o.oracle case_seed)
                       (Option.value shrunk ~default:g))
                   dir
               in
               { case_seed; oracle = o.oracle; detail; src = g.Gen.src; shrunk;
                 repro_path })
      in
      (violations, outcomes)

let count_outcomes outcomes =
  List.fold_left
    (fun (p, s, crashed) (o : Oracle.outcome) ->
      match o.verdict with
      | Oracle.Pass -> (p + 1, s, crashed)
      | Oracle.Skip _ -> (p, s + 1, crashed)
      | Oracle.Fail _ -> (p, s, crashed))
    (0, 0, false) outcomes

let run (opts : opts) : summary =
  let tel = opts.config.Config.telemetry in
  Telemetry.Span.with_ tel ~name:"fuzz"
    ~attrs:
      [
        ("seed", Telemetry.Event.Int opts.seed);
        ("count", Telemetry.Event.Int opts.count);
      ]
  @@ fun _ ->
  let rng = Osmodel.Rng.create opts.seed in
  let summary =
    ref
      {
        cases = 0;
        gen_errors = 0;
        crashed_cases = 0;
        passes = 0;
        skips = 0;
        violations = [];
      }
  in
  for index = 0 to opts.count - 1 do
    let case_seed = Osmodel.Rng.derive rng ~index in
    let violations, outcomes = run_case opts ~index ~case_seed in
    let p, s, _ = count_outcomes outcomes in
    let gen_err =
      List.exists (fun v -> v.oracle = "generate") violations
    in
    (* the wire oracle only ever records an outcome when a report exists,
       i.e. when the field run crashed *)
    let crashed =
      List.exists (fun (o : Oracle.outcome) -> o.oracle = "wire") outcomes
    in
    summary :=
      {
        cases = !summary.cases + 1;
        gen_errors = (!summary.gen_errors + if gen_err then 1 else 0);
        crashed_cases = (!summary.crashed_cases + if crashed then 1 else 0);
        passes = !summary.passes + p;
        skips = !summary.skips + s;
        violations = !summary.violations @ violations;
      }
  done;
  Telemetry.Metrics.incr_named tel ~by:(List.length !summary.violations)
    "fuzz.violations";
  !summary

(* ------------------------------------------------------------------ *)
(* Corpus replay: same oracles over checked-in [.mc] files *)

let replay_dir (opts : opts) (dir : string) : summary =
  let entries = Corpus.load_dir dir in
  let summary =
    ref
      {
        cases = 0;
        gen_errors = 0;
        crashed_cases = 0;
        passes = 0;
        skips = 0;
        violations = [];
      }
  in
  List.iteri
    (fun index (path, loaded) ->
      let violations, outcomes =
        match loaded with
        | Error e ->
            ( [
                {
                  case_seed = 0;
                  oracle = "corpus";
                  detail = Printf.sprintf "%s: %s" path e;
                  src = "";
                  shrunk = None;
                  repro_path = None;
                };
              ],
              [] )
        | Ok g -> (
            match Gen.elaborate g with
            | Error e ->
                ( [
                    {
                      case_seed = g.Gen.seed;
                      oracle = "generate";
                      detail = Printf.sprintf "%s: %s" path (Gen.error_to_string e);
                      src = g.Gen.src;
                      shrunk = None;
                      repro_path = None;
                    };
                  ],
                  [] )
            | Ok case ->
                let ocfg = oracle_cfg opts ~index in
                let outcomes = Oracle.run ocfg case in
                ( Oracle.failed outcomes
                  |> List.map (fun (o : Oracle.outcome) ->
                         {
                           case_seed = g.Gen.seed;
                           oracle = o.oracle;
                           detail =
                             (match o.verdict with
                             | Oracle.Fail d -> Printf.sprintf "%s: %s" path d
                             | _ -> assert false);
                           src = g.Gen.src;
                           shrunk = None;
                           repro_path = None;
                         }),
                  outcomes ))
      in
      let p, s, _ = count_outcomes outcomes in
      let crashed =
        List.exists (fun (o : Oracle.outcome) -> o.oracle = "wire") outcomes
      in
      summary :=
        {
          !summary with
          cases = !summary.cases + 1;
          crashed_cases = (!summary.crashed_cases + if crashed then 1 else 0);
          passes = !summary.passes + p;
          skips = !summary.skips + s;
          violations = !summary.violations @ violations;
        })
    entries;
  !summary

(* ------------------------------------------------------------------ *)

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "fuzz: %d case(s), %d crashing, %d oracle pass(es), %d skip(s), %d \
     generator error(s), %d violation(s)"
    s.cases s.crashed_cases s.passes s.skips s.gen_errors
    (List.length s.violations);
  List.iter
    (fun v ->
      Format.fprintf ppf "@.  [%s] seed %d: %s" v.oracle v.case_seed v.detail;
      (match v.shrunk with
      | Some g ->
          Format.fprintf ppf "@.    shrunk to %d AST nodes"
            (Minic.Astcmp.size_unit g.Gen.ast)
      | None -> ());
      match v.repro_path with
      | Some p -> Format.fprintf ppf "@.    repro: %s" p
      | None -> ())
    s.violations

let summary_to_string s = Format.asprintf "%a" pp_summary s
