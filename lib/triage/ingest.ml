(** Report ingestion (see ingest.mli). *)

open Instrument

type item = {
  path : string;
  report : Report.t;
  salvage : Wire.salvage option;
}

type rejected = { path : string; error : Wire.error }

let salvaged (i : item) = i.salvage <> None

let of_string ~path (s : string) : (item, rejected) result =
  match Wire.deserialize_v s with
  | Ok report -> Ok { path; report; salvage = None }
  | Error (Wire.Unknown_version _ as e) -> Error { path; error = e }
  | Error (Wire.Malformed _) -> (
      match Wire.deserialize_salvage s with
      | Ok (report, diag) -> Ok { path; report; salvage = Some diag }
      | Error e -> Error { path; error = e })

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let load_dir dir : item list * rejected list =
  let names =
    match Sys.readdir dir with
    | entries ->
        Array.to_list entries
        |> List.filter (fun n -> Filename.check_suffix n ".report")
        |> List.sort String.compare
    | exception Sys_error _ -> []
  in
  let items, rejects =
    List.fold_left
      (fun (items, rejects) name ->
        let path = Filename.concat dir name in
        match read_file path with
        | Error msg ->
            (items, { path; error = Wire.Malformed ("unreadable: " ^ msg) } :: rejects)
        | Ok text -> (
            match of_string ~path text with
            | Ok i -> (i :: items, rejects)
            | Error r -> (items, r :: rejects)))
      ([], []) names
  in
  (List.rev items, List.rev rejects)
