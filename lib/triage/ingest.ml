(** Report ingestion (see ingest.mli). *)

open Instrument

type item = {
  path : string;
  report : Report.t;
  salvage : Wire.salvage option;
}

type rejected = { path : string; error : Wire.error }

let salvaged (i : item) = i.salvage <> None

let of_string ~path (s : string) : (item, rejected) result =
  match Wire.deserialize_v s with
  | Ok report -> Ok { path; report; salvage = None }
  | Error (Wire.Unknown_version _ as e) -> Error { path; error = e }
  | Error (Wire.Malformed _) -> (
      match Wire.deserialize_salvage s with
      | Ok (report, diag) -> Ok { path; report; salvage = Some diag }
      | Error e -> Error { path; error = e })

(* Read the whole file; any I/O failure (missing, EISDIR, a file that
   shrank between length and read) becomes an error string carrying the
   OS error text, never an exception. *)
let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with
  | Sys_error msg -> Error msg
  | End_of_file -> Error (path ^ ": truncated while reading")

let of_file path : (item, rejected) result =
  match read_file path with
  | Error msg -> Error { path; error = Wire.Malformed ("unreadable: " ^ msg) }
  | Ok text -> of_string ~path text

let report_names dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun n -> Filename.check_suffix n ".report")
      |> List.sort String.compare
  | exception Sys_error _ -> []

let ingest_names dir names : item list * rejected list =
  let items, rejects =
    List.fold_left
      (fun (items, rejects) name ->
        match of_file (Filename.concat dir name) with
        | Ok i -> (i :: items, rejects)
        | Error r -> (items, r :: rejects))
      ([], []) names
  in
  (List.rev items, List.rev rejects)

let load_dir dir : item list * rejected list =
  ingest_names dir (report_names dir)

(* ------------------------------------------------------------------ *)
(* Incremental ingestion *)

(* What the scanner remembers about an offered name.  [Sticky] — the
   strict parser accepted the file, so its content is settled and the
   name is never offered again.  [Retry] — the ingest had to salvage or
   reject (typically a file scanned mid-write), so the name is offered
   again whenever the file's (size, mtime) moves past what was read:
   once the writer finishes, the intact version replaces the torn one
   downstream ({!Cluster.better} prefers intact over salvaged). *)
type entry = Sticky | Retry of { size : int; mtime : float }

type scanner = { dir : string; seen_tbl : (string, entry) Hashtbl.t }

let scanner dir = { dir; seen_tbl = Hashtbl.create 64 }

let stat_entry path =
  match Unix.stat path with
  | st -> Some (Retry { size = st.Unix.st_size; mtime = st.Unix.st_mtime })
  | exception Unix.Unix_error _ -> None

let poll (s : scanner) : item list * rejected list =
  let offer =
    report_names s.dir
    |> List.filter (fun n ->
           match Hashtbl.find_opt s.seen_tbl n with
           | None -> true
           | Some Sticky -> false
           | Some (Retry _ as prior) -> (
               (* re-offer only when the file demonstrably changed since
                  the salvaged/rejected read; a failed stat (vanished
                  file) keeps the prior entry and skips this round *)
               match stat_entry (Filename.concat s.dir n) with
               | Some now -> now <> prior
               | None -> false))
  in
  (* Stat [before] reading: if the writer appends during or after our
     read, the live stat moves past the recorded one and the next poll
     re-offers the name.  Stat-after would race — a write finishing
     between read and stat records the settled file against torn
     content, burying the intact version forever. *)
  let pre =
    List.map (fun n -> (n, stat_entry (Filename.concat s.dir n))) offer
  in
  let items, rejects = ingest_names s.dir offer in
  let record name ~settled =
    if settled then Hashtbl.replace s.seen_tbl name Sticky
    else
      match List.assoc_opt name pre with
      | Some (Some e) -> Hashtbl.replace s.seen_tbl name e
      | Some None | None ->
          (* vanished before we could stat it: forget the name so a
             reappearance is treated as fresh *)
          Hashtbl.remove s.seen_tbl name
  in
  List.iter
    (fun (i : item) ->
      record (Filename.basename i.path) ~settled:(i.salvage = None))
    items;
  List.iter
    (fun (r : rejected) -> record (Filename.basename r.path) ~settled:false)
    rejects;
  (items, rejects)

let seen (s : scanner) =
  Hashtbl.fold (fun n _ acc -> n :: acc) s.seen_tbl []
  |> List.sort String.compare
