(** Report ingestion (see ingest.mli). *)

open Instrument

type item = {
  path : string;
  report : Report.t;
  salvage : Wire.salvage option;
}

type rejected = { path : string; error : Wire.error }

let salvaged (i : item) = i.salvage <> None

let of_string ~path (s : string) : (item, rejected) result =
  match Wire.deserialize_v s with
  | Ok report -> Ok { path; report; salvage = None }
  | Error (Wire.Unknown_version _ as e) -> Error { path; error = e }
  | Error (Wire.Malformed _) -> (
      match Wire.deserialize_salvage s with
      | Ok (report, diag) -> Ok { path; report; salvage = Some diag }
      | Error e -> Error { path; error = e })

(* Read the whole file; any I/O failure (missing, EISDIR, a file that
   shrank between length and read) becomes an error string carrying the
   OS error text, never an exception. *)
let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with
  | Sys_error msg -> Error msg
  | End_of_file -> Error (path ^ ": truncated while reading")

let of_file path : (item, rejected) result =
  match read_file path with
  | Error msg -> Error { path; error = Wire.Malformed ("unreadable: " ^ msg) }
  | Ok text -> of_string ~path text

let report_names dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun n -> Filename.check_suffix n ".report")
      |> List.sort String.compare
  | exception Sys_error _ -> []

let ingest_names dir names : item list * rejected list =
  let items, rejects =
    List.fold_left
      (fun (items, rejects) name ->
        match of_file (Filename.concat dir name) with
        | Ok i -> (i :: items, rejects)
        | Error r -> (items, r :: rejects))
      ([], []) names
  in
  (List.rev items, List.rev rejects)

let load_dir dir : item list * rejected list =
  ingest_names dir (report_names dir)

(* ------------------------------------------------------------------ *)
(* Incremental ingestion *)

type scanner = { dir : string; seen_tbl : (string, unit) Hashtbl.t }

let scanner dir = { dir; seen_tbl = Hashtbl.create 64 }

let poll (s : scanner) : item list * rejected list =
  let fresh =
    report_names s.dir
    |> List.filter (fun n -> not (Hashtbl.mem s.seen_tbl n))
  in
  List.iter (fun n -> Hashtbl.replace s.seen_tbl n ()) fresh;
  ingest_names s.dir fresh

let seen (s : scanner) =
  Hashtbl.fold (fun n () acc -> n :: acc) s.seen_tbl []
  |> List.sort String.compare
