(** Fingerprint clustering: one replay per bucket of duplicate reports.

    Groups ingested reports by {!Fingerprint.key} and elects a
    representative per cluster — preferring an intact member over a
    salvaged one, then the longest branch log (most replay guidance),
    then the lexicographically smallest path, so election is
    deterministic.  The other members ride along in the summary without
    costing a replay. *)

type t = {
  fp : Fingerprint.t;
  representative : Ingest.item;
  members : Ingest.item list;
      (** every member including the representative, sorted by path *)
}

(** Number of members. *)
val size : t -> int

(** True when the elected representative came through the salvage path. *)
val salvaged : t -> bool

(** Group items into clusters, sorted by {!Fingerprint.key}. *)
val group : Ingest.item list -> t list
