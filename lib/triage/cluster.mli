(** Fingerprint clustering: one replay per bucket of duplicate reports.

    Groups ingested reports by {!Fingerprint.key} and elects a
    representative per cluster — preferring an intact member over a
    salvaged one, then the longest branch log (most replay guidance),
    then the lexicographically smallest path, so election is
    deterministic.  The other members ride along in the summary without
    costing a replay. *)

type t = {
  fp : Fingerprint.t;
  representative : Ingest.item;
  members : Ingest.item list;
      (** every member including the representative, sorted by path *)
}

(** Number of members. *)
val size : t -> int

(** True when the elected representative came through the salvage path. *)
val salvaged : t -> bool

(** Election order: [better a b] is true when [a] makes the stronger
    representative (intact > salvaged, longer log > shorter, then
    smallest path).  Exposed so incremental ingestion can re-elect as
    members arrive without duplicating the policy. *)
val better : Ingest.item -> Ingest.item -> bool

(** Group items into clusters, sorted by {!Fingerprint.key}. *)
val group : Ingest.item list -> t list

(** {2 Incremental clustering}

    The streaming service inserts reports one at a time; a [builder]
    maintains the same buckets {!group} would produce, in any insertion
    order.  {!snapshot} renders the current clusters — byte-identical to
    [group] over the same item set, because members are (re)sorted by
    path and the representative is re-elected from scratch on every
    snapshot. *)

type builder

val builder : unit -> builder

(** Insert one item; tells the caller whether it opened a new bucket
    (with the bucket's fingerprint either way). *)
val insert :
  builder -> Ingest.item -> [ `New of Fingerprint.t | `Merged of Fingerprint.t ]

(** Number of buckets so far. *)
val bucket_count : builder -> int

(** Total items inserted so far. *)
val item_count : builder -> int

(** Current clusters, sorted by {!Fingerprint.key} — the same list
    {!group} returns for the same items. *)
val snapshot : builder -> t list
