(** Report ingestion: strict first, salvage on damage.

    Every input is first offered to the fail-closed
    {!Instrument.Wire.deserialize_v}; only when that reports [Malformed]
    does ingestion fall back to {!Instrument.Wire.deserialize_salvage},
    so an intact report is never silently reinterpreted.  An
    [Unknown_version] stays a rejection on both paths — "upgrade your
    tool" must not be laundered into a shorter log. *)

type item = {
  path : string;  (** source file (or a synthetic label for in-memory) *)
  report : Instrument.Report.t;
  salvage : Instrument.Wire.salvage option;
      (** [None] = strict parse accepted it; [Some d] = recovered prefix *)
}

type rejected = { path : string; error : Instrument.Wire.error }

(** True when the item came through the salvage path. *)
val salvaged : item -> bool

(** Ingest one report's wire text. *)
val of_string : path:string -> string -> (item, rejected) result

(** Ingest one report file.  An unreadable file is a rejection whose
    [Malformed] message carries the OS error text verbatim (e.g.
    ["unreadable: r0.report: Permission denied"]), never an exception. *)
val of_file : string -> (item, rejected) result

(** Ingest every [*.report] file of a directory, in sorted filename order
    (the order is part of the deterministic summary).  Unreadable files
    are rejected with the OS error text, not raised. *)
val load_dir : string -> item list * rejected list

(** {2 Incremental ingestion}

    A long-running service must pick up report files {e as they appear}
    without re-reading the whole directory's contents each time.  A
    {!scanner} remembers which filenames it has already offered; each
    {!poll} lists the directory once and ingests only names that are new
    — or whose previous ingest was provisional.  A name whose strict
    parse succeeded is settled and never offered again; a name that had
    to be salvaged or was rejected (typically a file scanned mid-write)
    is remembered with the (size, mtime) observed {e before} the read,
    and is offered again as soon as the file's stat moves past it — so
    when the writer finishes, the intact version flows through and
    supersedes the torn one in clustering.  A stat that stays put keeps
    the damaged verdict without re-reading the file every poll. *)

type scanner

(** Watch [dir] for [*.report] files.  The directory need not exist yet;
    polls before it appears return nothing. *)
val scanner : string -> scanner

(** Ingest files that appeared since the previous poll, in sorted
    filename order.  A directory that vanished or cannot be listed yields
    ([[]], [[]]) — the next poll retries. *)
val poll : scanner -> item list * rejected list

(** Filenames the scanner has already offered (sorted). *)
val seen : scanner -> string list
