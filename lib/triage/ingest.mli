(** Report ingestion: strict first, salvage on damage.

    Every input is first offered to the fail-closed
    {!Instrument.Wire.deserialize_v}; only when that reports [Malformed]
    does ingestion fall back to {!Instrument.Wire.deserialize_salvage},
    so an intact report is never silently reinterpreted.  An
    [Unknown_version] stays a rejection on both paths — "upgrade your
    tool" must not be laundered into a shorter log. *)

type item = {
  path : string;  (** source file (or a synthetic label for in-memory) *)
  report : Instrument.Report.t;
  salvage : Instrument.Wire.salvage option;
      (** [None] = strict parse accepted it; [Some d] = recovered prefix *)
}

type rejected = { path : string; error : Instrument.Wire.error }

(** True when the item came through the salvage path. *)
val salvaged : item -> bool

(** Ingest one report's wire text. *)
val of_string : path:string -> string -> (item, rejected) result

(** Ingest every [*.report] file of a directory, in sorted filename order
    (the order is part of the deterministic summary).  Unreadable files
    are rejected, not raised. *)
val load_dir : string -> item list * rejected list
