(** Report triage: salvage, dedup and budgeted batch replay.

    The developer-side ingestion tier for report streams (ROADMAP:
    "heavy traffic from millions of users").  A directory of [.report]
    files — many duplicates of one bug, many torn mid-flush — is
    ingested leniently ({!Ingest}, backed by
    [Wire.deserialize_salvage]), clustered by crash-site fingerprint
    ({!Fingerprint}, {!Cluster}), replayed one representative per
    cluster under escalating budgets and a global deadline ({!Sched}),
    and rendered as a deterministic summary ({!Summary}). *)

module Fingerprint = Fingerprint
module Ingest = Ingest
module Cluster = Cluster
module Sched = Sched
module Summary = Summary

type resolve = Sched.resolve

let run_items ?policy ?(telemetry = Telemetry.disabled)
    ~(resolve : resolve) ?(rejected : Ingest.rejected list = [])
    (items : Ingest.item list) : Summary.t =
  Telemetry.Span.with_ telemetry ~name:"triage"
    ~attrs:[ ("reports", Telemetry.Event.Int (List.length items)) ]
  @@ fun sp ->
  let started = Unix.gettimeofday () in
  let clusters =
    Telemetry.Span.with_ telemetry ~parent:sp ~name:"triage.cluster" (fun csp ->
        let cs = Cluster.group items in
        Telemetry.Span.addi csp "clusters" (List.length cs);
        cs)
  in
  Telemetry.Metrics.incr_named telemetry ~by:(List.length items)
    "triage.reports";
  Telemetry.Metrics.incr_named telemetry
    ~by:(List.length (List.filter Ingest.salvaged items))
    "triage.salvaged";
  Telemetry.Metrics.incr_named telemetry ~by:(List.length rejected)
    "triage.rejected";
  Telemetry.Metrics.incr_named telemetry ~by:(List.length clusters)
    "triage.clusters";
  let results = Sched.run ?policy ~telemetry ~resolve clusters in
  let wall_s = Unix.gettimeofday () -. started in
  let summary = Summary.make ~rejected ~items ~results ~wall_s in
  Telemetry.Span.addi sp "clusters" (List.length clusters);
  Telemetry.Span.addi sp "reproduced"
    (summary.Summary.reproduced + summary.Summary.salvaged_reproduced);
  summary

let run_dir ?policy ?(telemetry = Telemetry.disabled) ~(resolve : resolve)
    (dir : string) : Summary.t =
  let items, rejected =
    Telemetry.Span.with_ telemetry ~name:"triage.ingest"
      ~attrs:[ ("dir", Telemetry.Event.Str dir) ]
      (fun isp ->
        let items, rejected = Ingest.load_dir dir in
        Telemetry.Span.addi isp "accepted" (List.length items);
        Telemetry.Span.addi isp "rejected" (List.length rejected);
        (items, rejected))
  in
  run_items ?policy ~telemetry ~resolve ~rejected items
