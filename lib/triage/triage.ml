(** Report triage: streaming ingestion service over salvage, dedup and
    budgeted replay.

    The developer-side ingestion tier for report streams (ROADMAP:
    "heavy traffic from millions of users").  Reports — many duplicates
    of one bug, many torn mid-flush — are ingested leniently ({!Ingest},
    backed by [Wire.deserialize_salvage]), clustered by crash-site
    fingerprint ({!Fingerprint}, {!Cluster}), replayed one
    representative per cluster under escalating budgets ({!Sched}), and
    rendered as a deterministic summary ({!Summary}).  The primary entry
    point is the long-running {!Service}; {!run_items} / {!run_dir} wrap
    it for one-shot batches. *)

module Fingerprint = Fingerprint
module Ingest = Ingest
module Cluster = Cluster
module Sched = Sched
module Summary = Summary
module Window = Window
module Index = Index
module Service = Service

type resolve = Sched.resolve

let run_items ?policy ?index_dir ?(telemetry = Telemetry.disabled)
    ~(resolve : resolve) ?(rejected : Ingest.rejected list = [])
    (items : Ingest.item list) : (Summary.t, Index.error) result =
  Telemetry.Span.with_ telemetry ~name:"triage"
    ~attrs:[ ("reports", Telemetry.Event.Int (List.length items)) ]
  @@ fun sp ->
  (* one-shot service: every item fits the queue, no overload shedding,
     no eager climbing — drain does all the replaying, exactly like the
     old batch scheduler did.  Batches keep wall-clock ladder rungs so
     the CLI's --deadline/--timeout semantics are unchanged. *)
  let config =
    {
      Service.default_config with
      Service.policy =
        (match policy with Some p -> p | None -> Sched.default_policy);
      queue_capacity = max 1 (List.length items);
      drop = Service.Reject_new;
      eager = false;
      wall_rungs = true;
      index_dir;
    }
  in
  match Service.open_ ~config ~telemetry ~resolve () with
  | Error e -> Error e
  | Ok svc ->
      List.iter (fun i -> ignore (Service.submit_item svc i)) items;
      Telemetry.Metrics.incr_named telemetry ~by:(List.length items)
        "triage.reports";
      Telemetry.Metrics.incr_named telemetry
        ~by:(List.length (List.filter Ingest.salvaged items))
        "triage.salvaged";
      Telemetry.Metrics.incr_named telemetry ~by:(List.length rejected)
        "triage.rejected";
      let summary = Service.drain ~rejected svc in
      Service.close svc;
      Telemetry.Metrics.incr_named telemetry
        ~by:(List.length summary.Summary.clusters)
        "triage.clusters";
      Telemetry.Span.addi sp "clusters" (List.length summary.Summary.clusters);
      Telemetry.Span.addi sp "reproduced"
        (summary.Summary.reproduced + summary.Summary.salvaged_reproduced);
      Ok summary

let run_dir ?policy ?index_dir ?(telemetry = Telemetry.disabled)
    ~(resolve : resolve) (dir : string) : (Summary.t, Index.error) result =
  let items, rejected =
    Telemetry.Span.with_ telemetry ~name:"triage.ingest"
      ~attrs:[ ("dir", Telemetry.Event.Str dir) ]
      (fun isp ->
        let items, rejected = Ingest.load_dir dir in
        Telemetry.Span.addi isp "accepted" (List.length items);
        Telemetry.Span.addi isp "rejected" (List.length rejected);
        (items, rejected))
  in
  run_items ?policy ?index_dir ~telemetry ~resolve ~rejected items
