(** Streaming triage service: long-running ingestion, incremental
    clustering, eager budgeted replay, restart-safe crash buckets.

    The batch entry points ({!Triage.run_items} / {!Triage.run_dir})
    triage a directory once and exit; a fleet does not crash in batches.
    A {!t} is instead a long-lived handle: reports are {!submit}ted as
    they arrive, buffered in a bounded ingest queue, clustered
    incrementally ({!Cluster.builder}) on every {!tick}, appended to a
    persistent fingerprint index ({!Index}) so buckets survive restarts,
    observed by sliding-window analytics ({!Window}), and — while the
    queue is shallow — replayed eagerly, a ladder rung or two at a time
    ({!Sched.course_step}), so answers are already in hand when the
    operator finally {!drain}s.

    {b Determinism.}  The summary a {!drain} renders is byte-identical
    (in the [~timing:false] form) to {!Triage.run_items} over the same
    accepted report set: clustering is insertion-order independent,
    per-cluster replay seeds derive from (policy seed, fingerprint), and
    splitting a ladder climb across ticks does not change its outcome
    (see {!Sched.course_step}).  Overload shedding is the one sanctioned
    divergence — and it is itself deterministic for a given submission
    sequence, because {!Sample} draws from an {!Osmodel.Rng} seeded by
    the policy seed.

    {b Backpressure.}  The ingest queue holds at most
    [config.queue_capacity] parsed reports.  A submission that finds it
    full is resolved by [config.drop]: rejected outright
    ({!Reject_new}), admitted by evicting the oldest queued report
    ({!Drop_oldest}), or admitted with probability [p] — evicting the
    oldest — and shed otherwise ({!Sample}).  Every shed report is
    counted ([triage.service.dropped]) and visible in {!snapshot};
    nothing is ever silently lost. *)

type drop_policy =
  | Reject_new  (** a full queue refuses new submissions *)
  | Drop_oldest  (** a full queue evicts its oldest unprocessed report *)
  | Sample of float
      (** admit with probability [p] (evicting the oldest), shed with
          probability [1 - p]; seeded, so deterministic per stream *)

type config = {
  policy : Sched.policy;  (** replay policy; its [seed] also seeds {!Sample} *)
  queue_capacity : int;  (** parsed reports buffered between ticks *)
  drop : drop_policy;
  burst : int;  (** reports clustered per {!tick} *)
  window : int;  (** sliding analytics ring size *)
  window_k : int;  (** top-K crashers per cohort *)
  eager : bool;
      (** climb replay ladders during ticks, queue pressure permitting
          ({!Sched.rungs_for_pressure}); off = replay only at drain *)
  wall_rungs : bool;
      (** [false] (the default): ladder rungs are {e run-bounded} — each
          rung's wall-clock limit is stripped at open, so a borderline
          cluster's reproduced-vs-timed_out verdict depends only on its
          replay-run budget, never on a shared core being slow during an
          eager tick.  [true] restores the wall-clock ladder and bounds
          each climb by [policy.deadline_s] (the batch wrappers opt in,
          keeping the CLI's --deadline/--timeout semantics). *)
  index_dir : string option;  (** persistent index directory, if any *)
  index_shards : int;  (** shard count for a {e fresh} index *)
}

(** {!Sched.default_policy}, capacity 256, {!Reject_new}, burst 32,
    window 256, k 5, eager, run-bounded rungs, no index (shards 16 when
    one is given). *)
val default_config : config

type t

type outcome =
  | Queued  (** accepted (under {!Drop_oldest}/{!Sample} possibly by
                evicting an older queued report) *)
  | Dropped of string  (** shed by the overload policy; human reason *)
  | Rejected of Instrument.Wire.error
      (** unparseable even by salvage, or an unknown wire version *)

(** Open a service.  When [config.index_dir] names an existing index,
    every record is reloaded — in (shard, record) order — through the
    normal clustering path, so buckets, representative election, salvage
    flags and window analytics are rebuilt exactly as the previous
    incarnation left them; the reload fails closed on index damage.
    [resolve] is consulted lazily, once per cluster, and must depend
    only on the representative's report (it may be handed a provisional
    one-member cluster during eager replay). *)
val open_ :
  ?config:config ->
  ?telemetry:Telemetry.t ->
  resolve:Sched.resolve ->
  unit ->
  (t, Index.error) result

(** Submit one report as wire text ([path] is its provenance label).
    Parsing (strict, then salvage) happens at submission; only parseable
    reports occupy queue slots. *)
val submit : t -> path:string -> string -> outcome

(** Submit an already-ingested item (the batch wrappers' path). *)
val submit_item : t -> Ingest.item -> outcome

(** Read and submit one report file ({!Ingest.of_file}). *)
val submit_file : t -> string -> outcome

(** Process up to [config.burst] queued reports — cluster, index,
    window-observe — then, when [config.eager] and pressure allows,
    climb the first unfinished replay course by the allotted rungs.
    Returns the number of reports processed. *)
val tick : t -> int

(** Current queue depth and depth ÷ capacity. *)
val queue_depth : t -> int

val pressure : t -> float

type snapshot = {
  submitted : int;  (** every submission, whatever its outcome *)
  rejected : int;  (** unparseable submissions *)
  dropped : int;  (** shed by the overload policy (incl. evictions) *)
  queued : int;  (** parsed reports awaiting a tick *)
  capacity : int;
  processed : int;  (** clustered reports (incl. reloaded from the index) *)
  clusters : int;
  replayed : int;  (** clusters whose replay course already finished *)
  dedup_ratio : float;  (** clusters ÷ processed; 1.0 when empty *)
  window : Window.stats;
}

(** Instantaneous service state; no wall-clock fields, so two services
    fed the same stream snapshot identically. *)
val snapshot : t -> snapshot

(** Strict JSON rendering of a snapshot. *)
val snapshot_to_json : snapshot -> string

(** Flush the queue completely (no burst bound), finish every cluster's
    replay course on the policy's worker pool under a fresh
    [policy.deadline_s] window, and render the batch-compatible summary.
    [rejected] adds rejections that never went through {!submit} (the
    batch wrappers' pre-ingested ones).  The service stays open: later
    submissions extend the same buckets, and a later drain re-renders
    (re-emitting per-cluster status counters for every cluster). *)
val drain : ?rejected:Ingest.rejected list -> t -> Summary.t

(** Per-cluster replay results as of now, in fingerprint order: sticky
    resolve failures, plus every cluster whose course has been opened
    (all of them, once {!drain} has run).  Read-only — never starts
    work.  This is the adaptive loop's feed: per-cohort case counters
    ([log_exhausted], contradictions) and statuses, with the full
    {!Cluster.t} attached so the caller can key on
    [fp.Fingerprint.cohort]. *)
val cluster_results : t -> Sched.cluster_result list

(** Close the persistent index (if any).  Further submissions raise;
    draining a closed service is allowed (it no longer persists). *)
val close : t -> unit
