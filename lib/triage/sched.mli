(** Budgeted batch scheduler: replay one representative per cluster.

    Clusters are drained from a queue by a pool of worker domains
    ([policy.jobs]); each representative is replayed under an
    escalating-budget ladder (default 2 s → 10 s → the full replay
    budget), so one pathological report can never starve the batch, and
    the whole batch is bounded by a global wall-clock deadline.  One
    {!Solver.Cache} is shared across every replay of the batch.

    Determinism: each cluster's replay runs with [jobs = 1] inside the
    worker and a seed derived from the batch seed and the cluster's
    fingerprint, so the *outcome* per cluster does not depend on which
    worker picked it up or in which order — [jobs = 1] and [jobs = 4]
    batches differ only in timing fields (see DESIGN.md §5f for the
    shared-cache caveat).

    The exception is [final_rung_jobs] (default 1, preserving the above
    verbatim): when > 1, the ladder's *final* rung replays with that many
    worker domains inside the search (work-stealing frontier, §5h).  The
    final rung is where the few heavy, near-exhaustive searches land
    after every cheap rung failed, and it typically runs when the cluster
    queue has already drained — the pool would otherwise sit idle.
    Whether such a search reproduces is still scheduling-independent, but
    *which* crashing input it finds first (the summary's model) may vary
    with the worker count. *)

type policy = {
  ladder : Concolic.Engine.budget list;
      (** escalating per-representative budgets, tried in order *)
  deadline_s : float;  (** global wall-clock bound for the whole batch *)
  jobs : int;  (** worker domains draining the cluster queue *)
  final_rung_jobs : int;
      (** worker domains *inside* the final rung's replay (default 1;
          see the determinism note above) *)
  max_attempts : int;  (** reseed restarts within one ladder rung *)
  solver_cache : bool;  (** share one memoizing cache across the batch *)
  incremental : bool;
      (** open one {!Solver.Incr.t} per cluster, shared across its ladder
          rungs (scope reuse, core pruning, portfolio statistics) *)
  steal : bool;  (** work-stealing frontier inside each replay (jobs > 1) *)
  seed : int;  (** batch seed; per-cluster seeds derive from it *)
}

(** 2 s / 10 s / full {!Concolic.Engine.default_budget}, 60 s deadline,
    sequential, one attempt per rung, cache on, incremental solving and
    stealing on, seed 1. *)
val default_policy : policy

(** Derive a policy from the pipeline config: [replay_budget] caps the
    ladder's last rung, [jobs], [solver_cache] and [seed] carry over. *)
val policy_of_config : Bugrepro.Pipeline.Config.t -> policy

type status =
  | Reproduced of {
      model : Solver.Model.t;
      vars : Solver.Symvars.t;  (** registry for decoding the model *)
      crash : Interp.Crash.t;
    }
  | Timed_out  (** every rung (or the global deadline) ran out of budget *)
  | Exhausted  (** the pending frontier dried up cleanly — no input found *)
  | Failed of string  (** the cluster's program could not be resolved *)

type cluster_result = {
  cluster : Cluster.t;
  status : status;
  rungs : int;  (** ladder rungs actually tried *)
  runs : int;  (** engine runs summed over rungs *)
  elapsed_s : float;
      (** cumulative wall clock over every rung — monotone in the rung
          index, so a retried report never reports less elapsed time than
          its predecessor attempts *)
  rung_elapsed_s : float list;  (** per-rung breakdown, in rung order *)
  cases : Replay.Guided.case_stats;  (** §3.1 counters summed over rungs *)
}

(** All-zero §3.1 case counters (for synthesizing results — e.g. a
    cluster whose program failed to resolve). *)
val zero_cases : unit -> Replay.Guided.case_stats

(** Resolve a cluster's program text and instrumentation plan (the wire
    form carries only the program's name).  Called in the scheduling
    domain, once per cluster, before workers start. *)
type resolve =
  Cluster.t -> (Minic.Program.t * Instrument.Plan.t, string) result

(** Replay every cluster's representative; results come back in cluster
    order regardless of worker scheduling. *)
val run :
  ?policy:policy ->
  ?telemetry:Telemetry.t ->
  resolve:resolve ->
  Cluster.t list ->
  cluster_result list

(** {2 Resumable courses}

    A [course] is one cluster's ladder climb, pausable between rungs.
    {!run} climbs each course in one go; the streaming service instead
    climbs a rung or two per ingestion tick — eagerly, while the queue is
    shallow — and finishes whatever remains at drain time.  Splitting a
    climb across ticks cannot change its outcome: each rung's replay is
    deterministic given (budget, seed), the seed is a pure function of
    the batch seed and the cluster's fingerprint, and the per-cluster
    solver scope rides inside the course. *)

type course

(** Fresh course over the cluster's representative, ladder untouched.
    Opens the per-cluster {!Solver.Incr} scope when
    [policy.incremental]. *)
val course :
  policy:policy ->
  prog:Minic.Program.t ->
  plan:Instrument.Plan.t ->
  Cluster.t ->
  course

val course_cluster : course -> Cluster.t

(** True once the climb reached an outcome ({!course_step} returned
    [true], or {!course_interrupt} fired). *)
val course_done : course -> bool

(** Climb at most [max_rungs] further rungs before [deadline] (each
    rung's time budget is clamped to what is left of it).  Returns [true]
    when the course finished — reproduced, cleanly exhausted, or every
    rung tried and timed out.  Returns [false] when merely paused: the
    rung allotment ran out or the deadline has under 50 ms left.  A
    paused course resumes exactly where it stopped; deadline expiry is
    the {e caller's} decision, via {!course_interrupt}. *)
val course_step :
  ?telemetry:Telemetry.t ->
  ?cache:Solver.Cache.t ->
  deadline:float ->
  max_rungs:int ->
  course ->
  bool

(** Finalize an unfinished course as {!Timed_out} (deadline expiry).
    No-op on a finished course. *)
val course_interrupt : course -> unit

(** Render the course's {!cluster_result}.  An unfinished course renders
    as {!Timed_out} (without being finalized); cumulative [elapsed_s] /
    [runs] / [cases] cover every rung climbed so far. *)
val course_result : course -> cluster_result

(** Eager-replay rung allotment per tick from queue pressure
    (depth ÷ capacity): [>= 0.75 → 0] (all ingest), [>= 0.25 → 1],
    [> 0 → 2], idle [0.0 → max_int] (climb freely). *)
val rungs_for_pressure : float -> int

(** Finish a batch of courses on the policy's worker pool — climb each to
    completion before [deadline] (interrupting stragglers), with the same
    per-cluster spans and status counters {!run} emits.  Results in input
    order.  [cache] is the batch-shared solver cache, if any. *)
val run_courses :
  ?policy:policy ->
  ?telemetry:Telemetry.t ->
  ?cache:Solver.Cache.t ->
  deadline:float ->
  course list ->
  cluster_result list
