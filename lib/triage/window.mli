(** Sliding-window ingestion analytics, per cohort.

    The streaming service ({!Service}) observes every report it clusters
    into a fixed-size ring of recent events; {!stats} folds the ring into
    the fleet-health numbers a triage dashboard wants: how fast new crash
    clusters appear ([new_cluster_rate]), how much the stream deduplicates
    ([dedup_ratio] = distinct fingerprints / events), and the top-K
    crashers by report volume.  Everything is keyed by logical sequence
    (arrival order), never wall clock, so two services fed the same stream
    render byte-identical analytics — the same determinism model as
    {!Summary}.

    A {e cohort} is an arbitrary caller-chosen slice of the fleet (a
    deployment ring, an app version, a client shard); per-cohort rows make
    "the canary ring is crashing on a cluster the stable ring never hits"
    visible directly.  Cohorts default to the report's program name when
    the submitter does not say. *)

type t

(** [make ~size ()] observes the last [size] events; [k] (default 5)
    bounds the top-crasher lists. *)
val make : ?k:int -> size:int -> unit -> t

(** Record one clustered report.  [key] identifies its crash bucket (the
    fingerprint key), [novel] whether this report opened a new cluster. *)
val observe : t -> cohort:string -> key:string -> novel:bool -> unit

type cohort_stats = {
  cohort : string;  (** "*" for the all-cohorts total *)
  events : int;  (** reports from this cohort inside the window *)
  new_clusters : int;  (** reports that opened a new cluster *)
  distinct : int;  (** distinct fingerprint keys *)
  top : (string * int) list;
      (** top-K crash buckets by report count, count desc then key asc *)
}

type stats = {
  window : int;  (** configured ring size *)
  seen : int;  (** events observed over the service lifetime *)
  total : cohort_stats;
  cohorts : cohort_stats list;  (** sorted by cohort name *)
}

(** Fold the current ring.  Deterministic in the event sequence. *)
val stats : t -> stats

(** [new_cluster_rate s] = new clusters per windowed event (0 when the
    window is empty); [dedup_ratio s] = distinct / events (1 when empty —
    nothing collapsed). *)
val new_cluster_rate : cohort_stats -> float

val dedup_ratio : cohort_stats -> float

(** Strict JSON rendering of {!stats} (same hand-rendered dialect as
    {!Summary.to_json}). *)
val stats_to_json : stats -> string
