(** Persistent sharded fingerprint index (see index.mli). *)

let magic_prefix = "bugrepro-index/"
let version = 1

type error = Unknown_version of int | Malformed of string

let error_to_string = function
  | Unknown_version v -> Printf.sprintf "unsupported index version %d" v
  | Malformed m -> "malformed index: " ^ m

type t = {
  dir : string;
  shards : out_channel array;  (** append handles, one per shard file *)
  mutable loaded : Ingest.item list;  (** reverse record order *)
  mutable n_records : int;
  mutable closed : bool;
}

let shard_path dir i = Filename.concat dir (Printf.sprintf "shard-%03d.idx" i)

(* Shard choice: the crash-site key alone (not the full fingerprint), so
   every report of one crash bucket — torn or intact, any log length —
   lands in the same file. *)
let shard_of_report nshards (r : Instrument.Report.t) =
  let fp = Fingerprint.of_report r in
  Hashtbl.hash fp.Fingerprint.crash_key mod nshards

(* ------------------------------------------------------------------ *)
(* Record format, after the header line:
     item <salvaged:0|1> <path-byte-length> <raw-byte-length>\n
     <path bytes>\n
     <raw bytes>\n
   Lengths are byte counts of the payloads alone (not the framing \n). *)

let write_record oc ~salvaged ~path ~raw =
  Printf.fprintf oc "item %d %d %d\n%s\n%s\n"
    (if salvaged then 1 else 0)
    (String.length path) (String.length raw) path raw;
  flush oc

(* A synthetic diagnosis for reloads where only the flag survived (the
   caller appended a re-serialized report): keeps Ingest.salvaged true
   without inventing loss numbers. *)
let synthetic_salvage : Instrument.Wire.salvage =
  {
    complete = false;
    dropped_lines = 0;
    lost_log_bits = 0;
    dropped_syscalls = 0;
    dropped_schedule = false;
  }

let parse_shard ~file (text : string) : (Ingest.item list, error) result =
  let n = String.length text in
  let fail fmt = Printf.ksprintf (fun m -> Error (Malformed (file ^ ": " ^ m))) fmt in
  let line_end from =
    match String.index_from_opt text from '\n' with
    | Some e -> Ok e
    | None -> Error (Malformed (file ^ ": missing newline"))
  in
  match line_end 0 with
  | Error e -> Error e
  | Ok hdr_end -> (
      let header = String.sub text 0 hdr_end in
      let plen = String.length magic_prefix in
      if
        String.length header < plen
        || String.sub header 0 plen <> magic_prefix
      then fail "bad magic in header %S" header
      else
        match int_of_string_opt (String.sub header plen (String.length header - plen)) with
        | None -> fail "unreadable version in header %S" header
        | Some v when v < 1 || v > version -> Error (Unknown_version v)
        | Some _ ->
            let rec records pos acc =
              if pos >= n then Ok (List.rev acc)
              else
                match line_end pos with
                | Error e -> Error e
                | Ok hend -> (
                    let hline = String.sub text pos (hend - pos) in
                    match String.split_on_char ' ' hline with
                    | [ "item"; sflag; spath; sraw ] -> (
                        match
                          ( int_of_string_opt sflag,
                            int_of_string_opt spath,
                            int_of_string_opt sraw )
                        with
                        | Some flag, Some plen, Some rlen
                          when (flag = 0 || flag = 1)
                               && plen >= 0 && rlen >= 0
                               && hend + 1 + plen + 1 + rlen + 1 <= n
                               && text.[hend + 1 + plen] = '\n'
                               && text.[hend + 1 + plen + 1 + rlen] = '\n' ->
                            let path = String.sub text (hend + 1) plen in
                            let raw =
                              String.sub text (hend + 1 + plen + 1) rlen
                            in
                            (* re-ingest the original bytes: strict first,
                               salvage on damage — identical to the live
                               submission path *)
                            (match Ingest.of_string ~path raw with
                            | Error r ->
                                fail "record %S no longer ingests (%s)" path
                                  (Instrument.Wire.error_to_string
                                     r.Ingest.error)
                            | Ok item ->
                                let item =
                                  if flag = 1 && item.Ingest.salvage = None
                                  then
                                    (* appended from a parsed report whose
                                       original tear is gone; restore the
                                       salvage flag the submitter saw *)
                                    { item with
                                      Ingest.salvage = Some synthetic_salvage }
                                  else item
                                in
                                if flag = 0 && Ingest.salvaged item then
                                  fail
                                    "record %S was intact at append time but \
                                     salvages now"
                                    path
                                else
                                  records
                                    (hend + 1 + plen + 1 + rlen + 1)
                                    (item :: acc))
                        | _ -> fail "bad record header %S" hline)
                    | _ -> fail "bad record header %S" hline)
            in
            records (hdr_end + 1) [])

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let existing_shards dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun n ->
             String.length n = String.length "shard-000.idx"
             && String.sub n 0 6 = "shard-"
             && Filename.check_suffix n ".idx")
      |> List.sort String.compare
  | exception Sys_error _ -> []

let open_ ?(shards = 16) ~dir () : (t, error) result =
  if shards <= 0 then invalid_arg "Index.open_: shards must be positive";
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let names = existing_shards dir in
  let fresh = names = [] in
  let nshards = if fresh then shards else List.length names in
  if fresh then begin
    (* write every header up front so the shard count is recorded on disk
       and reopen never has to guess it *)
    for i = 0 to nshards - 1 do
      let oc = open_out_bin (shard_path dir i) in
      Printf.fprintf oc "%s%d\n" magic_prefix version;
      close_out oc
    done
  end;
  let rec load i acc =
    if i >= nshards then Ok acc
    else
      let file = shard_path dir i in
      match read_file file with
      | exception Sys_error msg -> Error (Malformed ("unreadable: " ^ msg))
      | text -> (
          match parse_shard ~file:(Filename.basename file) text with
          | Error e -> Error e
          | Ok items -> load (i + 1) (acc @ items))
  in
  match load 0 [] with
  | Error e -> Error e
  | Ok loaded_items ->
      let handles =
        Array.init nshards (fun i ->
            open_out_gen [ Open_append; Open_binary ] 0o644 (shard_path dir i))
      in
      Ok
        {
          dir;
          shards = handles;
          loaded = List.rev loaded_items;
          n_records = List.length loaded_items;
          closed = false;
        }

let items (t : t) = List.rev t.loaded
let size (t : t) = t.n_records
let shard_count (t : t) = Array.length t.shards

let append ?raw (t : t) (item : Ingest.item) =
  if t.closed then invalid_arg "Index.append: index is closed";
  let raw =
    match raw with
    | Some r -> r
    | None -> Instrument.Wire.serialize item.Ingest.report
  in
  let shard = shard_of_report (Array.length t.shards) item.Ingest.report in
  write_record t.shards.(shard) ~salvaged:(Ingest.salvaged item)
    ~path:item.Ingest.path ~raw;
  t.n_records <- t.n_records + 1

let close (t : t) =
  if not t.closed then begin
    t.closed <- true;
    Array.iter close_out_noerr t.shards
  end
