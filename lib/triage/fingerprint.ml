(** Crash-report fingerprints for duplicate clustering (see
    fingerprint.mli). *)

open Instrument

type t = {
  program : string;
  cohort : string option;
  crash_key : string;
  method_code : string;
  log_bucket : int;
  prefix_hash : int;
  histogram : int array;
}

let crash_key (c : Interp.Crash.t) =
  Printf.sprintf "%s@%s:%d:%d#%s"
    (Interp.Crash.kind_to_string c.kind)
    c.loc.file c.loc.line c.loc.col c.in_func

let method_code = function
  | Methods.No_instrumentation -> "none"
  | Methods.Dynamic -> "dynamic"
  | Methods.Static -> "static"
  | Methods.Dynamic_static -> "dynamic+static"
  | Methods.All_branches -> "all"

(* Bit length of n+1: buckets 0, [1], [2,3], [4..7], ... — two logs whose
   lengths differ by less than 2x usually share a bucket, so a slightly
   torn duplicate can still collapse when its prefix also matches. *)
let log2_bucket n =
  let rec go acc n = if n <= 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 (n + 1)

(* One streaming pass over the report's payload (raw or encoded — no full
   decode of an encoded log) builds both clustering features:

   - the first 32 log bytes, reassembled LSB-first exactly as
     {!Branch_log} packs them, hashed for the prefix component;
   - the quantized bit-count histogram: the logged bit range split into 8
     equal chunks, each chunk's popcount divided by 8 — coarse enough to
     absorb per-run jitter in loop trip counts, fine enough to separate
     genuinely different branch behaviour.

   Raw and encoded twins of the same run stream identical bits, so they
   produce identical fingerprints and cluster together. *)
let prefix_and_histogram (r : Report.t) =
  let nbits = Instrument.Report.nbits r in
  let h = Array.make 8 0 in
  let prefix_bytes = min 32 ((nbits + 7) / 8) in
  let prefix = Bytes.make prefix_bytes '\000' in
  if nbits > 0 then begin
    let chunk = max 1 ((nbits + 7) / 8) in
    let reader = Report.reader r in
    let bit = ref 0 in
    let continue = ref true in
    while !continue do
      match Report.read_next reader with
      | None -> continue := false
      | Some taken ->
          let i = !bit in
          if taken then begin
            (if i / 8 < prefix_bytes then
               let cur = Char.code (Bytes.get prefix (i / 8)) in
               Bytes.set prefix (i / 8)
                 (Char.chr (cur lor (1 lsl (i mod 8)))));
            let slot = min 7 (i / chunk) in
            h.(slot) <- h.(slot) + 1
          end;
          incr bit
    done;
    Array.iteri (fun i v -> h.(i) <- v / 8) h
  end;
  (Bytes.to_string prefix, h)

let of_report (r : Report.t) : t =
  let prefix, histogram = prefix_and_histogram r in
  {
    program = r.program;
    cohort = r.cohort;
    crash_key = crash_key r.crash;
    method_code = method_code r.method_used;
    log_bucket = log2_bucket (Instrument.Report.nbits r);
    prefix_hash = Hashtbl.hash prefix;
    histogram;
  }

let key (t : t) =
  (* the cohort component is appended only when present, so untagged
     (non-adaptive) reports keep their historical keys — persisted index
     buckets from before the tag reload unchanged *)
  Printf.sprintf "%s%s|%s|%s|b%d|p%08x|h%s" t.program
    (match t.cohort with Some c -> "+" ^ c | None -> "")
    t.crash_key t.method_code t.log_bucket t.prefix_hash
    (String.concat "." (Array.to_list (Array.map string_of_int t.histogram)))

let equal a b = key a = key b
