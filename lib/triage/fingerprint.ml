(** Crash-report fingerprints for duplicate clustering (see
    fingerprint.mli). *)

open Instrument

type t = {
  program : string;
  crash_key : string;
  method_code : string;
  log_bucket : int;
  prefix_hash : int;
  histogram : int array;
}

let crash_key (c : Interp.Crash.t) =
  Printf.sprintf "%s@%s:%d:%d#%s"
    (Interp.Crash.kind_to_string c.kind)
    c.loc.file c.loc.line c.loc.col c.in_func

let method_code = function
  | Methods.No_instrumentation -> "none"
  | Methods.Dynamic -> "dynamic"
  | Methods.Static -> "static"
  | Methods.Dynamic_static -> "dynamic+static"
  | Methods.All_branches -> "all"

(* Bit length of n+1: buckets 0, [1], [2,3], [4..7], ... — two logs whose
   lengths differ by less than 2x usually share a bucket, so a slightly
   torn duplicate can still collapse when its prefix also matches. *)
let log2_bucket n =
  let rec go acc n = if n <= 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 (n + 1)

(* Quantized bit-count histogram: split the logged bit range into 8 equal
   chunks and keep each chunk's popcount divided by 8 — coarse enough to
   absorb per-run jitter in loop trip counts, fine enough to separate
   genuinely different branch behaviour. *)
let histogram (log : Branch_log.log) =
  let h = Array.make 8 0 in
  if log.nbits > 0 then begin
    let chunk = max 1 ((log.nbits + 7) / 8) in
    for bit = 0 to log.nbits - 1 do
      let byte = Char.code log.bytes.[bit / 8] in
      let set = (byte lsr (bit mod 8)) land 1 in
      let slot = min 7 (bit / chunk) in
      h.(slot) <- h.(slot) + set
    done;
    Array.iteri (fun i v -> h.(i) <- v / 8) h
  end;
  h

let of_report (r : Report.t) : t =
  let log = r.branch_log in
  let prefix =
    String.sub log.bytes 0 (min 32 (String.length log.bytes))
  in
  {
    program = r.program;
    crash_key = crash_key r.crash;
    method_code = method_code r.method_used;
    log_bucket = log2_bucket log.nbits;
    prefix_hash = Hashtbl.hash prefix;
    histogram = histogram log;
  }

let key (t : t) =
  Printf.sprintf "%s|%s|%s|b%d|p%08x|h%s" t.program t.crash_key t.method_code
    t.log_bucket t.prefix_hash
    (String.concat "." (Array.to_list (Array.map string_of_int t.histogram)))

let equal a b = key a = key b
