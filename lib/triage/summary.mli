(** Deterministic triage summary, in text and strict JSON.

    Clusters are ordered by fingerprint key and every list inside an
    entry is sorted, so two triage passes over the same batch with the
    same seed render byte-identical summaries — except for the timing
    block ([elapsed_s], [runs], [wall_s]), which {!to_json} can omit
    ([~timing:false]) to make the deterministic comparison form. *)

type status =
  | Reproduced  (** intact representative, crashing input found *)
  | Salvaged_reproduced  (** torn representative salvaged, then reproduced *)
  | Timed_out
  | Exhausted  (** frontier dried up cleanly — no crashing input exists
                   within the replay's search space *)

val status_name : status -> string

type entry = {
  fingerprint : string;
  program : string;
  crash : string;
  status : status;
  representative : string;  (** path of the replayed member *)
  members : string list;  (** all member paths, sorted *)
  salvaged : int;  (** members that came through the salvage path *)
  model : (string * int) list;
      (** crashing input as sorted [name, value] bindings; [] unless
          reproduced *)
  rungs : int;
  runs : int;
  elapsed_s : float;
}

type t = {
  reports : int;  (** ingested (accepted) reports *)
  salvaged : int;  (** ingested through the salvage path *)
  rejected : (string * string) list;  (** path, reason — sorted by path *)
  clusters : entry list;  (** sorted by fingerprint key *)
  dedup_ratio : float;  (** clusters / reports; 1.0 when nothing collapsed *)
  reproduced : int;
  salvaged_reproduced : int;
  timed_out : int;
  exhausted : int;
  wall_s : float;  (** batch wall clock *)
}

val make :
  rejected:Ingest.rejected list ->
  items:Ingest.item list ->
  results:Sched.cluster_result list ->
  wall_s:float ->
  t

val to_text : t -> string

(** Strict JSON.  [timing] (default true) includes the volatile fields
    ([elapsed_s], [runs], [wall_s]); pass [false] for the deterministic
    form compared across runs. *)
val to_json : ?timing:bool -> t -> string
