(** Report triage: streaming ingestion service over salvage, dedup and
    budgeted replay.

    The developer-side ingestion tier for crash-report streams.  See
    DESIGN.md §5f and §5i: {!Ingest} accepts strict or salvaged reports,
    {!Fingerprint}/{!Cluster} deduplicate them WER-style, {!Sched}
    replays one representative per cluster under an escalating-budget
    ladder, and {!Summary} renders the outcome deterministically in text
    and strict JSON.

    The primary entry point is {!Service}: a long-running handle that
    ingests reports as they arrive through a bounded backpressured
    queue, clusters them incrementally, persists crash buckets across
    restarts ({!Index}), tracks sliding-window fleet analytics
    ({!Window}) and replays eagerly while ingestion is quiet.

    {b Determinism model.}  For the same accepted report {e set} (any
    arrival order) and the same policy seed, the service and the batch
    wrappers render byte-identical summaries in the timing-stripped form
    ([Summary.to_json ~timing:false]): clustering and representative
    election are insertion-order independent, per-cluster replay seeds
    derive from (seed, fingerprint), and pausing/resuming a replay
    ladder between ticks does not change its outcome.  Overload shedding
    ({!Service.drop_policy}) is the one way streaming diverges from
    batch — deliberately, boundedly, and itself deterministically for a
    given submission sequence (the {!Service.Sample} policy draws from a
    seeded {!Osmodel.Rng}). *)

module Fingerprint = Fingerprint
module Ingest = Ingest
module Cluster = Cluster
module Sched = Sched
module Summary = Summary
module Window = Window
module Index = Index
module Service = Service

type resolve = Sched.resolve

(** Triage pre-ingested items (plus already-known rejections); opens the
    [triage] span and bumps the [triage.*] counters on [telemetry].

    Thin wrapper over {!Service} — opens a one-shot service sized to the
    batch (no shedding, no eager replay; wall-clock ladder rungs, so the
    CLI's deadline semantics hold), submits every item, drains, closes.
    [index_dir], when given, persists crash buckets exactly as the
    long-running service would; an index that cannot be opened (damaged
    shard, newer format) is an [Error], never an assertion.  New code
    should hold a {!Service.t}. *)
val run_items :
  ?policy:Sched.policy ->
  ?index_dir:string ->
  ?telemetry:Telemetry.t ->
  resolve:resolve ->
  ?rejected:Ingest.rejected list ->
  Ingest.item list ->
  (Summary.t, Index.error) result

(** Triage every [*.report] file under a directory.

    Thin wrapper over {!Ingest.load_dir} + {!run_items} (and through it
    the {!Service}); kept for one-shot CLI batches.  A long-running
    ingester should pair {!Service} with {!Ingest.scanner}. *)
val run_dir :
  ?policy:Sched.policy ->
  ?index_dir:string ->
  ?telemetry:Telemetry.t ->
  resolve:resolve ->
  string ->
  (Summary.t, Index.error) result
