(** Report triage: salvage, dedup and budgeted batch replay.

    The developer-side ingestion tier for crash-report streams.  See
    DESIGN.md §5f: {!Ingest} accepts strict or salvaged reports,
    {!Fingerprint}/{!Cluster} deduplicate them WER-style, {!Sched}
    replays one representative per cluster under an escalating-budget
    ladder, a global deadline and one shared solver cache, and
    {!Summary} renders the outcome deterministically in text and strict
    JSON. *)

module Fingerprint = Fingerprint
module Ingest = Ingest
module Cluster = Cluster
module Sched = Sched
module Summary = Summary

type resolve = Sched.resolve

(** Triage pre-ingested items (plus already-known rejections); opens the
    [triage] span and bumps the [triage.*] counters on [telemetry]. *)
val run_items :
  ?policy:Sched.policy ->
  ?telemetry:Telemetry.t ->
  resolve:resolve ->
  ?rejected:Ingest.rejected list ->
  Ingest.item list ->
  Summary.t

(** Triage every [*.report] file under a directory. *)
val run_dir :
  ?policy:Sched.policy ->
  ?telemetry:Telemetry.t ->
  resolve:resolve ->
  string ->
  Summary.t
