(** Sliding-window ingestion analytics (see window.mli). *)

type event = { e_cohort : string; e_key : string; e_novel : bool }

type t = {
  k : int;
  ring : event option array;
  mutable seen : int;  (** lifetime event count; ring slot = seen mod size *)
}

let make ?(k = 5) ~size () =
  if size <= 0 then invalid_arg "Window.make: size must be positive";
  { k; ring = Array.make size None; seen = 0 }

let observe t ~cohort ~key ~novel =
  t.ring.(t.seen mod Array.length t.ring) <-
    Some { e_cohort = cohort; e_key = key; e_novel = novel };
  t.seen <- t.seen + 1

type cohort_stats = {
  cohort : string;
  events : int;
  new_clusters : int;
  distinct : int;
  top : (string * int) list;
}

type stats = {
  window : int;
  seen : int;
  total : cohort_stats;
  cohorts : cohort_stats list;
}

let new_cluster_rate (c : cohort_stats) =
  if c.events = 0 then 0.0
  else float_of_int c.new_clusters /. float_of_int c.events

let dedup_ratio (c : cohort_stats) =
  if c.events = 0 then 1.0 else float_of_int c.distinct /. float_of_int c.events

(* Fold one cohort's events (already filtered) into a stats row.  Top-K
   order is count desc then key asc — a total order, so ties cannot make
   two identically-fed windows disagree. *)
let fold_cohort name (events : event list) k : cohort_stats =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let new_clusters = ref 0 in
  List.iter
    (fun e ->
      if e.e_novel then incr new_clusters;
      Hashtbl.replace counts e.e_key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.e_key)))
    events;
  let by_count =
    Hashtbl.fold (fun key n acc -> (key, n) :: acc) counts []
    |> List.sort (fun (ka, na) (kb, nb) ->
           let c = compare nb na in
           if c <> 0 then c else String.compare ka kb)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  {
    cohort = name;
    events = List.length events;
    new_clusters = !new_clusters;
    distinct = Hashtbl.length counts;
    top = take k by_count;
  }

let stats t : stats =
  let events =
    Array.to_list t.ring |> List.filter_map Fun.id
  in
  let cohort_names =
    List.fold_left
      (fun acc e -> if List.mem e.e_cohort acc then acc else e.e_cohort :: acc)
      [] events
    |> List.sort String.compare
  in
  {
    window = Array.length t.ring;
    seen = t.seen;
    total = fold_cohort "*" events t.k;
    cohorts =
      List.map
        (fun name ->
          fold_cohort name
            (List.filter (fun e -> e.e_cohort = name) events)
            t.k)
        cohort_names;
  }

(* ------------------------------------------------------------------ *)
(* Strict JSON, hand-rendered like Summary.to_json *)

let jstr s = "\"" ^ Telemetry.Event.json_escape s ^ "\""
let jfloat = Telemetry.Event.json_float

let cohort_to_json (c : cohort_stats) =
  Printf.sprintf
    "{\"cohort\":%s,\"events\":%d,\"new_clusters\":%d,\"new_cluster_rate\":%s,\"distinct\":%d,\"dedup_ratio\":%s,\"top\":[%s]}"
    (jstr c.cohort) c.events c.new_clusters
    (jfloat (new_cluster_rate c))
    c.distinct
    (jfloat (dedup_ratio c))
    (String.concat ","
       (List.map
          (fun (key, n) ->
            Printf.sprintf "{\"key\":%s,\"count\":%d}" (jstr key) n)
          c.top))

let stats_to_json (s : stats) =
  Printf.sprintf
    "{\"window\":%d,\"seen\":%d,\"total\":%s,\"cohorts\":[%s]}" s.window s.seen
    (cohort_to_json s.total)
    (String.concat "," (List.map cohort_to_json s.cohorts))
