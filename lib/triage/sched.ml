(** Budgeted batch scheduler (see sched.mli). *)

module Engine = Concolic.Engine
module Guided = Replay.Guided

type policy = {
  ladder : Engine.budget list;
  deadline_s : float;
  jobs : int;
  final_rung_jobs : int;
  max_attempts : int;
  solver_cache : bool;
  incremental : bool;
  steal : bool;
  seed : int;
}

let default_policy =
  {
    ladder =
      [
        { Engine.max_runs = 60; max_time_s = 2.0 };
        { Engine.max_runs = 250; max_time_s = 10.0 };
        Engine.default_budget;
      ];
    deadline_s = 60.0;
    jobs = 1;
    final_rung_jobs = 1;
    max_attempts = 1;
    solver_cache = true;
    incremental = true;
    steal = true;
    seed = 1;
  }

let policy_of_config (c : Bugrepro.Pipeline.Config.t) =
  let full = c.replay_budget in
  let rung runs time_s =
    {
      Engine.max_runs = min runs full.Engine.max_runs;
      max_time_s = min time_s full.Engine.max_time_s;
    }
  in
  {
    default_policy with
    ladder = [ rung 60 2.0; rung 250 10.0; full ];
    jobs = c.jobs;
    solver_cache = c.solver_cache;
    incremental = c.incremental;
    steal = c.steal;
    seed = c.seed;
  }

type status =
  | Reproduced of {
      model : Solver.Model.t;
      vars : Solver.Symvars.t;
      crash : Interp.Crash.t;
    }
  | Timed_out
  | Exhausted
  | Failed of string

type cluster_result = {
  cluster : Cluster.t;
  status : status;
  rungs : int;
  runs : int;
  elapsed_s : float;
  rung_elapsed_s : float list;
  cases : Guided.case_stats;
}

type resolve =
  Cluster.t -> (Minic.Program.t * Instrument.Plan.t, string) result

let zero_cases () : Guided.case_stats =
  { case1 = 0; case2a = 0; case2b = 0; case3a = 0; case3b = 0; case4 = 0;
    log_exhausted = 0 }

let add_cases ~(into : Guided.case_stats) (c : Guided.case_stats) =
  into.case1 <- into.case1 + c.case1;
  into.case2a <- into.case2a + c.case2a;
  into.case2b <- into.case2b + c.case2b;
  into.case3a <- into.case3a + c.case3a;
  into.case3b <- into.case3b + c.case3b;
  into.case4 <- into.case4 + c.case4;
  into.log_exhausted <- into.log_exhausted + c.log_exhausted

(* Worker scheduling must not influence outcomes, so the replay seed is a
   pure function of the batch seed and the cluster's identity. *)
let cluster_seed policy (c : Cluster.t) =
  (Hashtbl.hash (policy.seed, Fingerprint.key c.fp) land 0x3FFFFFFF) + 1

(* ------------------------------------------------------------------ *)
(* Resumable courses: one cluster's climb up the escalating-budget
   ladder, pausable between rungs.  The batch path climbs each course in
   one go; the streaming service climbs a rung or two per tick (eagerly,
   pressure permitting) and finishes the remainder at drain.  Splitting a
   climb across ticks cannot change its outcome: each rung's replay is
   deterministic given (budget, seed), the seed is pinned per cluster,
   and the solver scope/portfolio state rides inside the course. *)

type course = {
  policy : policy;
  cluster : Cluster.t;
  prog : Minic.Program.t;
  plan : Instrument.Plan.t;
  seed : int;
  cases : Guided.case_stats;
  (* one scoped solver per cluster: climbing a rung re-explores the same
     report, so the portfolio statistics gathered on the cheap rung steer
     strategy choice on the expensive one (cores are registry-scoped and
     each rung opens a fresh registry, so only the statistics carry) *)
  incr : Solver.Incr.t option;
  mutable ladder : Engine.budget list;  (** rungs not yet climbed *)
  mutable rungs : int;
  mutable runs : int;
  mutable elapsed : float;
  mutable rung_elapsed : float list;  (** reverse rung order *)
  mutable outcome : status option;  (** [Some] once the climb finished *)
}

let course ~policy ~prog ~plan (c : Cluster.t) : course =
  {
    policy;
    cluster = c;
    prog;
    plan;
    seed = cluster_seed policy c;
    cases = zero_cases ();
    incr = (if policy.incremental then Some (Solver.Incr.create ()) else None);
    ladder = policy.ladder;
    rungs = 0;
    runs = 0;
    elapsed = 0.0;
    rung_elapsed = [];
    outcome = None;
  }

let course_cluster (k : course) = k.cluster
let course_done (k : course) = k.outcome <> None

let course_result (k : course) : cluster_result =
  let status = match k.outcome with Some s -> s | None -> Timed_out in
  { cluster = k.cluster; status; rungs = k.rungs; runs = k.runs;
    elapsed_s = k.elapsed; rung_elapsed_s = List.rev k.rung_elapsed;
    cases = k.cases }

let course_interrupt (k : course) =
  if k.outcome = None then k.outcome <- Some Timed_out

(* Climb up to [max_rungs] rungs before [deadline].  Each rung's time
   budget is clamped to what is left of the deadline.  The cumulative
   elapsed sums every rung, so a retried report never reports less
   elapsed time than its predecessor attempts (the restart-accounting
   bug this subsystem's tests lock down). *)
let course_step ?(telemetry = Telemetry.disabled) ?cache ~deadline ~max_rungs
    (k : course) : bool =
  let report = k.cluster.Cluster.representative.Ingest.report in
  let rec climb budget_rungs =
    match (k.outcome, k.ladder) with
    | Some _, _ -> true
    | None, [] ->
        (* every rung tried and timed out *)
        k.outcome <- Some Timed_out;
        true
    | None, (rung : Engine.budget) :: rest ->
        if budget_rungs <= 0 then false
        else
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.05 then false
          else begin
            let budget =
              { rung with
                Engine.max_time_s = min rung.Engine.max_time_s remaining }
            in
            (* early rungs are cheap and numerous — the pool fans out
               across clusters, so each replay stays sequential (and with
               it the model-determinism guarantee for everything they
               resolve).  The final full-budget rung is the opposite
               shape: few clusters, one heavy search each —
               [final_rung_jobs] lets the pool work *inside* that search
               (work-stealing frontier), trading which crashing input is
               found first for wall clock. *)
            let jobs = if rest = [] then max 1 k.policy.final_rung_jobs else 1 in
            let result, stats =
              Guided.reproduce ~budget ~seed:k.seed ~jobs
                ~solver_cache:k.policy.solver_cache ?cache ?incr:k.incr
                ~incremental:k.policy.incremental ~steal:k.policy.steal
                ~max_attempts:k.policy.max_attempts ~telemetry ~prog:k.prog
                ~plan:k.plan report
            in
            add_cases ~into:k.cases stats.Guided.cases;
            let rung_s = Guided.elapsed result in
            k.elapsed <- k.elapsed +. rung_s;
            k.rungs <- k.rungs + 1;
            k.rung_elapsed <- rung_s :: k.rung_elapsed;
            match result with
            | Guided.Reproduced r ->
                k.runs <- k.runs + r.runs;
                k.outcome <-
                  Some
                    (Reproduced
                       { model = r.model; vars = stats.Guided.vars;
                         crash = r.crash });
                true
            | Guided.Not_reproduced nr ->
                k.runs <- k.runs + nr.runs;
                k.ladder <- rest;
                if nr.timed_out then climb (budget_rungs - 1)
                else begin
                  (* clean frontier exhaustion: the search space is
                     explored; a larger budget would only re-walk it *)
                  k.outcome <- Some Exhausted;
                  true
                end
          end
  in
  climb max_rungs

(* Eager-replay allotment per tick from queue pressure (depth/capacity):
   a service under load spends its tick ingesting, an idle one climbs. *)
let rungs_for_pressure p =
  if p >= 0.75 then 0
  else if p >= 0.25 then 1
  else if p > 0.0 then 2
  else max_int

let status_name = function
  | Reproduced _ -> "reproduced"
  | Timed_out -> "timed_out"
  | Exhausted -> "exhausted"
  | Failed _ -> "failed"

(* ------------------------------------------------------------------ *)

(* Index-addressed worker pool: results come back in input order
   regardless of which domain processed what. *)
let pool_map ~jobs n (f : int -> 'a) : 'a list =
  if jobs <= 1 || n <= 1 then List.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f i);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  end

let finish_course ~telemetry ~cache ~deadline (k : course) : cluster_result =
  Telemetry.Span.with_ telemetry ~name:"triage.replay"
    ~attrs:
      [ ("fingerprint", Telemetry.Event.Str (Fingerprint.key k.cluster.Cluster.fp)) ]
  @@ fun sp ->
  if not (course_step ~telemetry ?cache ~deadline ~max_rungs:max_int k) then
    course_interrupt k;
  let r = course_result k in
  Telemetry.Span.adds sp "status" (status_name r.status);
  Telemetry.Span.addi sp "rungs" r.rungs;
  Telemetry.Span.addi sp "runs" r.runs;
  Telemetry.Metrics.incr_named telemetry ("triage." ^ status_name r.status);
  r

let run_courses ?(policy = default_policy) ?(telemetry = Telemetry.disabled)
    ?cache ~deadline (courses : course list) : cluster_result list =
  let arr = Array.of_list courses in
  pool_map ~jobs:policy.jobs (Array.length arr) (fun i ->
      finish_course ~telemetry ~cache ~deadline arr.(i))

let run ?(policy = default_policy) ?(telemetry = Telemetry.disabled)
    ~(resolve : resolve) (clusters : Cluster.t list) : cluster_result list =
  Telemetry.Span.with_ telemetry ~name:"triage.sched"
    ~attrs:
      [
        ("clusters", Telemetry.Event.Int (List.length clusters));
        ("jobs", Telemetry.Event.Int policy.jobs);
      ]
  @@ fun _sp ->
  let deadline = Unix.gettimeofday () +. policy.deadline_s in
  let cache =
    if policy.solver_cache then Some (Solver.Cache.create ()) else None
  in
  (* resolve in the scheduling domain: resolver closures (workload
     registries, analysis caches) need not be thread-safe *)
  let prepared =
    List.map
      (fun c ->
        match resolve c with
        | Error msg ->
            Either.Left
              { cluster = c; status = Failed msg; rungs = 0; runs = 0;
                elapsed_s = 0.0; rung_elapsed_s = []; cases = zero_cases () }
        | Ok (prog, plan) -> Either.Right (course ~policy ~prog ~plan c))
      clusters
    |> Array.of_list
  in
  pool_map ~jobs:policy.jobs (Array.length prepared) (fun i ->
      match prepared.(i) with
      | Either.Left failed -> failed
      | Either.Right k -> finish_course ~telemetry ~cache ~deadline k)
