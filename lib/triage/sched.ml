(** Budgeted batch scheduler (see sched.mli). *)

module Engine = Concolic.Engine
module Guided = Replay.Guided

type policy = {
  ladder : Engine.budget list;
  deadline_s : float;
  jobs : int;
  final_rung_jobs : int;
  max_attempts : int;
  solver_cache : bool;
  incremental : bool;
  steal : bool;
  seed : int;
}

let default_policy =
  {
    ladder =
      [
        { Engine.max_runs = 60; max_time_s = 2.0 };
        { Engine.max_runs = 250; max_time_s = 10.0 };
        Engine.default_budget;
      ];
    deadline_s = 60.0;
    jobs = 1;
    final_rung_jobs = 1;
    max_attempts = 1;
    solver_cache = true;
    incremental = true;
    steal = true;
    seed = 1;
  }

let policy_of_config (c : Bugrepro.Pipeline.Config.t) =
  let full = c.replay_budget in
  let rung runs time_s =
    {
      Engine.max_runs = min runs full.Engine.max_runs;
      max_time_s = min time_s full.Engine.max_time_s;
    }
  in
  {
    default_policy with
    ladder = [ rung 60 2.0; rung 250 10.0; full ];
    jobs = c.jobs;
    solver_cache = c.solver_cache;
    incremental = c.incremental;
    steal = c.steal;
    seed = c.seed;
  }

type status =
  | Reproduced of {
      model : Solver.Model.t;
      vars : Solver.Symvars.t;
      crash : Interp.Crash.t;
    }
  | Timed_out
  | Exhausted
  | Failed of string

type cluster_result = {
  cluster : Cluster.t;
  status : status;
  rungs : int;
  runs : int;
  elapsed_s : float;
  rung_elapsed_s : float list;
  cases : Guided.case_stats;
}

type resolve =
  Cluster.t -> (Minic.Program.t * Instrument.Plan.t, string) result

let zero_cases () : Guided.case_stats =
  { case1 = 0; case2a = 0; case2b = 0; case3a = 0; case3b = 0; case4 = 0;
    log_exhausted = 0 }

let add_cases ~(into : Guided.case_stats) (c : Guided.case_stats) =
  into.case1 <- into.case1 + c.case1;
  into.case2a <- into.case2a + c.case2a;
  into.case2b <- into.case2b + c.case2b;
  into.case3a <- into.case3a + c.case3a;
  into.case3b <- into.case3b + c.case3b;
  into.case4 <- into.case4 + c.case4;
  into.log_exhausted <- into.log_exhausted + c.log_exhausted

(* Worker scheduling must not influence outcomes, so the replay seed is a
   pure function of the batch seed and the cluster's identity. *)
let cluster_seed policy (c : Cluster.t) =
  (Hashtbl.hash (policy.seed, Fingerprint.key c.fp) land 0x3FFFFFFF) + 1

(* Climb the escalating-budget ladder for one cluster.  [deadline] is the
   batch-global wall clock; each rung's time budget is clamped to what is
   left of it.  The cumulative [elapsed_s] sums every rung, so a retried
   report never reports less elapsed time than its predecessor attempts
   (the restart-accounting bug this subsystem's tests lock down). *)
let replay_cluster ~policy ~telemetry ~cache ~deadline
    (prog : Minic.Program.t) (plan : Instrument.Plan.t) (c : Cluster.t) :
    cluster_result =
  let report = c.representative.Ingest.report in
  let seed = cluster_seed policy c in
  let cases = zero_cases () in
  (* one scoped solver per cluster: climbing a rung re-explores the same
     report, so the portfolio statistics gathered on the cheap rung steer
     strategy choice on the expensive one (cores are registry-scoped and
     each rung opens a fresh registry, so only the statistics carry) *)
  let incr =
    if policy.incremental then Some (Solver.Incr.create ()) else None
  in
  let rec climb ladder ~rungs ~runs ~elapsed ~rung_elapsed =
    match ladder with
    | [] ->
        { cluster = c; status = Timed_out; rungs; runs; elapsed_s = elapsed;
          rung_elapsed_s = List.rev rung_elapsed; cases }
    | (rung : Engine.budget) :: rest ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.05 then
          { cluster = c; status = Timed_out; rungs; runs; elapsed_s = elapsed;
            rung_elapsed_s = List.rev rung_elapsed; cases }
        else
          let budget =
            { rung with Engine.max_time_s = min rung.Engine.max_time_s remaining }
          in
          (* early rungs are cheap and numerous — the pool fans out across
             clusters, so each replay stays sequential (and with it the
             model-determinism guarantee for everything they resolve).  The
             final full-budget rung is the opposite shape: few clusters,
             one heavy search each — [final_rung_jobs] lets the pool work
             *inside* that search (work-stealing frontier), trading which
             crashing input is found first for wall clock. *)
          let jobs = if rest = [] then max 1 policy.final_rung_jobs else 1 in
          let result, stats =
            Guided.reproduce ~budget ~seed ~jobs
              ~solver_cache:policy.solver_cache ?cache ?incr
              ~incremental:policy.incremental ~steal:policy.steal
              ~max_attempts:policy.max_attempts ~telemetry ~prog ~plan report
          in
          add_cases ~into:cases stats.Guided.cases;
          let rung_s = Guided.elapsed result in
          let elapsed = elapsed +. rung_s in
          let rungs = rungs + 1 in
          let rung_elapsed = rung_s :: rung_elapsed in
          (match result with
          | Guided.Reproduced r ->
              { cluster = c;
                status =
                  Reproduced
                    { model = r.model; vars = stats.Guided.vars; crash = r.crash };
                rungs; runs = runs + r.runs; elapsed_s = elapsed;
                rung_elapsed_s = List.rev rung_elapsed; cases }
          | Guided.Not_reproduced nr ->
              let runs = runs + nr.runs in
              if nr.timed_out then
                climb rest ~rungs ~runs ~elapsed ~rung_elapsed
              else
                (* clean frontier exhaustion: the search space is explored;
                   a larger budget would only re-walk it *)
                { cluster = c; status = Exhausted; rungs; runs;
                  elapsed_s = elapsed; rung_elapsed_s = List.rev rung_elapsed;
                  cases })
  in
  climb policy.ladder ~rungs:0 ~runs:0 ~elapsed:0.0 ~rung_elapsed:[]

let status_name = function
  | Reproduced _ -> "reproduced"
  | Timed_out -> "timed_out"
  | Exhausted -> "exhausted"
  | Failed _ -> "failed"

let run ?(policy = default_policy) ?(telemetry = Telemetry.disabled)
    ~(resolve : resolve) (clusters : Cluster.t list) : cluster_result list =
  Telemetry.Span.with_ telemetry ~name:"triage.sched"
    ~attrs:
      [
        ("clusters", Telemetry.Event.Int (List.length clusters));
        ("jobs", Telemetry.Event.Int policy.jobs);
      ]
  @@ fun _sp ->
  let deadline = Unix.gettimeofday () +. policy.deadline_s in
  let cache =
    if policy.solver_cache then Some (Solver.Cache.create ()) else None
  in
  (* resolve in the scheduling domain: resolver closures (workload
     registries, analysis caches) need not be thread-safe *)
  let prepared =
    List.map (fun c -> (c, resolve c)) clusters |> Array.of_list
  in
  let n = Array.length prepared in
  let process i =
    let c, resolved = prepared.(i) in
    match resolved with
    | Error msg ->
        { cluster = c; status = Failed msg; rungs = 0; runs = 0;
          elapsed_s = 0.0; rung_elapsed_s = []; cases = zero_cases () }
    | Ok (prog, plan) ->
        Telemetry.Span.with_ telemetry ~name:"triage.replay"
          ~attrs:[ ("fingerprint", Telemetry.Event.Str (Fingerprint.key c.fp)) ]
        @@ fun sp ->
        let r = replay_cluster ~policy ~telemetry ~cache ~deadline prog plan c in
        Telemetry.Span.adds sp "status" (status_name r.status);
        Telemetry.Span.addi sp "rungs" r.rungs;
        Telemetry.Span.addi sp "runs" r.runs;
        Telemetry.Metrics.incr_named telemetry
          ("triage." ^ status_name r.status);
        r
  in
  if policy.jobs <= 1 || n <= 1 then List.init n process
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (process i);
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min policy.jobs n) (fun _ -> Domain.spawn worker)
    in
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  end
