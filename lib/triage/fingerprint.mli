(** Crash-report fingerprints for duplicate clustering.

    A fingerprint is the identity under which reports are deduplicated:
    the crash site (kind, location, function — the paper's notion of bug
    identity), the instrumentation method, and a cheap sketch of the
    branch bitvector — a hash of the log's byte prefix plus a quantized
    bit-count histogram — so that the same bug reached along visibly
    different paths keeps distinct clusters while byte-identical and
    near-identical logs collapse into one.  WER-style bucketing: the
    sketch is heuristic, but it only controls *which* reports share a
    replay — every cluster is still replayed against its own recorded
    crash site. *)

type t = {
  program : string;
  cohort : string option;
      (** adaptive-deployment cohort, when the report's plan carried one:
          part of the identity, so each cluster belongs to exactly one
          cohort and refinement decisions never mix fleets *)
  crash_key : string;  (** canonical [kind@file:line:col#func] *)
  method_code : string;
  log_bucket : int;  (** bit length of [nbits + 1]: order-of-magnitude *)
  prefix_hash : int;  (** hash of the first 32 log bytes *)
  histogram : int array;  (** 8 chunks of the bit range, popcount / 8 each *)
}

val of_report : Instrument.Report.t -> t

(** Stable string form; equal fingerprints have equal keys, and keys sort
    deterministically (used as the cluster ordering everywhere). *)
val key : t -> string

val equal : t -> t -> bool
