(** Streaming triage service (see service.mli). *)

type drop_policy = Reject_new | Drop_oldest | Sample of float

type config = {
  policy : Sched.policy;
  queue_capacity : int;
  drop : drop_policy;
  burst : int;
  window : int;
  window_k : int;
  eager : bool;
  wall_rungs : bool;
  index_dir : string option;
  index_shards : int;
}

let default_config =
  {
    policy = Sched.default_policy;
    queue_capacity = 256;
    drop = Reject_new;
    burst = 32;
    window = 256;
    window_k = 5;
    eager = true;
    wall_rungs = false;
    index_dir = None;
    index_shards = 16;
  }

(* Run-bounded rungs (the default): strip the wall-clock component from
   every ladder rung, so a cluster's verdict depends only on how many
   replay runs its budget allows — not on whether a shared core happened
   to be slow that day.  Two services fed the same stream then agree on
   reproduced-vs-timed_out for borderline clusters.  [wall_rungs] opts
   back into the paper's wall-clock ladder (the batch CLI keeps it, so
   --deadline/--timeout still mean seconds there). *)
let effective_policy (c : config) : Sched.policy =
  if c.wall_rungs then c.policy
  else
    {
      c.policy with
      Sched.ladder =
        List.map
          (fun (r : Concolic.Engine.budget) ->
            { r with Concolic.Engine.max_time_s = infinity })
          c.policy.Sched.ladder;
    }

type outcome =
  | Queued
  | Dropped of string
  | Rejected of Instrument.Wire.error

type t = {
  config : config;
  telemetry : Telemetry.t;
  resolve : Sched.resolve;
  (* parsed report + the wire text as originally received (None when the
     submitter handed us an already-parsed item) *)
  queue : (Ingest.item * string option) Queue.t;
  rng : Osmodel.Rng.t;  (** drives {!Sample}; seeded from the policy seed *)
  builder : Cluster.builder;
  reps : (string, Ingest.item) Hashtbl.t;  (** fp key → elected head *)
  courses : (string, Sched.course) Hashtbl.t;  (** fp key → climb state *)
  failures : (string, string) Hashtbl.t;  (** fp key → resolve error *)
  cache : Solver.Cache.t option;  (** shared across every replay, like a batch *)
  window : Window.t;
  started : float;
  mutable index : Index.t option;
  mutable items : Ingest.item list;  (** processed, reverse arrival order *)
  mutable rejected : Ingest.rejected list;  (** reverse arrival order *)
  mutable submitted : int;
  mutable n_rejected : int;
  mutable dropped : int;
  mutable processed : int;
  mutable closed : bool;
}

let queue_depth t = Queue.length t.queue

(* The deadline handed to replay steps: wall-clock services bound each
   climb by [policy.deadline_s]; run-bounded ones (the default) let the
   rungs' run budgets do the bounding. *)
let rung_deadline (t : t) =
  if t.config.wall_rungs then
    Unix.gettimeofday () +. t.config.policy.Sched.deadline_s
  else infinity

let pressure t =
  if t.config.queue_capacity <= 0 then 1.0
  else float_of_int (queue_depth t) /. float_of_int t.config.queue_capacity

(* ------------------------------------------------------------------ *)
(* Clustering one report: builder insert, head election, persistence,
   analytics.  Also the reload path, minus persistence. *)

let cluster_one ?raw ~persist (t : t) (item : Ingest.item) =
  let novel, fp =
    match Cluster.insert t.builder item with
    | `New fp -> (true, fp)
    | `Merged fp -> (false, fp)
  in
  let key = Fingerprint.key fp in
  (match Hashtbl.find_opt t.reps key with
  | None -> Hashtbl.replace t.reps key item
  | Some head ->
      if Cluster.better item head then begin
        Hashtbl.replace t.reps key item;
        (* the elected head changed: rungs climbed for the old head are
           void — batch would have replayed the new head *)
        Hashtbl.remove t.courses key
      end);
  if persist then
    Option.iter (fun idx -> Index.append ?raw idx item) t.index;
  let cohort =
    match item.Ingest.report.Instrument.Report.cohort with
    | Some c -> c
    | None -> item.Ingest.report.Instrument.Report.program
  in
  Window.observe t.window ~cohort ~key ~novel;
  t.items <- item :: t.items;
  t.processed <- t.processed + 1;
  Telemetry.Metrics.incr_named t.telemetry "triage.service.processed";
  if novel then
    Telemetry.Metrics.incr_named t.telemetry "triage.service.new_clusters"

(* ------------------------------------------------------------------ *)

let open_ ?(config = default_config) ?(telemetry = Telemetry.disabled)
    ~(resolve : Sched.resolve) () : (t, Index.error) result =
  if config.queue_capacity < 1 then
    invalid_arg "Service.open_: queue_capacity must be >= 1";
  if config.burst < 1 then invalid_arg "Service.open_: burst must be >= 1";
  let index =
    match config.index_dir with
    | None -> Ok None
    | Some dir ->
        Result.map Option.some
          (Index.open_ ~shards:config.index_shards ~dir ())
  in
  match index with
  | Error e -> Error e
  | Ok index ->
      let config = { config with policy = effective_policy config } in
      let t =
        {
          config;
          telemetry;
          resolve;
          queue = Queue.create ();
          rng = Osmodel.Rng.create config.policy.Sched.seed;
          builder = Cluster.builder ();
          reps = Hashtbl.create 64;
          courses = Hashtbl.create 64;
          failures = Hashtbl.create 8;
          cache =
            (if config.policy.Sched.solver_cache then
               Some (Solver.Cache.create ())
             else None);
          window = Window.make ~k:config.window_k ~size:config.window ();
          started = Unix.gettimeofday ();
          index;
          items = [];
          rejected = [];
          submitted = 0;
          n_rejected = 0;
          dropped = 0;
          processed = 0;
          closed = false;
        }
      in
      (* restart recovery: replay the index's records through the normal
         clustering path, in (shard, record) order, so buckets, heads and
         window analytics land exactly where the previous incarnation
         left them *)
      (match t.index with
      | Some idx ->
          let recovered = Index.items idx in
          List.iter (cluster_one ~persist:false t) recovered;
          if recovered <> [] then
            Telemetry.Metrics.incr_named t.telemetry
              ~by:(List.length recovered) "triage.service.recovered"
      | None -> ());
      Ok t

(* ------------------------------------------------------------------ *)
(* Submission: parse first (a slot is only worth a parseable report),
   then admit against the bounded queue. *)

let enqueue (t : t) (item : Ingest.item) (raw : string option) : outcome =
  let evict_oldest () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some _ ->
        t.dropped <- t.dropped + 1;
        Telemetry.Metrics.incr_named t.telemetry "triage.service.dropped"
  in
  let admit () =
    Queue.add (item, raw) t.queue;
    Telemetry.Metrics.incr_named t.telemetry "triage.service.queued";
    Telemetry.Metrics.sample t.telemetry "triage.service.queue_depth"
      (float_of_int (queue_depth t));
    Queued
  in
  if queue_depth t < t.config.queue_capacity then admit ()
  else
    let shed reason =
      t.dropped <- t.dropped + 1;
      Telemetry.Metrics.incr_named t.telemetry "triage.service.dropped";
      Dropped reason
    in
    match t.config.drop with
    | Reject_new -> shed "queue full (reject-new)"
    | Drop_oldest ->
        evict_oldest ();
        admit ()
    | Sample p ->
        (* admit with probability p: deterministic for a given
           submission sequence, because the draw order is the
           submission order *)
        let keep = Osmodel.Rng.int t.rng 1_000_000 < int_of_float (p *. 1e6) in
        if keep then begin
          evict_oldest ();
          admit ()
        end
        else shed (Printf.sprintf "queue full (sampled out at p=%.3f)" p)

let submit_item (t : t) (item : Ingest.item) : outcome =
  if t.closed then invalid_arg "Service.submit: service is closed";
  t.submitted <- t.submitted + 1;
  Telemetry.Metrics.incr_named t.telemetry "triage.service.submitted";
  enqueue t item None

let submit_parsed (t : t) (parsed : (Ingest.item, Ingest.rejected) result)
    ~(raw : string option) : outcome =
  if t.closed then invalid_arg "Service.submit: service is closed";
  t.submitted <- t.submitted + 1;
  Telemetry.Metrics.incr_named t.telemetry "triage.service.submitted";
  match parsed with
  | Error r ->
      t.rejected <- r :: t.rejected;
      t.n_rejected <- t.n_rejected + 1;
      Telemetry.Metrics.incr_named t.telemetry "triage.service.rejected";
      Rejected r.Ingest.error
  | Ok item -> enqueue t item raw

let submit (t : t) ~path (wire : string) : outcome =
  submit_parsed t (Ingest.of_string ~path wire) ~raw:(Some wire)

let submit_file (t : t) (path : string) : outcome =
  submit_parsed t (Ingest.of_file path) ~raw:None

(* ------------------------------------------------------------------ *)
(* Eager replay: while the queue is shallow, spend the tick's slack
   climbing the first unfinished course (fingerprint order, so which
   bucket gets attention does not depend on arrival interleaving). *)

let ensure_course (t : t) key : Sched.course option =
  match Hashtbl.find_opt t.courses key with
  | Some k -> Some k
  | None -> (
      if Hashtbl.mem t.failures key then None
      else
        let rep = Hashtbl.find t.reps key in
        let fp = Fingerprint.of_report rep.Ingest.report in
        let provisional =
          { Cluster.fp; representative = rep; members = [ rep ] }
        in
        match t.resolve provisional with
        | Error msg ->
            Hashtbl.replace t.failures key msg;
            None
        | Ok (prog, plan) ->
            let k =
              Sched.course ~policy:t.config.policy ~prog ~plan provisional
            in
            Hashtbl.replace t.courses key k;
            Some k)

let unfinished_keys (t : t) =
  Hashtbl.fold
    (fun key _ acc ->
      let done_ =
        match Hashtbl.find_opt t.courses key with
        | Some k -> Sched.course_done k
        | None -> Hashtbl.mem t.failures key
      in
      if done_ then acc else key :: acc)
    t.reps []
  |> List.sort String.compare

let eager_climb (t : t) =
  let allot = Sched.rungs_for_pressure (pressure t) in
  if allot > 0 then
    match unfinished_keys t with
    | [] -> ()
    | key :: _ -> (
        match ensure_course t key with
        | None -> ()
        | Some k ->
            ignore
              (Sched.course_step ~telemetry:t.telemetry ?cache:t.cache
                 ~deadline:(rung_deadline t) ~max_rungs:allot k))

let process_queue (t : t) ~limit : int =
  let rec go n =
    if n >= limit then n
    else
      match Queue.take_opt t.queue with
      | None -> n
      | Some (item, raw) ->
          cluster_one ?raw ~persist:true t item;
          go (n + 1)
  in
  go 0

let tick (t : t) : int =
  Telemetry.Span.with_ t.telemetry ~name:"triage.service.tick"
    ~attrs:[ ("depth", Telemetry.Event.Int (queue_depth t)) ]
  @@ fun sp ->
  let n = process_queue t ~limit:t.config.burst in
  Telemetry.Span.addi sp "processed" n;
  Telemetry.Metrics.sample t.telemetry "triage.service.queue_depth"
    (float_of_int (queue_depth t));
  if t.config.eager then eager_climb t;
  n

(* ------------------------------------------------------------------ *)

type snapshot = {
  submitted : int;
  rejected : int;
  dropped : int;
  queued : int;
  capacity : int;
  processed : int;
  clusters : int;
  replayed : int;
  dedup_ratio : float;
  window : Window.stats;
}

let snapshot (t : t) : snapshot =
  let replayed =
    Hashtbl.fold
      (fun _ k n -> if Sched.course_done k then n + 1 else n)
      t.courses 0
  in
  {
    submitted = t.submitted;
    rejected = t.n_rejected;
    dropped = t.dropped;
    queued = queue_depth t;
    capacity = t.config.queue_capacity;
    processed = t.processed;
    clusters = Cluster.bucket_count t.builder;
    replayed;
    dedup_ratio =
      (if t.processed = 0 then 1.0
       else
         float_of_int (Cluster.bucket_count t.builder)
         /. float_of_int t.processed);
    window = Window.stats t.window;
  }

let snapshot_to_json (s : snapshot) : string =
  let b = Buffer.create 512 in
  let field name v = Printf.bprintf b "%S: %s" name v in
  Buffer.add_string b "{";
  field "submitted" (string_of_int s.submitted);
  Buffer.add_string b ", ";
  field "rejected" (string_of_int s.rejected);
  Buffer.add_string b ", ";
  field "dropped" (string_of_int s.dropped);
  Buffer.add_string b ", ";
  field "queued" (string_of_int s.queued);
  Buffer.add_string b ", ";
  field "capacity" (string_of_int s.capacity);
  Buffer.add_string b ", ";
  field "processed" (string_of_int s.processed);
  Buffer.add_string b ", ";
  field "clusters" (string_of_int s.clusters);
  Buffer.add_string b ", ";
  field "replayed" (string_of_int s.replayed);
  Buffer.add_string b ", ";
  field "dedup_ratio" (Telemetry.Event.json_float s.dedup_ratio);
  Buffer.add_string b ", ";
  field "window" (Window.stats_to_json s.window);
  Buffer.add_string b "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let failed_result (c : Cluster.t) msg : Sched.cluster_result =
  {
    Sched.cluster = c;
    status = Sched.Failed msg;
    rungs = 0;
    runs = 0;
    elapsed_s = 0.0;
    rung_elapsed_s = [];
    cases = Sched.zero_cases ();
  }

let drain ?(rejected = []) (t : t) : Summary.t =
  Telemetry.Span.with_ t.telemetry ~name:"triage.service.drain"
    ~attrs:[ ("queued", Telemetry.Event.Int (queue_depth t)) ]
  @@ fun sp ->
  (* flush everything still queued — drain answers for every accepted
     report, burst bound notwithstanding *)
  ignore (process_queue t ~limit:max_int);
  Telemetry.Metrics.sample t.telemetry "triage.service.queue_depth" 0.0;
  let finals = Cluster.snapshot t.builder in
  (* one entry per final cluster, in fingerprint order: a sticky resolve
     failure, or a (possibly already-finished) course to run.  A course
     climbed against a provisional head is only reused when that head is
     still the elected representative — otherwise its rungs answered for
     the wrong member and it restarts. *)
  let entries =
    List.map
      (fun (c : Cluster.t) ->
        let key = Fingerprint.key c.fp in
        match Hashtbl.find_opt t.failures key with
        | Some msg -> Either.Left (failed_result c msg)
        | None -> (
            let reuse =
              match Hashtbl.find_opt t.courses key with
              | Some k
                when (Sched.course_cluster k).Cluster.representative
                       .Ingest.path
                     = c.representative.Ingest.path ->
                  Some k
              | _ -> None
            in
            match reuse with
            | Some k -> Either.Right (c, k)
            | None -> (
                match t.resolve c with
                | Error msg ->
                    Hashtbl.replace t.failures key msg;
                    Either.Left (failed_result c msg)
                | Ok (prog, plan) ->
                    let k =
                      Sched.course ~policy:t.config.policy ~prog ~plan c
                    in
                    Hashtbl.replace t.courses key k;
                    Either.Right (c, k))))
      finals
  in
  let todo = List.filter_map Either.find_right entries in
  let deadline = rung_deadline t in
  let finished =
    Sched.run_courses ~policy:t.config.policy ~telemetry:t.telemetry
      ?cache:t.cache ~deadline
      (List.map snd todo)
  in
  (* rebind each result to its *final* cluster (a reused course may still
     carry the provisional one-member cluster it was opened with) *)
  let by_key = Hashtbl.create 16 in
  List.iter2
    (fun ((c : Cluster.t), _) r ->
      Hashtbl.replace by_key (Fingerprint.key c.fp)
        { r with Sched.cluster = c })
    todo finished;
  let results =
    List.map
      (fun e ->
        match e with
        | Either.Left failed -> failed
        | Either.Right ((c : Cluster.t), _) ->
            Hashtbl.find by_key (Fingerprint.key c.fp))
      entries
  in
  let wall_s = Unix.gettimeofday () -. t.started in
  let all_rejected = List.rev_append t.rejected rejected in
  let summary =
    Summary.make ~rejected:all_rejected ~items:(List.rev t.items) ~results
      ~wall_s
  in
  Telemetry.Span.addi sp "clusters" (List.length finals);
  Telemetry.Span.addi sp "reproduced"
    (summary.Summary.reproduced + summary.Summary.salvaged_reproduced);
  summary

(* Per-cluster replay results as of now, in fingerprint order: resolve
   failures, finished courses, and (after a drain) every cluster.  A
   cluster whose course has not been opened yet is simply absent — this
   is a read-only view, it never starts work. *)
let cluster_results (t : t) : Sched.cluster_result list =
  Cluster.snapshot t.builder
  |> List.filter_map (fun (c : Cluster.t) ->
         let key = Fingerprint.key c.fp in
         match Hashtbl.find_opt t.failures key with
         | Some msg -> Some (failed_result c msg)
         | None -> (
             match Hashtbl.find_opt t.courses key with
             | Some k ->
                 Some { (Sched.course_result k) with Sched.cluster = c }
             | None -> None))

let close (t : t) =
  if not t.closed then begin
    t.closed <- true;
    Option.iter Index.close t.index;
    t.index <- None
  end
