(** Persistent on-disk fingerprint index: crash buckets survive restarts.

    The streaming service appends every accepted report to an index
    directory so that a killed and reopened service rebuilds exactly the
    clusters it had — the representative election, the salvage flags, the
    member paths, all of it.  Records therefore store the {e original}
    wire text as received (a torn report is re-salvaged on reload, so a
    salvaged member does not silently become intact across a restart)
    plus the salvage flag as a consistency check.

    Layout: [dir/shard-NNN.idx], one file per shard, sharded by a hash of
    the report's crash-site key ([kind@file:line:col#func]) so one hot
    crash bucket's churn stays in one file.  Each shard is append-only:
    a version header line, then length-prefixed records.  Appends are
    single buffered writes flushed before {!append} returns, so a crash
    of the {e service} loses at most the record being written.

    Fail-closed like {!Instrument.Wire}: {!open_} rejects a shard whose
    header names an unsupported version ([Unknown_version] is an upgrade
    problem) and rejects any malformed record ([Malformed]) rather than
    guessing — a triage tier must not silently drop history it was asked
    to keep. *)

(** Header written to every shard: [magic_prefix ^ version]. *)
val magic_prefix : string

val version : int

type error =
  | Unknown_version of int  (** intact header naming a newer format *)
  | Malformed of string  (** anything else wrong with a shard *)

val error_to_string : error -> string

type t

(** [open_ ~dir ()] creates [dir] (and its shards' header lines) if
    missing, or loads every existing shard.  [shards] (default 16) only
    applies to a fresh directory — an existing index keeps the shard
    count it was created with.  Fails closed on any damaged shard. *)
val open_ : ?shards:int -> dir:string -> unit -> (t, error) result

(** Reports recovered on open, in (shard, record) order.  Re-ingested
    through {!Ingest.of_string}, so salvage state matches the original
    submission; the recorded salvage flag is verified against the
    re-ingest and mismatches fail closed. *)
val items : t -> Ingest.item list

(** Append one accepted report.  [raw] is the wire text as originally
    received (defaults to re-serializing the parsed report, in which case
    a salvaged item is recorded with its salvage flag so reload can
    restore it).  Flushed before returning. *)
val append : ?raw:string -> t -> Ingest.item -> unit

(** Number of records across all shards (loaded + appended). *)
val size : t -> int

val shard_count : t -> int

(** Flush and close every shard file.  The index stays readable on disk;
    a later {!open_} reloads it. *)
val close : t -> unit
