(** Deterministic triage summary (see summary.mli). *)

type status = Reproduced | Salvaged_reproduced | Timed_out | Exhausted

let status_name = function
  | Reproduced -> "reproduced"
  | Salvaged_reproduced -> "salvaged_reproduced"
  | Timed_out -> "timed_out"
  | Exhausted -> "exhausted"

type entry = {
  fingerprint : string;
  program : string;
  crash : string;
  status : status;
  representative : string;
  members : string list;
  salvaged : int;
  model : (string * int) list;
  rungs : int;
  runs : int;
  elapsed_s : float;
}

type t = {
  reports : int;
  salvaged : int;
  rejected : (string * string) list;
  clusters : entry list;
  dedup_ratio : float;
  reproduced : int;
  salvaged_reproduced : int;
  timed_out : int;
  exhausted : int;
  wall_s : float;
}

let render_model (model : Solver.Model.t) (vars : Solver.Symvars.t) :
    (string * int) list =
  Solver.Model.bindings model
  |> List.map (fun (id, v) -> (Solver.Symvars.name vars id, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let make ~(rejected : Ingest.rejected list) ~(items : Ingest.item list)
    ~(results : Sched.cluster_result list) ~wall_s : t =
  let reports = List.length items in
  let salvaged =
    List.length (List.filter Ingest.salvaged items)
  in
  let entries, failed =
    List.fold_left
      (fun (entries, failed) (r : Sched.cluster_result) ->
        let c = r.cluster in
        match r.status with
        | Sched.Failed msg ->
            (* unresolvable program: every member becomes a rejection so no
               ingested report silently vanishes from the summary *)
            let rejections =
              List.map
                (fun (i : Ingest.item) -> (i.path, "unresolvable: " ^ msg))
                c.members
            in
            (entries, rejections @ failed)
        | _ ->
            let status, model =
              match r.status with
              | Sched.Reproduced { model; vars; crash = _ } ->
                  ( (if Cluster.salvaged c then Salvaged_reproduced
                     else Reproduced),
                    render_model model vars )
              | Sched.Timed_out -> (Timed_out, [])
              | Sched.Exhausted -> (Exhausted, [])
              | Sched.Failed _ -> assert false
            in
            let entry =
              {
                fingerprint = Fingerprint.key c.fp;
                program = c.fp.Fingerprint.program;
                crash = c.fp.Fingerprint.crash_key;
                status;
                representative = c.representative.Ingest.path;
                members =
                  List.map (fun (i : Ingest.item) -> i.Ingest.path) c.members
                  |> List.sort String.compare;
                salvaged = List.length (List.filter Ingest.salvaged c.members);
                model;
                rungs = r.rungs;
                runs = r.runs;
                elapsed_s = r.elapsed_s;
              }
            in
            (entry :: entries, failed))
      ([], []) results
  in
  let clusters =
    List.sort (fun a b -> String.compare a.fingerprint b.fingerprint) entries
  in
  let rejected =
    (List.map
       (fun (r : Ingest.rejected) ->
         (r.path, Instrument.Wire.error_to_string r.error))
       rejected
    @ failed)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let count st = List.length (List.filter (fun e -> e.status = st) clusters) in
  {
    reports;
    salvaged;
    rejected;
    clusters;
    dedup_ratio =
      (if reports = 0 then 1.0
       else float_of_int (List.length results) /. float_of_int reports);
    reproduced = count Reproduced;
    salvaged_reproduced = count Salvaged_reproduced;
    timed_out = count Timed_out;
    exhausted = count Exhausted;
    wall_s;
  }

(* ------------------------------------------------------------------ *)

let to_text (t : t) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line
    "triage: %d report(s), %d salvaged, %d rejected -> %d cluster(s) (dedup \
     %.2f)"
    t.reports t.salvaged (List.length t.rejected) (List.length t.clusters)
    t.dedup_ratio;
  line
    "  %d reproduced (%d from salvage), %d timed out, %d exhausted in %.1f s"
    (t.reproduced + t.salvaged_reproduced)
    t.salvaged_reproduced t.timed_out t.exhausted t.wall_s;
  List.iter
    (fun e ->
      line "  [%s] %s %s (%d member(s), %d salvaged, %d rung(s), %d run(s), \
            %.2f s)"
        (status_name e.status) e.program e.crash (List.length e.members)
        e.salvaged e.rungs e.runs e.elapsed_s;
      match e.model with
      | [] -> ()
      | m ->
          line "      input: %s"
            (String.concat " "
               (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) m)))
    t.clusters;
  List.iter (fun (path, reason) -> line "  rejected %s: %s" path reason)
    t.rejected;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Strict JSON, rendered by hand like the bench/telemetry writers (no
   JSON dependency in the toolchain). *)

let jstr s = "\"" ^ Telemetry.Event.json_escape s ^ "\""
let jfloat = Telemetry.Event.json_float

let entry_to_json ~timing (e : entry) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"fingerprint\":%s" (jstr e.fingerprint));
  Buffer.add_string b (Printf.sprintf ",\"program\":%s" (jstr e.program));
  Buffer.add_string b (Printf.sprintf ",\"crash\":%s" (jstr e.crash));
  Buffer.add_string b
    (Printf.sprintf ",\"status\":%s" (jstr (status_name e.status)));
  Buffer.add_string b
    (Printf.sprintf ",\"representative\":%s" (jstr e.representative));
  Buffer.add_string b
    (Printf.sprintf ",\"members\":[%s]"
       (String.concat "," (List.map jstr e.members)));
  Buffer.add_string b (Printf.sprintf ",\"salvaged\":%d" e.salvaged);
  Buffer.add_string b
    (Printf.sprintf ",\"model\":[%s]"
       (String.concat ","
          (List.map
             (fun (n, v) ->
               Printf.sprintf "{\"name\":%s,\"value\":%d}" (jstr n) v)
             e.model)));
  if timing then begin
    Buffer.add_string b (Printf.sprintf ",\"rungs\":%d" e.rungs);
    Buffer.add_string b (Printf.sprintf ",\"runs\":%d" e.runs);
    Buffer.add_string b
      (Printf.sprintf ",\"elapsed_s\":%s" (jfloat e.elapsed_s))
  end;
  Buffer.add_string b "}";
  Buffer.contents b

let to_json ?(timing = true) (t : t) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"reports\":%d" t.reports);
  Buffer.add_string b (Printf.sprintf ",\"salvaged\":%d" t.salvaged);
  Buffer.add_string b
    (Printf.sprintf ",\"rejected\":[%s]"
       (String.concat ","
          (List.map
             (fun (p, r) ->
               Printf.sprintf "{\"path\":%s,\"reason\":%s}" (jstr p) (jstr r))
             t.rejected)));
  Buffer.add_string b
    (Printf.sprintf ",\"clusters\":[%s]"
       (String.concat "," (List.map (entry_to_json ~timing) t.clusters)));
  Buffer.add_string b
    (Printf.sprintf ",\"dedup_ratio\":%s" (jfloat t.dedup_ratio));
  Buffer.add_string b
    (Printf.sprintf
       ",\"counts\":{\"reproduced\":%d,\"salvaged_reproduced\":%d,\"timed_out\":%d,\"exhausted\":%d}"
       t.reproduced t.salvaged_reproduced t.timed_out t.exhausted);
  if timing then
    Buffer.add_string b (Printf.sprintf ",\"wall_s\":%s" (jfloat t.wall_s));
  Buffer.add_string b "}";
  Buffer.contents b
