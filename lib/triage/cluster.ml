(** Fingerprint clustering (see cluster.mli). *)

type t = {
  fp : Fingerprint.t;
  representative : Ingest.item;
  members : Ingest.item list;
}

let size t = List.length t.members
let salvaged t = Ingest.salvaged t.representative

(* Election order: intact beats salvaged (a full log replays under pure
   log-guidance; a torn one starts forking at the tear), longer log beats
   shorter (more §3.1 case-2a pins), path breaks the remaining ties. *)
let better (a : Ingest.item) (b : Ingest.item) =
  let intact i = if Ingest.salvaged i then 1 else 0 in
  let c = compare (intact a) (intact b) in
  if c <> 0 then c < 0
  else
    let c =
      compare
        (Instrument.Report.nbits b.report)
        (Instrument.Report.nbits a.report)
    in
    if c <> 0 then c < 0 else String.compare a.path b.path < 0

(* ------------------------------------------------------------------ *)
(* Incremental builder: the same buckets as a one-shot [group], grown one
   item at a time.  Snapshots re-sort members and re-elect from scratch,
   so the rendered clusters depend only on the item *set*, never the
   insertion order — the property the streaming-vs-batch oracle locks. *)

type builder = {
  tbl : (string, Fingerprint.t * Ingest.item list ref) Hashtbl.t;
  mutable n_items : int;
}

let builder () = { tbl = Hashtbl.create 64; n_items = 0 }

let insert (b : builder) (i : Ingest.item) =
  let fp = Fingerprint.of_report i.Ingest.report in
  let k = Fingerprint.key fp in
  b.n_items <- b.n_items + 1;
  match Hashtbl.find_opt b.tbl k with
  | Some (_, members) ->
      members := i :: !members;
      `Merged fp
  | None ->
      Hashtbl.add b.tbl k (fp, ref [ i ]);
      `New fp

let bucket_count (b : builder) = Hashtbl.length b.tbl
let item_count (b : builder) = b.n_items

let snapshot (b : builder) : t list =
  Hashtbl.fold
    (fun _k (fp, members) acc ->
      let members =
        List.sort
          (fun (a : Ingest.item) b -> String.compare a.path b.path)
          !members
      in
      let representative =
        match members with
        | [] -> assert false
        | first :: rest ->
            List.fold_left
              (fun best i -> if better i best then i else best)
              first rest
      in
      { fp; representative; members } :: acc)
    b.tbl []
  |> List.sort (fun a b ->
         String.compare (Fingerprint.key a.fp) (Fingerprint.key b.fp))

let group (items : Ingest.item list) : t list =
  let b = builder () in
  List.iter (fun i -> ignore (insert b i)) items;
  snapshot b
