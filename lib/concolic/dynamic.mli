(** Dynamic analysis: time-budgeted concolic execution that labels branches
    (§2.1).

    Marks argv and stream data symbolic, explores paths with {!Engine}
    (generational/BFS search), and labels every executed branch [Symbolic]
    or [Concrete] with the paper's sticky rule.  Branches never reached
    within the budget stay [Unvisited] — the source of the dynamic method's
    under-instrumentation. *)

type result = {
  labels : Minic.Label.map;
  vars : Solver.Symvars.t;
  runs : int;
  visited : int;  (** branch locations executed at least once *)
  coverage : float;  (** visited / total branch locations *)
  elapsed_s : float;
}

(** Build the run function for a scenario (exposed for tests and custom
    exploration loops): fresh world per run, symbolic argv and stream
    bytes, symbolic syscall results. *)
val make_run :
  ?max_steps:int ->
  Scenario.t ->
  vars:Solver.Symvars.t ->
  on_branch_observed:(int -> bool -> unit) ->
  Solver.Model.t ->
  Engine.run_result

(** Run the analysis.  The budget plays the role of the paper's
    one-hour/two-hour symbolic-execution cut-offs (LC vs HC).  [jobs] > 1
    explores with a parallel worker pool (the sticky labelling rule
    commutes, so the label map does not depend on worker scheduling);
    [cache] memoizes solver queries across pendings; [incremental] (default
    true) routes pendings through a private {!Solver.Incr.t} (scope reuse,
    learned-core pruning, strategy portfolio); [steal] (default true)
    selects the work-stealing frontier at [jobs] > 1; [telemetry] wraps the
    exploration in an [analyze.dynamic] span (runs/visited/coverage end
    attributes) over the {!Engine.explore} instrumentation. *)
val analyze :
  ?budget:Engine.budget ->
  ?max_steps:int ->
  ?jobs:int ->
  ?cache:Solver.Cache.t ->
  ?incremental:bool ->
  ?steal:bool ->
  ?telemetry:Telemetry.t ->
  Scenario.t ->
  result

(** (symbolic, concrete, unvisited) label counts. *)
val count_labels : result -> int * int * int
