(** Path recording for concolic runs.

    A trace is the ordered list of constraints implied by the run: one per
    *symbolic* branch execution (oriented by the direction actually taken)
    plus one equality per concretisation (symbolic value pinned to its
    concrete value at an array index, pointer offset or syscall argument). *)

type entry = {
  bid : int option;  (** branch id; [None] for concretisation constraints *)
  taken : bool;
  cons : Solver.Expr.t;  (** constraint asserted by this step *)
  negatable : bool;
      (** may the engine fork an alternative here?  False for branches whose
          direction is pinned by a branch log (replay case 2a). *)
}

type t = { mutable rev_entries : entry list; mutable length : int }

let create () = { rev_entries = []; length = 0 }

let push t e =
  t.rev_entries <- e :: t.rev_entries;
  t.length <- t.length + 1

(** Constraint asserted by taking (or not taking) a branch whose condition
    has symbolic shadow [sym]. *)
let branch_constraint ~taken sym =
  if taken then Solver.Simplify.bool_coerce sym else Solver.Expr.negate sym

let record_branch ?(negatable = true) t ~bid ~taken (sym : Solver.Expr.t) =
  push t { bid = Some bid; taken; cons = branch_constraint ~taken sym; negatable }

let record_concretize ?(negatable = false) t (sym : Solver.Expr.t) (value : int) =
  push t
    {
      bid = None;
      taken = true;
      cons = Solver.Expr.Binop (Solver.Expr.Eq, sym, Solver.Expr.Const value);
      negatable;
    }

(** Entries in execution order. *)
let entries t = List.rev t.rev_entries

let length t = t.length

(** Evaluator hooks that record the path into [t] (and chain to [inner]). *)
let hooks ?(inner = Interp.Eval.no_hooks) (t : t) : Interp.Eval.hooks =
  {
    inner with
    Interp.Eval.on_branch =
      (fun ~bid ~iter ~taken ~cond ->
        inner.Interp.Eval.on_branch ~bid ~iter ~taken ~cond;
        match cond.Interp.Value.sym with
        | Some sym -> record_branch t ~bid ~taken sym
        | None -> ());
    on_concretize =
      (fun sym value ->
        inner.Interp.Eval.on_concretize sym value;
        record_concretize t sym value);
  }
