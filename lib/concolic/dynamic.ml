(** Dynamic analysis: time-budgeted concolic execution that labels branches
    (§2.1).

    Marks argv and stream data symbolic, explores paths with {!Engine}, and
    labels every executed branch [Symbolic] or [Concrete] with the paper's
    sticky rule (symbolic wins; concrete may be upgraded later).  Branches
    never reached within the budget stay [Unvisited] — the source of the
    dynamic method's under-instrumentation. *)

open Minic

type result = {
  labels : Label.map;
  vars : Solver.Symvars.t;
  runs : int;
  visited : int;  (** branch locations executed at least once *)
  coverage : float;  (** visited / total branch locations *)
  elapsed_s : float;
}

(** Build the run function for a scenario: fresh world per run, symbolic
    argv and stream bytes, symbolic syscall results. *)
let make_run ?(max_steps = 2_000_000) (sc : Scenario.t) ~vars
    ~(on_branch_observed : int -> bool -> unit) :
    Solver.Model.t -> Engine.run_result =
 fun model ->
  let world, handle = Osmodel.World.kernel sc.world in
  let observed = ref Solver.Model.empty in
  let observe id v = observed := Solver.Model.add id v !observed in
  let sk =
    Sym_kernel.create ~observe ~vars ~model ~world ~handle ~sym_results:true ()
  in
  let trace = Path.create () in
  let label_hooks =
    {
      Interp.Eval.no_hooks with
      Interp.Eval.on_branch =
        (fun ~bid ~iter:_ ~taken ~cond ->
          on_branch_observed bid (Interp.Value.is_symbolic cond);
          ignore taken);
    }
  in
  let caps = (Scenario.shape_of sc).arg_caps in
  let cfg =
    {
      Interp.Eval.inputs = Sym_kernel.symbolic_args ~observe ~vars ~model sc ~caps;
      kernel = Sym_kernel.kernel sk;
      hooks = Path.hooks ~inner:label_hooks trace;
      max_steps = min max_steps sc.max_steps;
      scheduler = None;
    }
  in
  let r = Interp.Eval.run sc.prog cfg in
  { Engine.outcome = r.outcome; trace = Path.entries trace; observed = !observed }

(** Run the analysis.  The budget plays the role of the paper's
    one-hour/two-hour symbolic execution cut-offs (LC vs HC).  [jobs] > 1
    explores with a parallel worker pool; label updates are then serialized
    through a mutex (the sticky rule commutes, so the resulting label map
    does not depend on worker scheduling).  [cache] memoizes solver queries
    across pendings.  [incremental] (default true) solves through a private
    {!Solver.Incr.t} — scope reuse, learned cores, portfolio; [steal]
    (default true) picks the work-stealing frontier at [jobs] > 1. *)
let analyze ?(budget = Engine.default_budget) ?max_steps ?(jobs = 1) ?cache
    ?(incremental = true) ?(steal = true) ?(telemetry = Telemetry.disabled)
    (sc : Scenario.t) : result =
  Telemetry.Span.with_ telemetry ~name:"analyze.dynamic"
    ~attrs:[ ("scenario", Telemetry.Event.Str sc.name) ]
    (fun sp ->
      let vars = Solver.Symvars.create () in
      let n = Program.nbranches sc.prog in
      let labels = Label.make ~nbranches:n Label.Unvisited in
      let label_mu = Mutex.create () in
      let on_branch_observed =
        if jobs <= 1 then fun bid symbolic -> Label.observe labels bid ~symbolic
        else fun bid symbolic ->
          Mutex.lock label_mu;
          Label.observe labels bid ~symbolic;
          Mutex.unlock label_mu
      in
      let run = make_run ?max_steps sc ~vars ~on_branch_observed in
      let incr = if incremental then Some (Solver.Incr.create ()) else None in
      let stats, _ =
        Engine.explore ~vars ~budget ~strategy:Engine.Bfs ~jobs ?cache ?incr
          ~steal ~telemetry ~run ()
      in
      let visited = n - Label.count labels Label.Unvisited in
      let coverage =
        if n = 0 then 1.0 else float_of_int visited /. float_of_int n
      in
      Telemetry.Span.addi sp "runs" stats.runs;
      Telemetry.Span.addi sp "visited" visited;
      Telemetry.Span.addf sp "coverage" coverage;
      { labels; vars; runs = stats.runs; visited; coverage;
        elapsed_s = stats.elapsed_s })

(** Label statistics for reporting (Table 2-style). *)
let count_labels (r : result) =
  ( Label.count r.labels Label.Symbolic,
    Label.count r.labels Label.Concrete,
    Label.count r.labels Label.Unvisited )
