(** The concolic exploration engine.

    Implements the paper's §2.1 search: execute with concrete inputs,
    collect the path's branch constraints, negate one, solve for a new
    input, re-execute.  Alternative paths wait on a *pending list* of
    constraint sets (exactly the structure reused by guided replay in §3.1);
    selection is depth-first, the heuristic the paper says it uses.

    Pending sets share their parent run's trace array and materialise the
    constraint list only when popped, so a run with thousands of symbolic
    branch executions costs O(1) memory per pending alternative.

    The engine is generic over the actual run function, so dynamic analysis
    and bug replay share it.

    With [~jobs] > 1 the pending frontier is drained by a pool of OCaml 5
    domains: workers pop a pending, solve (optionally through a shared
    memoizing {!Solver.Cache}), re-execute in an isolated interpreter state
    and push children back.  The LIFO/FIFO disciplines of {!Dfs}/{!Bfs}
    become *priority hints* — each pop still takes the deepest/oldest
    pending, but several pendings are in flight at once, so the global
    visit order is not the sequential one.  [~jobs:1] (the default) runs
    the exact deterministic sequential loop. *)

type budget = {
  max_runs : int;
  max_time_s : float;  (** wall-clock cut-off for the whole exploration *)
}

type strategy =
  | Dfs  (** deepest pending first: follows a forced chain (guided replay) *)
  | Bfs
      (** oldest/shallowest pending first: generational search, best for
          coverage (dynamic analysis) *)

let default_budget = { max_runs = 500; max_time_s = 10.0 }

type run_result = {
  outcome : Interp.Crash.outcome;
  trace : Path.entry list;  (** in execution order *)
  observed : Solver.Model.t;
      (** effective concrete value of every symbolic input variable the run
          touched; used to seed the solver for child pendings so that only
          the negated constraint's variables need new values *)
}

type stats = {
  mutable runs : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable pending_peak : int;
  mutable elapsed_s : float;
  mutable timed_out : bool;
  mutable forks : int;  (** pendings pushed onto the frontier *)
  mutable core_pruned : int;
      (** pendings answered Unsat by a learned core, no solver call *)
  mutable solved_incremental : int;
      (** solver calls that reused >= 1 scope frame *)
  mutable solver_calls : int;  (** calls that reached the incremental solver *)
  mutable steals : int;  (** pendings taken from another worker's deque *)
  mutable worker_runs : int array;
      (** per-worker run counts, length [jobs]; the seeding run counts
          toward worker 0.  Invariant: the sum equals [runs]. *)
}

(* Batch-level steal accounting, mirroring [Solver.Incr.totals]: per-explore
   stats are buried inside the [Guided]/[Triage.Sched] layers, so benches
   total steals across every exploration between a reset and a read. *)
let steals_total = Atomic.make 0
let reset_steal_total () = Atomic.set steals_total 0
let steal_total () = Atomic.get steals_total

(* A pending constraint set: the prefix [trace.(0 .. upto-1)] with
   [trace.(upto)] negated, plus the [lineage] of negated constraints
   inherited from ancestor pendings.  The lineage is what makes exclusions
   accumulate: when a re-executed run re-records a fresh constraint at a
   previously-negated position (a re-pinned concretisation, say), the
   ancestor's negation would otherwise be forgotten and the search would
   cycle between two values.  [upto + 1] is the bound from which the next
   run may generate children (inherited constraints are never re-negated). *)
type pending = {
  trace : Path.entry array;
  upto : int;
  hint : Solver.Model.t;
  lineage : Solver.Expr.t list;
}

let negated_of (p : pending) = Solver.Expr.negate p.trace.(p.upto).Path.cons

let constraints_of (p : pending) : Solver.Expr.t list =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (p.trace.(i).Path.cons :: acc)
  in
  p.lineage @ build (p.upto - 1) [ negated_of p ]

let monotonic () = Unix.gettimeofday ()

(* diagnostics: print pendings that come back Unsat/Unknown *)
let debug_solver = ref false

(* Solve a pending's constraint set, escalating once on Unknown: an Unknown
   abandons this pending subtree for good — fatal when it carries a
   log-forced direction.  Routed through the memoizing cache when one is
   supplied (Unknowns are not cached, so the escalated call always reaches
   the real solver).  [telemetry] records the hit/miss/solve time split
   (through the cache when present, as [solver.solve_s] otherwise). *)
let solve_pending ?cache ?session ~telemetry ~vars ~hint cs =
  let solve ?budget () =
    match session with
    (* incremental path: learned-core pruning, scope re-sync, cache probe
       on the slice, portfolio search — all inside {!Solver.Incr.solve}.
       Same slice soundness argument as below. *)
    | Some s -> Solver.Incr.solve s ?budget ?cache ~hint cs
    | None -> (
        match cache with
        (* [slice] is sound here: a pending's hint satisfies every constraint
           outside the focus component, and both exploration loops merge the
           returned model over the hint (union_prefer_left) before running *)
        | Some c ->
            Solver.Cache.solve c ?budget ~telemetry ~vars ~hint ~slice:true cs
        | None ->
            Telemetry.Metrics.time telemetry "solver.solve_s" (fun () ->
                Solver.Solve.solve ?budget ~vars ~hint cs))
  in
  match solve () with
  | Solver.Solve.Unknown ->
      solve ~budget:{ Solver.Solve.default_budget with max_nodes = 3_000_000 } ()
  | r -> r

(* ------------------------------------------------------------------ *)
(* Sequential exploration: the deterministic [~jobs:1] path. *)

let explore_seq ~vars ~budget ~strategy ?cache ?session ~telemetry ~run
    ~should_stop ~on_run (stats : stats) :
    (Solver.Model.t * run_result) option =
  let started = monotonic () in
  let deadline = started +. budget.max_time_s in
  let forks = Telemetry.Metrics.counter telemetry "engine.forks" in
  (* the pending list: LIFO for DFS, FIFO for BFS *)
  let stack : pending Stack.t = Stack.create () in
  let queue : pending Queue.t = Queue.create () in
  let frontier_push p =
    match strategy with Dfs -> Stack.push p stack | Bfs -> Queue.push p queue
  in
  let frontier_pop () =
    match strategy with Dfs -> Stack.pop_opt stack | Bfs -> Queue.take_opt queue
  in
  let frontier_size () =
    match strategy with Dfs -> Stack.length stack | Bfs -> Queue.length queue
  in
  let found = ref None in
  (* [flipped] is the (position, negated constraint) this run was created to
     satisfy.  If the run records a *different* constraint at that position
     (a concretisation re-pinned to a new value), that position is fair game
     for another flip — with the lineage remembering the exclusions.  A
     branch entry re-records exactly the negated constraint, so branches are
     never flip-flopped. *)
  let do_run (model : Solver.Model.t) (bound : int)
      (flipped : (int * Solver.Expr.t) option) (lineage : Solver.Expr.t list) =
    stats.runs <- stats.runs + 1;
    let result : run_result = run model in
    on_run model result;
    if should_stop model result then found := Some (model, result)
    else begin
      (* push children: negate each own (non-inherited) constraint;
         pushed shallow-to-deep so the DFS pops the deepest first *)
      let trace = Array.of_list result.trace in
      let hint = Solver.Model.union_prefer_left model result.observed in
      let before = frontier_size () in
      Array.iteri
        (fun i (e : Path.entry) ->
          let reflip =
            match flipped with
            | Some (j, c) -> i = j && e.cons <> c
            | None -> false
          in
          if e.negatable && (i >= bound || reflip) then
            (* the exclusion lineage matters only along a re-flip chain (the
               re-pinned entry would otherwise cycle through old values); an
               ordinary child's prefix already implies every past decision,
               and a divergent run must not inherit constraints about a path
               it no longer follows *)
            frontier_push
              { trace; upto = i; hint; lineage = (if reflip then lineage else []) })
        trace;
      let after = frontier_size () in
      Telemetry.Metrics.incr ~by:(after - before) forks;
      Telemetry.Metrics.sample telemetry "engine.frontier" (float_of_int after);
      stats.forks <- stats.forks + (after - before);
      stats.pending_peak <- max stats.pending_peak after
    end
  in
  (* initial run: empty model — concrete inputs come from the scenario *)
  do_run Solver.Model.empty 0 None [];
  let continue () =
    !found = None
    && frontier_size () > 0
    && stats.runs < budget.max_runs
    &&
    if monotonic () > deadline then begin
      stats.timed_out <- true;
      false
    end
    else true
  in
  while continue () do
    (* [continue] checked the size, but pop defensively anyway: the
       check-then-pop pair is only atomic while this loop owns the
       frontier alone, and an [Option.get] here turns any future sharing
       (work-stealing siblings drain between check and pop) into a crash
       instead of a clean re-check *)
    match frontier_pop () with
    | None -> ()
    | Some p -> (
        let hint id = Solver.Model.find_opt id p.hint in
        let cs = constraints_of p in
        match solve_pending ?cache ?session ~telemetry ~vars ~hint cs with
        | Solver.Solve.Sat model ->
            stats.sat <- stats.sat + 1;
            (* keep the parent's values for variables the solver left free *)
            let model = Solver.Model.union_prefer_left model p.hint in
            do_run model (p.upto + 1)
              (Some (p.upto, negated_of p))
              (negated_of p :: p.lineage)
        | Solver.Solve.Unsat ->
            if !debug_solver then
              Printf.eprintf "UNSAT pending upto=%d negated=%s (prefix %d)\n%!"
                p.upto
                (Solver.Expr.to_string (negated_of p))
                (List.length cs);
            stats.unsat <- stats.unsat + 1
        | Solver.Solve.Unknown ->
            if !debug_solver then
              Printf.eprintf "UNKNOWN pending upto=%d negated=%s\n%!" p.upto
                (Solver.Expr.to_string (negated_of p));
            stats.unknown <- stats.unknown + 1)
  done;
  !found

(* ------------------------------------------------------------------ *)
(* Parallel exploration: a Domain-based worker pool over a shared,
   mutex-protected frontier.

   Invariants:
   - every field of [stats], the frontier and [found] are only touched with
     [m] held;
   - [run] and the solver execute with [m] released (that is the whole
     point); [on_run]/[should_stop] are called with [m] held, so user
     callbacks are serialized and may keep plain mutable state;
   - [active] counts workers between a successful pop and the push of that
     pending's children.  Termination: frontier empty AND [active] = 0 —
     the racy "frontier empty but a worker may still push children" case
     parks waiters on [cv] until the in-flight worker either pushes (then
     broadcasts) or retires;
   - [stats.runs] is reserved under the lock *before* a run executes, so
     the [max_runs] budget is an exact bound, as in the sequential loop. *)

let explore_par ~vars ~budget ~strategy ~jobs ?cache ?incr:isolver ~telemetry ~span ~run
    ~should_stop ~on_run (stats : stats) :
    (Solver.Model.t * run_result) option =
  let started = monotonic () in
  let deadline = started +. budget.max_time_s in
  let forks = Telemetry.Metrics.counter telemetry "engine.forks" in
  (* frontier stats live in Atomic accumulators (not plain stats fields) so
     the final fold below never races a late worker; per-worker run counts
     feed the [worker_runs] parity invariant *)
  let peak = Atomic.make 0 in
  let rec bump_peak n =
    let cur = Atomic.get peak in
    if n > cur && not (Atomic.compare_and_set peak cur n) then bump_peak n
  in
  let forks_n = Atomic.make 0 in
  let wruns = Array.init jobs (fun _ -> Atomic.make 0) in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let stack : pending Stack.t = Stack.create () in
  let queue : pending Queue.t = Queue.create () in
  let frontier_push p =
    match strategy with Dfs -> Stack.push p stack | Bfs -> Queue.push p queue
  in
  let frontier_pop () =
    match strategy with Dfs -> Stack.pop_opt stack | Bfs -> Queue.take_opt queue
  in
  let frontier_size () =
    match strategy with Dfs -> Stack.length stack | Bfs -> Queue.length queue
  in
  let found = ref None in
  let failed = ref None in
  let active = ref 0 in
  (* called with [m] held *)
  let push_children (model : Solver.Model.t) (result : run_result) bound flipped
      lineage =
    let trace = Array.of_list result.trace in
    let hint = Solver.Model.union_prefer_left model result.observed in
    let before = frontier_size () in
    Array.iteri
      (fun i (e : Path.entry) ->
        let reflip =
          match flipped with Some (j, c) -> i = j && e.cons <> c | None -> false
        in
        if e.negatable && (i >= bound || reflip) then
          frontier_push
            { trace; upto = i; hint; lineage = (if reflip then lineage else []) })
      trace;
    let after = frontier_size () in
    Telemetry.Metrics.incr ~by:(after - before) forks;
    Telemetry.Metrics.sample telemetry "engine.frontier" (float_of_int after);
    ignore (Atomic.fetch_and_add forks_n (after - before));
    bump_peak after
  in
  (* execute one run; called with [m] held, releases it around [run] *)
  let do_run_locked k model bound flipped lineage =
    stats.runs <- stats.runs + 1;
    Atomic.incr wruns.(k);
    Mutex.unlock m;
    let result = try Ok (run model) with e -> Error e in
    Mutex.lock m;
    match result with
    | Error e -> if !failed = None then failed := Some e
    | Ok result ->
        on_run model result;
        if should_stop model result then begin
          if !found = None then found := Some (model, result)
        end
        else push_children model result bound flipped lineage
  in
  (* process one pending; called with [m] held, releases it around solving *)
  let process k session (p : pending) =
    Mutex.unlock m;
    let solved =
      try
        let hint id = Solver.Model.find_opt id p.hint in
        Ok (solve_pending ?cache ?session ~telemetry ~vars ~hint (constraints_of p))
      with e -> Error e
    in
    Mutex.lock m;
    match solved with
    | Error e -> if !failed = None then failed := Some e
    | Ok (Solver.Solve.Sat model) ->
        stats.sat <- stats.sat + 1;
        if !found = None && stats.runs < budget.max_runs
           && monotonic () <= deadline
        then begin
          let model = Solver.Model.union_prefer_left model p.hint in
          do_run_locked k model (p.upto + 1)
            (Some (p.upto, negated_of p))
            (negated_of p :: p.lineage)
        end
    | Ok Solver.Solve.Unsat -> stats.unsat <- stats.unsat + 1
    | Ok Solver.Solve.Unknown -> stats.unknown <- stats.unknown + 1
  in
  let worker k () =
    (* the per-worker domain span: nesting is per-domain, so the explore
       span is linked explicitly *)
    Telemetry.Span.with_ telemetry ?parent:span ~name:"engine.worker"
      ~attrs:[ ("worker", Telemetry.Event.Int k) ]
      (fun wsp ->
        let session = Option.map (fun i -> Solver.Incr.session i ~vars) isolver in
        let pops = ref 0 in
        Mutex.lock m;
        let rec loop () =
          if !found <> None || !failed <> None || stats.runs >= budget.max_runs
          then ()
          else if monotonic () > deadline then stats.timed_out <- true
          else
            match frontier_pop () with
            | Some p ->
                incr active;
                incr pops;
                process k session p;
                decr active;
                Condition.broadcast cv;
                loop ()
            | None ->
                if !active = 0 then ()
                else begin
                  (* frontier drained but a sibling is still executing: it may
                     yet push children, so wait for its broadcast *)
                  Condition.wait cv m;
                  loop ()
                end
        in
        loop ();
        Condition.broadcast cv;
        Mutex.unlock m;
        Telemetry.Span.addi wsp "pendings" !pops)
  in
  (* seed the frontier with the initial run (empty model), then fan out *)
  Mutex.lock m;
  do_run_locked 0 Solver.Model.empty 0 None [];
  Mutex.unlock m;
  let domains = Array.init jobs (fun k -> Domain.spawn (worker k)) in
  Array.iter Domain.join domains;
  (match !failed with Some e -> raise e | None -> ());
  stats.pending_peak <- max stats.pending_peak (Atomic.get peak);
  stats.forks <- stats.forks + Atomic.get forks_n;
  stats.worker_runs <- Array.map Atomic.get wruns;
  !found

(* ------------------------------------------------------------------ *)
(* Sharded exploration: per-worker deques with work stealing.

   Each worker owns a deque and pushes its runs' children there, so a
   worker's local work tends to extend its own recent traces — exactly the
   lineage affinity that keeps its incremental solver scope ({!Solver.Incr})
   warm.  For [Dfs] the owner pops newest-first (LIFO) and thieves steal
   oldest-first, taking the shallowest — largest — subtrees and touching the
   victim's cache-hot end never; [Bfs] is the mirror image.

   Synchronization: each deque has its own small mutex; everything global is
   an [Atomic] — [total_pending] (counted *before* a push becomes visible
   and decremented *after* a successful pop, so the emptiness test never
   under-counts), [active] (incremented before a worker tries to pop,
   decremented when its pending is fully processed — children pushed), and
   a set-once [found]/[failed].  Termination: [total_pending = 0 && active
   = 0].  Idle workers park on a condvar; pushers wake them only when the
   sleeper count is non-zero, so the happy path takes no global lock.
   [on_run]/[should_stop] stay serialized under a callback mutex (the
   documented engine contract).  [max_runs] is reserved with a CAS loop, so
   the budget stays an exact bound. *)

module Deque = struct
  type 'a t = {
    mu : Mutex.t;
    mutable buf : 'a option array;
    mutable head : int;  (* index of the first element *)
    mutable len : int;
  }

  let create () =
    { mu = Mutex.create (); buf = Array.make 64 None; head = 0; len = 0 }

  let locked d f =
    Mutex.lock d.mu;
    match f () with
    | v ->
        Mutex.unlock d.mu;
        v
    | exception e ->
        Mutex.unlock d.mu;
        raise e

  let grow d =
    let cap = Array.length d.buf in
    let nbuf = Array.make (cap * 2) None in
    for i = 0 to d.len - 1 do
      nbuf.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- nbuf;
    d.head <- 0

  let push_back d x =
    locked d (fun () ->
        if d.len = Array.length d.buf then grow d;
        d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
        d.len <- d.len + 1)

  let pop_back d =
    locked d (fun () ->
        if d.len = 0 then None
        else begin
          let i = (d.head + d.len - 1) mod Array.length d.buf in
          let x = d.buf.(i) in
          d.buf.(i) <- None;
          d.len <- d.len - 1;
          x
        end)

  let pop_front d =
    locked d (fun () ->
        if d.len = 0 then None
        else begin
          let x = d.buf.(d.head) in
          d.buf.(d.head) <- None;
          d.head <- (d.head + 1) mod Array.length d.buf;
          d.len <- d.len - 1;
          x
        end)
end

let explore_steal ~vars ~budget ~strategy ~jobs ?cache ?incr:isolver ~telemetry ~span
    ~run ~should_stop ~on_run (stats : stats) :
    (Solver.Model.t * run_result) option =
  let started = monotonic () in
  let deadline = started +. budget.max_time_s in
  let forks_c = Telemetry.Metrics.counter telemetry "engine.forks" in
  let deques = Array.init jobs (fun _ -> Deque.create ()) in
  let own_pop d =
    match strategy with Dfs -> Deque.pop_back d | Bfs -> Deque.pop_front d
  in
  let thief_pop d =
    match strategy with Dfs -> Deque.pop_front d | Bfs -> Deque.pop_back d
  in
  let total_pending = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let rec bump_peak n =
    let cur = Atomic.get peak in
    if n > cur && not (Atomic.compare_and_set peak cur n) then bump_peak n
  in
  let runs = Atomic.make 0 in
  let rec reserve_run () =
    let r = Atomic.get runs in
    if r >= budget.max_runs then false
    else if Atomic.compare_and_set runs r (r + 1) then true
    else reserve_run ()
  in
  let sat_n = Atomic.make 0 in
  let unsat_n = Atomic.make 0 in
  let unknown_n = Atomic.make 0 in
  let forks_n = Atomic.make 0 in
  let steals_n = Atomic.make 0 in
  let wruns = Array.init jobs (fun _ -> Atomic.make 0) in
  let found : (Solver.Model.t * run_result) option Atomic.t =
    Atomic.make None
  in
  let failed : exn option Atomic.t = Atomic.make None in
  let hit_deadline = Atomic.make false in
  let active = Atomic.make 0 in
  let gm = Mutex.create () in
  let cv = Condition.create () in
  let sleepers = Atomic.make 0 in
  let cb_mu = Mutex.create () in
  let fail e = ignore (Atomic.compare_and_set failed None (Some e)) in
  let wake_all () =
    Mutex.lock gm;
    Condition.broadcast cv;
    Mutex.unlock gm
  in
  let push_local k p =
    (* count before the push becomes stealable: the termination test may
       see a phantom pending for a moment, never a missing one *)
    let n = Atomic.fetch_and_add total_pending 1 + 1 in
    bump_peak n;
    Deque.push_back deques.(k) p;
    if Atomic.get sleepers > 0 then wake_all ()
  in
  let push_children k model (result : run_result) bound flipped lineage =
    let trace = Array.of_list result.trace in
    let hint = Solver.Model.union_prefer_left model result.observed in
    let pushed = ref 0 in
    Array.iteri
      (fun i (e : Path.entry) ->
        let reflip =
          match flipped with Some (j, c) -> i = j && e.cons <> c | None -> false
        in
        if e.negatable && (i >= bound || reflip) then begin
          incr pushed;
          push_local k
            { trace; upto = i; hint; lineage = (if reflip then lineage else []) }
        end)
      trace;
    ignore (Atomic.fetch_and_add forks_n !pushed);
    Telemetry.Metrics.incr ~by:!pushed forks_c;
    Telemetry.Metrics.sample telemetry "engine.frontier"
      (float_of_int (Atomic.get total_pending))
  in
  let do_run k model bound flipped lineage =
    match run model with
    | exception e -> fail e
    | result -> (
        (* serialized callbacks: the documented engine contract *)
        Mutex.lock cb_mu;
        let verdict =
          try
            on_run model result;
            Ok (should_stop model result)
          with e -> Error e
        in
        Mutex.unlock cb_mu;
        match verdict with
        | Error e -> fail e
        | Ok true ->
            ignore (Atomic.compare_and_set found None (Some (model, result)));
            wake_all ()
        | Ok false -> push_children k model result bound flipped lineage)
  in
  let process k session (p : pending) =
    let hint id = Solver.Model.find_opt id p.hint in
    match solve_pending ?cache ?session ~telemetry ~vars ~hint (constraints_of p) with
    | exception e -> fail e
    | Solver.Solve.Sat model ->
        Atomic.incr sat_n;
        if Atomic.get found = None && monotonic () <= deadline && reserve_run ()
        then begin
          Atomic.incr wruns.(k);
          let model = Solver.Model.union_prefer_left model p.hint in
          do_run k model (p.upto + 1)
            (Some (p.upto, negated_of p))
            (negated_of p :: p.lineage)
        end
    | Solver.Solve.Unsat -> Atomic.incr unsat_n
    | Solver.Solve.Unknown -> Atomic.incr unknown_n
  in
  let stop_now () =
    Atomic.get found <> None
    || Atomic.get failed <> None
    || Atomic.get runs >= budget.max_runs
    ||
    if monotonic () > deadline then begin
      Atomic.set hit_deadline true;
      true
    end
    else false
  in
  let try_get k =
    match own_pop deques.(k) with
    | Some p -> Some p
    | None ->
        (* round-robin victim scan starting at the right-hand neighbour *)
        let rec scan i =
          if i >= jobs then None
          else
            match thief_pop deques.((k + i) mod jobs) with
            | Some p ->
                Atomic.incr steals_n;
                Some p
            | None -> scan (i + 1)
        in
        scan 1
  in
  let worker k () =
    Telemetry.Span.with_ telemetry ?parent:span ~name:"engine.worker"
      ~attrs:[ ("worker", Telemetry.Event.Int k) ]
      (fun wsp ->
        let session = Option.map (fun i -> Solver.Incr.session i ~vars) isolver in
        let pops = ref 0 in
        let rec loop () =
          if stop_now () then ()
          else begin
            Atomic.incr active;
            match try_get k with
            | Some p ->
                Atomic.decr total_pending;
                incr pops;
                process k session p;
                Atomic.decr active;
                (* sleepers must recheck: children were pushed (they have
                   work) or none were (termination may have arrived) *)
                if Atomic.get sleepers > 0 || Atomic.get total_pending = 0 then
                  wake_all ();
                loop ()
            | None ->
                Atomic.decr active;
                if Atomic.get total_pending = 0 && Atomic.get active = 0 then
                  (* global frontier drained, nobody can repopulate it *)
                  wake_all ()
                else begin
                  Mutex.lock gm;
                  Atomic.incr sleepers;
                  (* recheck under the lock: a pusher that saw sleepers = 0
                     must have completed its push before we got here, and
                     the total_pending read below observes it *)
                  if
                    Atomic.get total_pending = 0
                    && Atomic.get active > 0
                    && Atomic.get found = None
                    && Atomic.get failed = None
                  then Condition.wait cv gm;
                  Atomic.decr sleepers;
                  Mutex.unlock gm;
                  loop ()
                end
          end
        in
        loop ();
        wake_all ();
        Telemetry.Span.addi wsp "pendings" !pops)
  in
  (* the seeding run executes on the caller, children land in deque 0 and
     are immediately stealable once the workers start *)
  if reserve_run () then begin
    Atomic.incr wruns.(0);
    do_run 0 Solver.Model.empty 0 None []
  end;
  let domains = Array.init jobs (fun k -> Domain.spawn (worker k)) in
  Array.iter Domain.join domains;
  (match Atomic.get failed with Some e -> raise e | None -> ());
  stats.runs <- stats.runs + Atomic.get runs;
  stats.sat <- stats.sat + Atomic.get sat_n;
  stats.unsat <- stats.unsat + Atomic.get unsat_n;
  stats.unknown <- stats.unknown + Atomic.get unknown_n;
  stats.forks <- stats.forks + Atomic.get forks_n;
  stats.steals <- stats.steals + Atomic.get steals_n;
  stats.pending_peak <- max stats.pending_peak (Atomic.get peak);
  stats.worker_runs <- Array.map Atomic.get wruns;
  if Atomic.get hit_deadline then stats.timed_out <- true;
  Atomic.get found

(* ------------------------------------------------------------------ *)

(** Explore paths until the budget is exhausted or [should_stop] returns
    true for a run.  Returns the accumulated statistics and, if stopped
    early, the model and result of the stopping run.

    [telemetry] (default disabled) wraps the exploration in an
    [engine.explore] span (one [engine.worker] child span per domain when
    [jobs] > 1), times every run into the [engine.run_s] histogram,
    samples the frontier depth after each run ([engine.frontier]) and
    accumulates the [engine.runs]/[sat]/[unsat]/[unknown]/[forks]
    counters plus the solver-time split (see {!Solver.Cache.solve}). *)
let explore ~(vars : Solver.Symvars.t) ?(budget = default_budget)
    ?(strategy = Dfs) ?(jobs = 1) ?cache ?incr ?(steal = true)
    ?(telemetry = Telemetry.disabled)
    ~(run : Solver.Model.t -> run_result)
    ?(should_stop = fun _ _ -> false)
    ?(on_run = fun (_ : Solver.Model.t) (_ : run_result) -> ()) () :
    stats * (Solver.Model.t * run_result) option =
  let stats =
    { runs = 0; sat = 0; unsat = 0; unknown = 0; pending_peak = 0;
      elapsed_s = 0.0; timed_out = false; forks = 0; core_pruned = 0;
      solved_incremental = 0; solver_calls = 0; steals = 0;
      worker_runs = [||] }
  in
  Telemetry.Span.with_ telemetry ~name:"engine.explore"
    ~attrs:
      [
        ("strategy", Telemetry.Event.Str (match strategy with Dfs -> "dfs" | Bfs -> "bfs"));
        ("jobs", Telemetry.Event.Int jobs);
        ("max_runs", Telemetry.Event.Int budget.max_runs);
      ]
    (fun sp ->
      let run =
        if Telemetry.enabled telemetry then fun model ->
          Telemetry.Metrics.time telemetry "engine.run_s" (fun () -> run model)
        else run
      in
      (* delta of the incremental layer's counters attributable to this
         exploration (the [Incr.t] may be shared across sequential explores
         of a triage ladder, but never across concurrent ones) *)
      let incr_before = Option.map Solver.Incr.snapshot incr in
      let started = monotonic () in
      let found =
        if jobs <= 1 then begin
          let session =
            Option.map (fun i -> Solver.Incr.session i ~vars) incr
          in
          explore_seq ~vars ~budget ~strategy ?cache ?session ~telemetry ~run
            ~should_stop ~on_run stats
        end
        else if steal then
          explore_steal ~vars ~budget ~strategy ~jobs ?cache ?incr ~telemetry
            ~span:(Some sp) ~run ~should_stop ~on_run stats
        else
          explore_par ~vars ~budget ~strategy ~jobs ?cache ?incr ~telemetry
            ~span:(Some sp) ~run ~should_stop ~on_run stats
      in
      if jobs <= 1 then stats.worker_runs <- [| stats.runs |];
      (match (incr, incr_before) with
      | Some i, Some b ->
          let a = Solver.Incr.snapshot i in
          stats.core_pruned <- a.Solver.Incr.core_pruned - b.Solver.Incr.core_pruned;
          stats.solved_incremental <-
            a.Solver.Incr.incremental - b.Solver.Incr.incremental;
          stats.solver_calls <- a.Solver.Incr.solver_calls - b.Solver.Incr.solver_calls
      | _ -> ());
      if stats.runs >= budget.max_runs && found = None then
        stats.timed_out <- true;
      stats.elapsed_s <- monotonic () -. started;
      if stats.steals > 0 then
        ignore (Atomic.fetch_and_add steals_total stats.steals);
      Telemetry.Metrics.incr_named ~by:stats.runs telemetry "engine.runs";
      Telemetry.Metrics.incr_named ~by:stats.sat telemetry "engine.sat";
      Telemetry.Metrics.incr_named ~by:stats.unsat telemetry "engine.unsat";
      Telemetry.Metrics.incr_named ~by:stats.unknown telemetry "engine.unknown";
      Telemetry.Span.addi sp "runs" stats.runs;
      Telemetry.Span.addi sp "pending_peak" stats.pending_peak;
      Telemetry.Span.addf sp "elapsed_s" stats.elapsed_s;
      (stats, found))

(** An {!Engine.stats} in the unified counter view (scope ["engine"]).
    The record stays for the bench tables. *)
let counters (s : stats) : Telemetry.Counters.snapshot =
  Telemetry.Counters.make ~scope:"engine"
    ~gauges:
      [ ("elapsed_s", s.elapsed_s);
        ("timed_out", if s.timed_out then 1.0 else 0.0) ]
    [
      ("runs", s.runs); ("sat", s.sat); ("unsat", s.unsat);
      ("unknown", s.unknown); ("pending_peak", s.pending_peak);
      ("forks", s.forks); ("core_pruned", s.core_pruned);
      ("solved_incremental", s.solved_incremental);
      ("solver_calls", s.solver_calls); ("steals", s.steals);
    ]
