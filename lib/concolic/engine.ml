(** The concolic exploration engine.

    Implements the paper's §2.1 search: execute with concrete inputs,
    collect the path's branch constraints, negate one, solve for a new
    input, re-execute.  Alternative paths wait on a *pending list* of
    constraint sets (exactly the structure reused by guided replay in §3.1);
    selection is depth-first, the heuristic the paper says it uses.

    Pending sets share their parent run's trace array and materialise the
    constraint list only when popped, so a run with thousands of symbolic
    branch executions costs O(1) memory per pending alternative.

    The engine is generic over the actual run function, so dynamic analysis
    and bug replay share it.

    With [~jobs] > 1 the pending frontier is drained by a pool of OCaml 5
    domains: workers pop a pending, solve (optionally through a shared
    memoizing {!Solver.Cache}), re-execute in an isolated interpreter state
    and push children back.  The LIFO/FIFO disciplines of {!Dfs}/{!Bfs}
    become *priority hints* — each pop still takes the deepest/oldest
    pending, but several pendings are in flight at once, so the global
    visit order is not the sequential one.  [~jobs:1] (the default) runs
    the exact deterministic sequential loop. *)

type budget = {
  max_runs : int;
  max_time_s : float;  (** wall-clock cut-off for the whole exploration *)
}

type strategy =
  | Dfs  (** deepest pending first: follows a forced chain (guided replay) *)
  | Bfs
      (** oldest/shallowest pending first: generational search, best for
          coverage (dynamic analysis) *)

let default_budget = { max_runs = 500; max_time_s = 10.0 }

type run_result = {
  outcome : Interp.Crash.outcome;
  trace : Path.entry list;  (** in execution order *)
  observed : Solver.Model.t;
      (** effective concrete value of every symbolic input variable the run
          touched; used to seed the solver for child pendings so that only
          the negated constraint's variables need new values *)
}

type stats = {
  mutable runs : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable pending_peak : int;
  mutable elapsed_s : float;
  mutable timed_out : bool;
}

(* A pending constraint set: the prefix [trace.(0 .. upto-1)] with
   [trace.(upto)] negated, plus the [lineage] of negated constraints
   inherited from ancestor pendings.  The lineage is what makes exclusions
   accumulate: when a re-executed run re-records a fresh constraint at a
   previously-negated position (a re-pinned concretisation, say), the
   ancestor's negation would otherwise be forgotten and the search would
   cycle between two values.  [upto + 1] is the bound from which the next
   run may generate children (inherited constraints are never re-negated). *)
type pending = {
  trace : Path.entry array;
  upto : int;
  hint : Solver.Model.t;
  lineage : Solver.Expr.t list;
}

let negated_of (p : pending) = Solver.Expr.negate p.trace.(p.upto).Path.cons

let constraints_of (p : pending) : Solver.Expr.t list =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (p.trace.(i).Path.cons :: acc)
  in
  p.lineage @ build (p.upto - 1) [ negated_of p ]

let monotonic () = Unix.gettimeofday ()

(* diagnostics: print pendings that come back Unsat/Unknown *)
let debug_solver = ref false

(* Solve a pending's constraint set, escalating once on Unknown: an Unknown
   abandons this pending subtree for good — fatal when it carries a
   log-forced direction.  Routed through the memoizing cache when one is
   supplied (Unknowns are not cached, so the escalated call always reaches
   the real solver).  [telemetry] records the hit/miss/solve time split
   (through the cache when present, as [solver.solve_s] otherwise). *)
let solve_pending ?cache ~telemetry ~vars ~hint cs =
  let solve ?budget () =
    match cache with
    (* [slice] is sound here: a pending's hint satisfies every constraint
       outside the focus component, and both exploration loops merge the
       returned model over the hint (union_prefer_left) before running *)
    | Some c -> Solver.Cache.solve c ?budget ~telemetry ~vars ~hint ~slice:true cs
    | None ->
        Telemetry.Metrics.time telemetry "solver.solve_s" (fun () ->
            Solver.Solve.solve ?budget ~vars ~hint cs)
  in
  match solve () with
  | Solver.Solve.Unknown ->
      solve ~budget:{ Solver.Solve.default_budget with max_nodes = 3_000_000 } ()
  | r -> r

(* ------------------------------------------------------------------ *)
(* Sequential exploration: the deterministic [~jobs:1] path. *)

let explore_seq ~vars ~budget ~strategy ?cache ~telemetry ~run ~should_stop
    ~on_run (stats : stats) : (Solver.Model.t * run_result) option =
  let started = monotonic () in
  let deadline = started +. budget.max_time_s in
  let forks = Telemetry.Metrics.counter telemetry "engine.forks" in
  (* the pending list: LIFO for DFS, FIFO for BFS *)
  let stack : pending Stack.t = Stack.create () in
  let queue : pending Queue.t = Queue.create () in
  let frontier_push p =
    match strategy with Dfs -> Stack.push p stack | Bfs -> Queue.push p queue
  in
  let frontier_pop () =
    match strategy with Dfs -> Stack.pop_opt stack | Bfs -> Queue.take_opt queue
  in
  let frontier_size () =
    match strategy with Dfs -> Stack.length stack | Bfs -> Queue.length queue
  in
  let found = ref None in
  (* [flipped] is the (position, negated constraint) this run was created to
     satisfy.  If the run records a *different* constraint at that position
     (a concretisation re-pinned to a new value), that position is fair game
     for another flip — with the lineage remembering the exclusions.  A
     branch entry re-records exactly the negated constraint, so branches are
     never flip-flopped. *)
  let do_run (model : Solver.Model.t) (bound : int)
      (flipped : (int * Solver.Expr.t) option) (lineage : Solver.Expr.t list) =
    stats.runs <- stats.runs + 1;
    let result : run_result = run model in
    on_run model result;
    if should_stop model result then found := Some (model, result)
    else begin
      (* push children: negate each own (non-inherited) constraint;
         pushed shallow-to-deep so the DFS pops the deepest first *)
      let trace = Array.of_list result.trace in
      let hint = Solver.Model.union_prefer_left model result.observed in
      let before = frontier_size () in
      Array.iteri
        (fun i (e : Path.entry) ->
          let reflip =
            match flipped with
            | Some (j, c) -> i = j && e.cons <> c
            | None -> false
          in
          if e.negatable && (i >= bound || reflip) then
            (* the exclusion lineage matters only along a re-flip chain (the
               re-pinned entry would otherwise cycle through old values); an
               ordinary child's prefix already implies every past decision,
               and a divergent run must not inherit constraints about a path
               it no longer follows *)
            frontier_push
              { trace; upto = i; hint; lineage = (if reflip then lineage else []) })
        trace;
      let after = frontier_size () in
      Telemetry.Metrics.incr ~by:(after - before) forks;
      Telemetry.Metrics.sample telemetry "engine.frontier" (float_of_int after);
      stats.pending_peak <- max stats.pending_peak after
    end
  in
  (* initial run: empty model — concrete inputs come from the scenario *)
  do_run Solver.Model.empty 0 None [];
  let continue () =
    !found = None
    && frontier_size () > 0
    && stats.runs < budget.max_runs
    &&
    if monotonic () > deadline then begin
      stats.timed_out <- true;
      false
    end
    else true
  in
  while continue () do
    let p = Option.get (frontier_pop ()) in
    let hint id = Solver.Model.find_opt id p.hint in
    let cs = constraints_of p in
    match solve_pending ?cache ~telemetry ~vars ~hint cs with
    | Solver.Solve.Sat model ->
        stats.sat <- stats.sat + 1;
        (* keep the parent's values for variables the solver left free *)
        let model = Solver.Model.union_prefer_left model p.hint in
        do_run model (p.upto + 1)
          (Some (p.upto, negated_of p))
          (negated_of p :: p.lineage)
    | Solver.Solve.Unsat ->
        if !debug_solver then
          Printf.eprintf "UNSAT pending upto=%d negated=%s (prefix %d)\n%!" p.upto
            (Solver.Expr.to_string (negated_of p))
            (List.length cs);
        stats.unsat <- stats.unsat + 1
    | Solver.Solve.Unknown ->
        if !debug_solver then
          Printf.eprintf "UNKNOWN pending upto=%d negated=%s\n%!" p.upto
            (Solver.Expr.to_string (negated_of p));
        stats.unknown <- stats.unknown + 1
  done;
  !found

(* ------------------------------------------------------------------ *)
(* Parallel exploration: a Domain-based worker pool over a shared,
   mutex-protected frontier.

   Invariants:
   - every field of [stats], the frontier and [found] are only touched with
     [m] held;
   - [run] and the solver execute with [m] released (that is the whole
     point); [on_run]/[should_stop] are called with [m] held, so user
     callbacks are serialized and may keep plain mutable state;
   - [active] counts workers between a successful pop and the push of that
     pending's children.  Termination: frontier empty AND [active] = 0 —
     the racy "frontier empty but a worker may still push children" case
     parks waiters on [cv] until the in-flight worker either pushes (then
     broadcasts) or retires;
   - [stats.runs] is reserved under the lock *before* a run executes, so
     the [max_runs] budget is an exact bound, as in the sequential loop. *)

let explore_par ~vars ~budget ~strategy ~jobs ?cache ~telemetry ~span ~run
    ~should_stop ~on_run (stats : stats) :
    (Solver.Model.t * run_result) option =
  let started = monotonic () in
  let deadline = started +. budget.max_time_s in
  let forks = Telemetry.Metrics.counter telemetry "engine.forks" in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let stack : pending Stack.t = Stack.create () in
  let queue : pending Queue.t = Queue.create () in
  let frontier_push p =
    match strategy with Dfs -> Stack.push p stack | Bfs -> Queue.push p queue
  in
  let frontier_pop () =
    match strategy with Dfs -> Stack.pop_opt stack | Bfs -> Queue.take_opt queue
  in
  let frontier_size () =
    match strategy with Dfs -> Stack.length stack | Bfs -> Queue.length queue
  in
  let found = ref None in
  let failed = ref None in
  let active = ref 0 in
  (* called with [m] held *)
  let push_children (model : Solver.Model.t) (result : run_result) bound flipped
      lineage =
    let trace = Array.of_list result.trace in
    let hint = Solver.Model.union_prefer_left model result.observed in
    let before = frontier_size () in
    Array.iteri
      (fun i (e : Path.entry) ->
        let reflip =
          match flipped with Some (j, c) -> i = j && e.cons <> c | None -> false
        in
        if e.negatable && (i >= bound || reflip) then
          frontier_push
            { trace; upto = i; hint; lineage = (if reflip then lineage else []) })
      trace;
    let after = frontier_size () in
    Telemetry.Metrics.incr ~by:(after - before) forks;
    Telemetry.Metrics.sample telemetry "engine.frontier" (float_of_int after);
    stats.pending_peak <- max stats.pending_peak after
  in
  (* execute one run; called with [m] held, releases it around [run] *)
  let do_run_locked model bound flipped lineage =
    stats.runs <- stats.runs + 1;
    Mutex.unlock m;
    let result = try Ok (run model) with e -> Error e in
    Mutex.lock m;
    match result with
    | Error e -> if !failed = None then failed := Some e
    | Ok result ->
        on_run model result;
        if should_stop model result then begin
          if !found = None then found := Some (model, result)
        end
        else push_children model result bound flipped lineage
  in
  (* process one pending; called with [m] held, releases it around solving *)
  let process (p : pending) =
    Mutex.unlock m;
    let solved =
      try
        let hint id = Solver.Model.find_opt id p.hint in
        Ok (solve_pending ?cache ~telemetry ~vars ~hint (constraints_of p))
      with e -> Error e
    in
    Mutex.lock m;
    match solved with
    | Error e -> if !failed = None then failed := Some e
    | Ok (Solver.Solve.Sat model) ->
        stats.sat <- stats.sat + 1;
        if !found = None && stats.runs < budget.max_runs
           && monotonic () <= deadline
        then begin
          let model = Solver.Model.union_prefer_left model p.hint in
          do_run_locked model (p.upto + 1)
            (Some (p.upto, negated_of p))
            (negated_of p :: p.lineage)
        end
    | Ok Solver.Solve.Unsat -> stats.unsat <- stats.unsat + 1
    | Ok Solver.Solve.Unknown -> stats.unknown <- stats.unknown + 1
  in
  let worker k () =
    (* the per-worker domain span: nesting is per-domain, so the explore
       span is linked explicitly *)
    Telemetry.Span.with_ telemetry ?parent:span ~name:"engine.worker"
      ~attrs:[ ("worker", Telemetry.Event.Int k) ]
      (fun wsp ->
        let pops = ref 0 in
        Mutex.lock m;
        let rec loop () =
          if !found <> None || !failed <> None || stats.runs >= budget.max_runs
          then ()
          else if monotonic () > deadline then stats.timed_out <- true
          else
            match frontier_pop () with
            | Some p ->
                incr active;
                incr pops;
                process p;
                decr active;
                Condition.broadcast cv;
                loop ()
            | None ->
                if !active = 0 then ()
                else begin
                  (* frontier drained but a sibling is still executing: it may
                     yet push children, so wait for its broadcast *)
                  Condition.wait cv m;
                  loop ()
                end
        in
        loop ();
        Condition.broadcast cv;
        Mutex.unlock m;
        Telemetry.Span.addi wsp "pendings" !pops)
  in
  (* seed the frontier with the initial run (empty model), then fan out *)
  Mutex.lock m;
  do_run_locked Solver.Model.empty 0 None [];
  Mutex.unlock m;
  let domains = Array.init jobs (fun k -> Domain.spawn (worker k)) in
  Array.iter Domain.join domains;
  (match !failed with Some e -> raise e | None -> ());
  !found

(* ------------------------------------------------------------------ *)

(** Explore paths until the budget is exhausted or [should_stop] returns
    true for a run.  Returns the accumulated statistics and, if stopped
    early, the model and result of the stopping run.

    [telemetry] (default disabled) wraps the exploration in an
    [engine.explore] span (one [engine.worker] child span per domain when
    [jobs] > 1), times every run into the [engine.run_s] histogram,
    samples the frontier depth after each run ([engine.frontier]) and
    accumulates the [engine.runs]/[sat]/[unsat]/[unknown]/[forks]
    counters plus the solver-time split (see {!Solver.Cache.solve}). *)
let explore ~(vars : Solver.Symvars.t) ?(budget = default_budget)
    ?(strategy = Dfs) ?(jobs = 1) ?cache ?(telemetry = Telemetry.disabled)
    ~(run : Solver.Model.t -> run_result)
    ?(should_stop = fun _ _ -> false)
    ?(on_run = fun (_ : Solver.Model.t) (_ : run_result) -> ()) () :
    stats * (Solver.Model.t * run_result) option =
  let stats =
    { runs = 0; sat = 0; unsat = 0; unknown = 0; pending_peak = 0;
      elapsed_s = 0.0; timed_out = false }
  in
  Telemetry.Span.with_ telemetry ~name:"engine.explore"
    ~attrs:
      [
        ("strategy", Telemetry.Event.Str (match strategy with Dfs -> "dfs" | Bfs -> "bfs"));
        ("jobs", Telemetry.Event.Int jobs);
        ("max_runs", Telemetry.Event.Int budget.max_runs);
      ]
    (fun sp ->
      let run =
        if Telemetry.enabled telemetry then fun model ->
          Telemetry.Metrics.time telemetry "engine.run_s" (fun () -> run model)
        else run
      in
      let started = monotonic () in
      let found =
        if jobs <= 1 then
          explore_seq ~vars ~budget ~strategy ?cache ~telemetry ~run
            ~should_stop ~on_run stats
        else
          explore_par ~vars ~budget ~strategy ~jobs ?cache ~telemetry
            ~span:(Some sp) ~run ~should_stop ~on_run stats
      in
      if stats.runs >= budget.max_runs && found = None then
        stats.timed_out <- true;
      stats.elapsed_s <- monotonic () -. started;
      Telemetry.Metrics.incr_named ~by:stats.runs telemetry "engine.runs";
      Telemetry.Metrics.incr_named ~by:stats.sat telemetry "engine.sat";
      Telemetry.Metrics.incr_named ~by:stats.unsat telemetry "engine.unsat";
      Telemetry.Metrics.incr_named ~by:stats.unknown telemetry "engine.unknown";
      Telemetry.Span.addi sp "runs" stats.runs;
      Telemetry.Span.addi sp "pending_peak" stats.pending_peak;
      Telemetry.Span.addf sp "elapsed_s" stats.elapsed_s;
      (stats, found))

(** An {!Engine.stats} in the unified counter view (scope ["engine"]).
    The record stays for the bench tables. *)
let counters (s : stats) : Telemetry.Counters.snapshot =
  Telemetry.Counters.make ~scope:"engine"
    ~gauges:
      [ ("elapsed_s", s.elapsed_s);
        ("timed_out", if s.timed_out then 1.0 else 0.0) ]
    [
      ("runs", s.runs); ("sat", s.sat); ("unsat", s.unsat);
      ("unknown", s.unknown); ("pending_peak", s.pending_peak);
    ]
