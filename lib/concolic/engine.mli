(** The concolic exploration engine.

    Implements the paper's §2.1 search: execute with concrete inputs,
    collect the path's branch constraints, negate one, solve for a new
    input, re-execute.  Alternative paths wait on a pending list of
    constraint sets — exactly the structure reused by guided replay (§3.1).

    The engine is generic over the run function, so dynamic analysis and
    bug replay share it.

    With [~jobs] > 1 the pending frontier is drained by a pool of OCaml 5
    domains (the run function must then be safe to call concurrently — each
    call must build its own interpreter state).  [~jobs:1], the default, is
    the exact deterministic sequential loop.  An optional shared
    {!Solver.Cache} memoizes solver queries across pendings. *)

type budget = {
  max_runs : int;
  max_time_s : float;  (** wall-clock cut-off for the whole exploration *)
}

val default_budget : budget

type strategy =
  | Dfs  (** deepest pending first: follows a forced chain (guided replay) *)
  | Bfs
      (** oldest/shallowest pending first: generational search, best for
          coverage (dynamic analysis) *)

type run_result = {
  outcome : Interp.Crash.outcome;
  trace : Path.entry list;  (** in execution order *)
  observed : Solver.Model.t;
      (** effective concrete value of every symbolic input variable the run
          touched; seeds the solver for child pendings *)
}

type stats = {
  mutable runs : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable pending_peak : int;
  mutable elapsed_s : float;
  mutable timed_out : bool;
}

(** Print solver failures on pendings to stderr. *)
val debug_solver : bool ref

(** Explore paths until the budget is exhausted or [should_stop] returns
    true for a run.  Returns the statistics and, if stopped early, the
    model and result of the stopping run.

    [jobs] (default 1) sets the number of worker domains; with several
    workers the {!strategy} order becomes a priority hint and [run] must
    tolerate concurrent calls.  [on_run] and [should_stop] are always
    called with the engine's internal lock held, i.e. serialized, so they
    may keep plain mutable state.  [cache] memoizes solver queries across
    pendings (and is shared by all workers).

    [telemetry] (default disabled) wraps the exploration in an
    [engine.explore] span with one [engine.worker] child span per domain,
    times runs ([engine.run_s]) and the solver split, samples the frontier
    depth over time ([engine.frontier]) and accumulates the
    [engine.runs]/[sat]/[unsat]/[unknown]/[forks] counters. *)
val explore :
  vars:Solver.Symvars.t ->
  ?budget:budget ->
  ?strategy:strategy ->
  ?jobs:int ->
  ?cache:Solver.Cache.t ->
  ?telemetry:Telemetry.t ->
  run:(Solver.Model.t -> run_result) ->
  ?should_stop:(Solver.Model.t -> run_result -> bool) ->
  ?on_run:(Solver.Model.t -> run_result -> unit) ->
  unit ->
  stats * (Solver.Model.t * run_result) option

(** A {!stats} in the unified counter view (scope ["engine"]); the record
    stays for the bench tables. *)
val counters : stats -> Telemetry.Counters.snapshot
