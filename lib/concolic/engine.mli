(** The concolic exploration engine.

    Implements the paper's §2.1 search: execute with concrete inputs,
    collect the path's branch constraints, negate one, solve for a new
    input, re-execute.  Alternative paths wait on a pending list of
    constraint sets — exactly the structure reused by guided replay (§3.1).

    The engine is generic over the run function, so dynamic analysis and
    bug replay share it.

    With [~jobs] > 1 the pending frontier is drained by a pool of OCaml 5
    domains (the run function must then be safe to call concurrently — each
    call must build its own interpreter state).  [~jobs:1], the default, is
    the exact deterministic sequential loop.  An optional shared
    {!Solver.Cache} memoizes solver queries across pendings.

    With [~steal] (default true) each worker owns a deque and steals from
    its siblings when it drains: children of a run land on the worker's own
    deque, so local work extends its own recent traces — the lineage
    affinity that keeps the per-worker incremental solver scope warm.
    [~steal:false] restores the single mutex-protected frontier.  Both
    disciplines produce jobs-invariant result *sets* on exhausted
    frontiers; visit order differs.

    Passing [~incr] (a shared {!Solver.Incr.t}) turns on incremental
    solving: learned-core pruning, scope reuse across sibling pendings and
    the two-strategy portfolio.  Verdicts are unchanged (fuzz-enforced);
    models — and therefore which of several equivalent witnesses is found
    first — may differ from the from-scratch solver's. *)

type budget = {
  max_runs : int;
  max_time_s : float;  (** wall-clock cut-off for the whole exploration *)
}

val default_budget : budget

type strategy =
  | Dfs  (** deepest pending first: follows a forced chain (guided replay) *)
  | Bfs
      (** oldest/shallowest pending first: generational search, best for
          coverage (dynamic analysis) *)

type run_result = {
  outcome : Interp.Crash.outcome;
  trace : Path.entry list;  (** in execution order *)
  observed : Solver.Model.t;
      (** effective concrete value of every symbolic input variable the run
          touched; seeds the solver for child pendings *)
}

type stats = {
  mutable runs : int;
  mutable sat : int;
  mutable unsat : int;
  mutable unknown : int;
  mutable pending_peak : int;
  mutable elapsed_s : float;
  mutable timed_out : bool;
  mutable forks : int;  (** pendings pushed onto the frontier *)
  mutable core_pruned : int;
      (** pendings answered Unsat by a learned core, no solver call.  On an
          exhausted frontier [sat + unsat + unknown + core_pruned = forks]. *)
  mutable solved_incremental : int;
      (** solver calls that reused >= 1 scope frame *)
  mutable solver_calls : int;  (** calls that reached the incremental solver *)
  mutable steals : int;  (** pendings taken from another worker's deque *)
  mutable worker_runs : int array;
      (** per-worker run counts (length [jobs]; the seeding run counts
          toward worker 0); the sum always equals [runs] *)
}

(** Batch-level steal accounting, mirroring {!Solver.Incr.totals}:
    [reset_steal_total] zeroes a process-wide counter and [steal_total]
    reads the steals accumulated by every exploration since — benches use
    the pair around replays whose per-explore stats are buried inside
    {!Replay.Guided} or {!Triage.Sched}. *)
val reset_steal_total : unit -> unit

val steal_total : unit -> int

(** Print solver failures on pendings to stderr. *)
val debug_solver : bool ref

(** Explore paths until the budget is exhausted or [should_stop] returns
    true for a run.  Returns the statistics and, if stopped early, the
    model and result of the stopping run.

    [jobs] (default 1) sets the number of worker domains; with several
    workers the {!strategy} order becomes a priority hint and [run] must
    tolerate concurrent calls.  [on_run] and [should_stop] are always
    called with the engine's internal lock held, i.e. serialized, so they
    may keep plain mutable state.  [cache] memoizes solver queries across
    pendings (and is shared by all workers).  [incr] enables incremental
    solving (each worker opens a private session); [steal] (default true)
    selects the sharded work-stealing frontier when [jobs] > 1 and is
    ignored at [jobs:1], which always runs the seed sequential loop.

    [telemetry] (default disabled) wraps the exploration in an
    [engine.explore] span with one [engine.worker] child span per domain,
    times runs ([engine.run_s]) and the solver split, samples the frontier
    depth over time ([engine.frontier]) and accumulates the
    [engine.runs]/[sat]/[unsat]/[unknown]/[forks] counters. *)
val explore :
  vars:Solver.Symvars.t ->
  ?budget:budget ->
  ?strategy:strategy ->
  ?jobs:int ->
  ?cache:Solver.Cache.t ->
  ?incr:Solver.Incr.t ->
  ?steal:bool ->
  ?telemetry:Telemetry.t ->
  run:(Solver.Model.t -> run_result) ->
  ?should_stop:(Solver.Model.t -> run_result -> bool) ->
  ?on_run:(Solver.Model.t -> run_result -> unit) ->
  unit ->
  stats * (Solver.Model.t * run_result) option

(** A {!stats} in the unified counter view (scope ["engine"]); the record
    stays for the bench tables. *)
val counters : stats -> Telemetry.Counters.snapshot
