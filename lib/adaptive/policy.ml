(** Per-cohort instrumentation policies (see policy.mli). *)

module Plan = Instrument.Plan
module Methods = Instrument.Methods

type level = Slice | Coarse | Focused | Full

let level_to_string = function
  | Slice -> "slice"
  | Coarse -> "coarse"
  | Focused -> "focused"
  | Full -> "full"

let level_of_string = function
  | "slice" -> Ok Slice
  | "coarse" -> Ok Coarse
  | "focused" -> Ok Focused
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown policy level %S" s)

let level_rank = function Slice -> 0 | Coarse -> 1 | Focused -> 2 | Full -> 3

let max_level a b = if level_rank a >= level_rank b then a else b

let escalate = function
  | Slice -> Coarse
  | Coarse -> Focused
  | Focused | Full -> Full

let de_escalate = function
  | Full -> Focused
  | Focused -> Coarse
  | Coarse | Slice -> Slice

type t = {
  cohort : string;
  level : level;
  base_meth : Methods.t;
  crash_fns : string list;
  branches : int list;
}

let norm_fns fns = List.sort_uniq String.compare fns

let expected_ids ~prog ~base_plan ~crash_fns level =
  let infos = (prog : Minic.Program.t).Minic.Program.branches in
  let n = Array.length infos in
  let crash_fns = norm_fns crash_fns in
  let in_slice i =
    List.mem infos.(i).Minic.Number.bfunc crash_fns
  in
  let keep i =
    match level with
    | Full -> true
    | Coarse -> Plan.is_instrumented base_plan i
    | Slice -> Plan.is_instrumented base_plan i && in_slice i
    | Focused -> Plan.is_instrumented base_plan i || in_slice i
  in
  List.filter keep (List.init n Fun.id)

let make ~prog ~base_plan ~cohort ~crash_fns level =
  let crash_fns = norm_fns crash_fns in
  {
    cohort;
    level;
    base_meth = base_plan.Plan.meth;
    crash_fns;
    branches = expected_ids ~prog ~base_plan ~crash_fns level;
  }

let with_level ~prog ~base_plan t level =
  {
    t with
    level;
    branches =
      expected_ids ~prog ~base_plan ~crash_fns:t.crash_fns level;
  }

let compile ~prog ~base_plan t =
  let n = Array.length (prog : Minic.Program.t).Minic.Program.branches in
  let instrumented = Array.make n false in
  List.iter (fun i -> instrumented.(i) <- true) t.branches;
  let meth = match t.level with Full -> Methods.All_branches | _ -> t.base_meth in
  let suppression =
    (* only Coarse provably instruments the exact set the base table was
       proven against; every other level drops it rather than ship an
       unproven refinement *)
    match (t.level, base_plan.Plan.suppression) with
    | Coarse, (Some _ as s) -> s
    | _ -> None
  in
  {
    Plan.meth;
    instrumented;
    n_instrumented = List.length t.branches;
    suppression;
    cohort = Some t.cohort;
  }

(* ------------------------------------------------------------------ *)

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let rec check_sorted_unique lo = function
  | [] -> true
  | i :: tl -> i >= lo && check_sorted_unique (i + 1) tl

let same_ids a b = List.equal Int.equal a b

let verify ~prog ~base_plan (t : t) (plan : Plan.t) =
  let ( let* ) = Result.bind in
  let infos = (prog : Minic.Program.t).Minic.Program.branches in
  let n = Array.length infos in
  let expected =
    expected_ids ~prog ~base_plan ~crash_fns:t.crash_fns t.level
  in
  let* () =
    if check_sorted_unique 0 t.branches then Ok ()
    else err "cohort %s: declared branch ids not sorted/unique" t.cohort
  in
  let* () =
    match List.find_opt (fun i -> i >= n) t.branches with
    | Some i -> err "cohort %s: branch id %d out of range (%d)" t.cohort i n
    | None -> Ok ()
  in
  let* () =
    if same_ids t.branches expected then Ok ()
    else
      err "cohort %s: declared %s set (%d ids) is not the derived set (%d ids)"
        t.cohort (level_to_string t.level)
        (List.length t.branches) (List.length expected)
  in
  let* () =
    if Array.length plan.Plan.instrumented = n then Ok ()
    else
      err "cohort %s: plan instruments %d branch slots, program has %d"
        t.cohort (Array.length plan.Plan.instrumented) n
  in
  let* () =
    if same_ids (Plan.instrumented_ids plan) expected then Ok ()
    else err "cohort %s: plan's instrumented set is not the derived set" t.cohort
  in
  let* () =
    if plan.Plan.n_instrumented = List.length expected then Ok ()
    else
      err "cohort %s: plan claims %d instrumented branches, derived %d"
        t.cohort plan.Plan.n_instrumented (List.length expected)
  in
  let* () =
    match plan.Plan.cohort with
    | Some c when String.equal c t.cohort -> Ok ()
    | Some c -> err "cohort %s: plan tagged for cohort %s" t.cohort c
    | None -> err "cohort %s: plan carries no cohort tag" t.cohort
  in
  let* () =
    let want =
      match t.level with Full -> Methods.All_branches | _ -> t.base_meth
    in
    if plan.Plan.meth = want then Ok ()
    else
      err "cohort %s: plan method %s, level %s requires %s" t.cohort
        (Methods.to_string plan.Plan.meth)
        (level_to_string t.level) (Methods.to_string want)
  in
  match plan.Plan.suppression with
  | None -> Ok ()
  | Some s -> (
      let* () =
        if t.level = Coarse then Ok ()
        else
          err "cohort %s: suppression table shipped at level %s (Coarse only)"
            t.cohort (level_to_string t.level)
      in
      let* () =
        match base_plan.Plan.suppression with
        | Some base
          when Staticanalysis.Suppression.to_table base
               = Staticanalysis.Suppression.to_table s ->
            Ok ()
        | Some _ -> err "cohort %s: suppression table is not the base plan's" t.cohort
        | None ->
            err "cohort %s: suppression table shipped but the base plan has none"
              t.cohort
      in
      match
        Staticanalysis.Suppression.verify ~instrumented:plan.Plan.instrumented
          prog
          (Staticanalysis.Suppression.to_table s)
      with
      | Ok () -> Ok ()
      | Error e -> err "cohort %s: suppression proof check failed: %s" t.cohort e)
