(** The closed adaptive deployment loop.

    Simulates rounds of a fleet deployment: each round compiles one
    verified {!Policy} plan per cohort, field-runs every cohort's
    workload under its plan, ships the (possibly torn) reports into a
    fresh run-bounded {!Triage.Service}, and turns the per-cluster
    replay verdicts back into next-round policy levels:

    - any not-reproduced representative (timed out, exhausted, failed to
      resolve) {e escalates} the cohort one level — more branches, more
      guidance;
    - every representative reproduced with zero [log_exhausted] bits
      {e de-escalates} one level — the logs carried more guidance than
      replay needed, so the cohort sheds observation cost;
    - reproduced but with [log_exhausted] > 0 {e holds} — replay ran off
      the end of a (torn or tight) log and still won; thinner logs would
      tip it over, richer ones are waste.

    Rounds are deterministic: same (config, seed) — byte-identical
    round summaries (no wall-clock fields; instruction-count overheads,
    run counts, run-bounded ladder rungs). *)

type cohort_spec = {
  name : string;  (** cohort tag carried by plans, reports and clusters *)
  program : string;  (** workload, resolved by {!Workloads.Report_gen.crash_base} *)
  meth : Instrument.Methods.t;  (** base §2.3 method ({!Policy.t.base_meth}) *)
  share : int;  (** reports this cohort ships per round *)
  torn_pct : float;  (** seeded fraction of its reports arriving torn *)
  tear_lost_hex : int option;
      (** absolute tail loss in hex chars for this cohort's torn reports
          (see {!Workloads.Report_gen.tear}): models the fixed unflushed
          buffer tail a crashing process drops, under which a denser log
          loses a shorter execution suffix — the reason escalation can
          rescue a torn cohort.  [None] tears shallow (97–99%). *)
}

(** The default fleet mix, one cohort per refinement rule: a dominant
    healthy mkdir cohort (de-escalates, overshoots to a failing slice,
    and is pinned back by the floor), a small uninstrumented mkdir
    canary (its coarse set is empty, so the loop must escalate it all
    the way to full detail), a healthy paste cohort (de-escalates to
    its slice and stays), and a µServer cohort whose reports all lose a
    short absolute log tail (reproduces off the salvaged prefix with
    [log_exhausted] > 0, so it holds). *)
val default_fleet : cohort_spec list

type config = {
  rounds : int;  (** deployment rounds to simulate *)
  seed : int;  (** master seed: tearing, replay, service *)
  fleet : cohort_spec list;
  pipeline : Bugrepro.Pipeline.Config.t;
  ladder : Concolic.Engine.budget list;
      (** run-bounded replay rungs per representative (wall-clock limits
          are stripped by the service's default [wall_rungs = false]) *)
  telemetry : Telemetry.t;
  trace : (string -> unit) option;  (** per-round narration sink *)
}

(** 3 rounds, seed 1, {!default_fleet}, default pipeline, a short
    two-rung run-bounded ladder, telemetry disabled, no trace. *)
val default_config : config

(** One cohort's slice of a round summary. *)
type cohort_round = {
  cr_name : string;
  cr_level : Policy.level;  (** level deployed this round *)
  cr_next : Policy.level;  (** level decided for the next round *)
  cr_reports : int;
  cr_torn : int;
  cr_bits : int;  (** branch bits shipped, summed over the cohort's reports *)
  cr_payload_bytes : int;  (** wire bytes shipped *)
  cr_overhead_pct : float;
      (** instruction cost vs the cohort's uninstrumented baseline, in
          percent (100.0 = free) *)
  cr_clusters : int;
  cr_reproduced : int;
  cr_timed_out : int;
  cr_exhausted : int;
  cr_failed : int;
  cr_log_exhausted : int;  (** §3.1 missing-bit events, summed over clusters *)
  cr_contradictions : int;  (** §3.1 case 2b + 3b, summed *)
  cr_runs : int;  (** replay engine runs, summed *)
}

type round_summary = {
  round : int;  (** 1-based *)
  cohorts : cohort_round list;  (** in fleet order *)
  total_reports : int;
  total_bits : int;
  total_payload_bytes : int;
  cohorts_refined : int;  (** cohorts whose level changed for the next round *)
}

type result = {
  rounds : round_summary list;
  converged : bool;  (** the last simulated round refined nothing *)
}

(** Simulate [config.rounds] deployment rounds.  Raises [Failure] if a
    compiled plan fails its {!Policy.verify} check (fail-closed: an
    unverified plan must never field-run) or a workload cannot be
    resolved.  Telemetry: bumps [adaptive.round], [adaptive.cohorts_refined]
    and [adaptive.bits_shipped] on [config.telemetry]. *)
val run : config -> result

(** Strict JSON (stable key order, no wall-clock fields — byte-identical
    across same-seed runs). *)
val round_to_json : round_summary -> string

val result_to_json : result -> string
