(** Per-cohort instrumentation policies for the adaptive deployment loop.

    A policy names one deployment cohort and the refinement level its
    plans are compiled at.  The level ladder trades observation cost for
    replay guidance exactly along the paper's axis:

    - {!Slice}: the cohort's base §2.3 branch set restricted to the
      crash-site slice (branches in the crashing functions) — the
      cheapest configuration that still guides replay through the code
      that actually crashed;
    - {!Coarse}: the base §2.3 method's set unchanged — the fleet-wide
      starting point of every deployment;
    - {!Focused}: the base set widened by {e every} branch in the
      crashing functions, whatever the base analysis labelled them;
    - {!Full}: every branch ([All_branches]) — the maximal-guidance
      setting reserved for cohorts whose reports keep failing to
      reproduce.

    Compilation ({!compile}) turns a policy into a concrete
    {!Instrument.Plan.t}; {!verify} re-derives the expected branch set
    from scratch and fail-closes on any disagreement — mirroring
    {!Staticanalysis.Suppression.verify}'s discipline, nothing unproven
    reaches a field run. *)

type level = Slice | Coarse | Focused | Full

val level_to_string : level -> string
val level_of_string : string -> (level, string) result

(** Ladder order: [Slice] (0) < [Coarse] < [Focused] < [Full] (3). *)
val level_rank : level -> int

val max_level : level -> level -> level

(** One step up / down the ladder, clamped at {!Full} / {!Slice}. *)
val escalate : level -> level
val de_escalate : level -> level

type t = {
  cohort : string;  (** deployment cohort the compiled plans are tagged with *)
  level : level;
  base_meth : Instrument.Methods.t;
      (** the §2.3 method anchoring {!Slice}/{!Coarse}/{!Focused} *)
  crash_fns : string list;
      (** crash-site slice: enclosing functions of the cohort's observed
          crash sites, sorted and deduplicated *)
  branches : int list;  (** instrumented branch ids, sorted ascending *)
}

(** Build a policy whose [branches] are derived from [prog] and
    [base_plan] at [level].  [base_plan] must be the §2.3 plan for
    [base_meth] over [prog]. *)
val make :
  prog:Minic.Program.t ->
  base_plan:Instrument.Plan.t ->
  cohort:string ->
  crash_fns:string list ->
  level ->
  t

(** Re-level an existing policy (re-deriving its branch set). *)
val with_level : prog:Minic.Program.t -> base_plan:Instrument.Plan.t -> t -> level -> t

(** The branch ids [level] instruments, sorted ascending — derived only
    from the program's branch table and the base plan, so two
    derivations can be compared bit for bit. *)
val expected_ids :
  prog:Minic.Program.t ->
  base_plan:Instrument.Plan.t ->
  crash_fns:string list ->
  level ->
  int list

(** Compile the policy into a deployable plan: instrumented set from
    [t.branches], method [All_branches] at {!Full} and [t.base_meth]
    otherwise, cohort-tagged.  The base plan's suppression table is
    carried {e only} at {!Coarse} (the only level whose instrumented set
    provably equals the set the table was proven against). *)
val compile :
  prog:Minic.Program.t -> base_plan:Instrument.Plan.t -> t -> Instrument.Plan.t

(** Fail-closed validity check, run before any compiled plan reaches a
    field run.  Re-derives the expected branch set from scratch and
    rejects: unsorted/duplicate/out-of-range declared ids, any
    disagreement between the declared set, the re-derived set and the
    plan's instrumented array, a wrong [n_instrumented], a missing or
    mismatched cohort tag, a method not matching the level, and any
    suppression table that is not the base plan's table at {!Coarse} or
    that fails {!Staticanalysis.Suppression.verify} against the plan's
    own instrumented set. *)
val verify :
  prog:Minic.Program.t ->
  base_plan:Instrument.Plan.t ->
  t ->
  Instrument.Plan.t ->
  (unit, string) result
