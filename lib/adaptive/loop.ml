(** The closed adaptive deployment loop (see loop.mli). *)

module Methods = Instrument.Methods
module Plan = Instrument.Plan
module Report = Instrument.Report
module Wire = Instrument.Wire
module Report_gen = Workloads.Report_gen
module Service = Triage.Service
module Sched = Triage.Sched
module Cluster = Triage.Cluster
module Fingerprint = Triage.Fingerprint

type cohort_spec = {
  name : string;
  program : string;
  meth : Methods.t;
  share : int;
  torn_pct : float;
  tear_lost_hex : int option;
}

let default_fleet =
  [
    {
      name = "mkdir-stable";
      program = "mkdir";
      meth = Methods.Static;
      share = 4;
      torn_pct = 0.0;
      tear_lost_hex = None;
    };
    {
      name = "mkdir-canary";
      program = "mkdir";
      meth = Methods.No_instrumentation;
      share = 2;
      torn_pct = 0.0;
      tear_lost_hex = None;
    };
    {
      name = "paste-stable";
      program = "paste";
      meth = Methods.Static;
      share = 6;
      torn_pct = 0.0;
      tear_lost_hex = None;
    };
    {
      name = "userver-stable";
      program = "userver-exp1";
      meth = Methods.Static;
      share = 5;
      torn_pct = 0.0;
      tear_lost_hex = None;
    };
    {
      name = "userver-torn";
      program = "userver-exp1";
      meth = Methods.Static;
      share = 1;
      torn_pct = 1.0;
      tear_lost_hex = Some 2;
    };
  ]

type config = {
  rounds : int;
  seed : int;
  fleet : cohort_spec list;
  pipeline : Bugrepro.Pipeline.Config.t;
  ladder : Concolic.Engine.budget list;
  telemetry : Telemetry.t;
  trace : (string -> unit) option;
}

let default_ladder =
  [
    { Concolic.Engine.max_runs = 24; max_time_s = infinity };
    { Concolic.Engine.max_runs = 96; max_time_s = infinity };
  ]

let default_config =
  {
    rounds = 3;
    seed = 1;
    fleet = default_fleet;
    pipeline = Bugrepro.Pipeline.Config.default;
    ladder = default_ladder;
    telemetry = Telemetry.disabled;
    trace = None;
  }

type cohort_round = {
  cr_name : string;
  cr_level : Policy.level;
  cr_next : Policy.level;
  cr_reports : int;
  cr_torn : int;
  cr_bits : int;
  cr_payload_bytes : int;
  cr_overhead_pct : float;
  cr_clusters : int;
  cr_reproduced : int;
  cr_timed_out : int;
  cr_exhausted : int;
  cr_failed : int;
  cr_log_exhausted : int;
  cr_contradictions : int;
  cr_runs : int;
}

type round_summary = {
  round : int;
  cohorts : cohort_round list;
  total_reports : int;
  total_bits : int;
  total_payload_bytes : int;
  cohorts_refined : int;
}

type result = { rounds : round_summary list; converged : bool }

(* ------------------------------------------------------------------ *)

type cohort_state = {
  spec : cohort_spec;
  prog : Minic.Program.t;
  base_plan : Plan.t;
  baseline_instr : int;
  mutable policy : Policy.t;
  mutable floor : Policy.level;
      (** lowest level the cohort may de-escalate to: raised to the
          escalation target whenever a level fails to reproduce, so the
          loop never walks back into a configuration it has already seen
          fail (kills slice/coarse ping-pong) *)
}

let trace_line config fmt =
  Printf.ksprintf
    (fun line -> match config.trace with Some f -> f line | None -> ())
    fmt

let crash_base gen (spec : cohort_spec) =
  match
    Report_gen.crash_base gen ~program:spec.program ~meth:spec.meth
  with
  | Ok r -> r
  | Error e -> failwith (Printf.sprintf "adaptive: cohort %s: %s" spec.name e)

(* the crash-site slice starts from where the cohort's workload actually
   crashes, observed once on the uninstrumented baseline run that also
   anchors every overhead figure *)
let setup_cohort config gen (spec : cohort_spec) : cohort_state =
  let prog, base_plan, scenario = crash_base gen spec in
  let nbranches = Minic.Program.nbranches prog in
  let none = Plan.make ~nbranches Methods.No_instrumentation in
  let baseline =
    Bugrepro.Pipeline.Run.field_run config.pipeline ~plan:none scenario
  in
  let crash_fns =
    match baseline.Instrument.Field_run.outcome with
    | Interp.Crash.Crash c -> [ c.Interp.Crash.in_func ]
    | o ->
        failwith
          (Printf.sprintf "adaptive: cohort %s: workload did not crash (%s)"
             spec.name
             (Interp.Crash.outcome_to_string o))
  in
  let policy =
    Policy.make ~prog ~base_plan ~cohort:spec.name ~crash_fns Policy.Coarse
  in
  {
    spec;
    prog;
    base_plan;
    baseline_instr = baseline.Instrument.Field_run.cost.Interp.Cost.instr;
    policy;
    floor = Policy.Slice;
  }

type replay_agg = {
  mutable a_clusters : int;
  mutable a_reproduced : int;
  mutable a_timed_out : int;
  mutable a_exhausted : int;
  mutable a_failed : int;
  mutable a_log_exhausted : int;
  mutable a_contradictions : int;
  mutable a_runs : int;
}

let zero_agg () =
  {
    a_clusters = 0;
    a_reproduced = 0;
    a_timed_out = 0;
    a_exhausted = 0;
    a_failed = 0;
    a_log_exhausted = 0;
    a_contradictions = 0;
    a_runs = 0;
  }

let observe_result agg (r : Sched.cluster_result) =
  agg.a_clusters <- agg.a_clusters + 1;
  (match r.Sched.status with
  | Sched.Reproduced _ -> agg.a_reproduced <- agg.a_reproduced + 1
  | Sched.Timed_out -> agg.a_timed_out <- agg.a_timed_out + 1
  | Sched.Exhausted -> agg.a_exhausted <- agg.a_exhausted + 1
  | Sched.Failed _ -> agg.a_failed <- agg.a_failed + 1);
  let c = r.Sched.cases in
  agg.a_log_exhausted <- agg.a_log_exhausted + c.Replay.Guided.log_exhausted;
  agg.a_contradictions <-
    agg.a_contradictions + c.Replay.Guided.case2b + c.Replay.Guided.case3b;
  agg.a_runs <- agg.a_runs + r.Sched.runs

(* the refinement rule (see loop.mli): escalate on any not-reproduced
   representative (raising the cohort's floor past the level that just
   failed), de-escalate — never below the floor — when replay never ran
   out of log bits, hold otherwise *)
let decide (st : cohort_state) (agg : replay_agg) : Policy.level =
  let level = st.policy.Policy.level in
  if agg.a_clusters = 0 then level
  else if agg.a_timed_out + agg.a_exhausted + agg.a_failed > 0 then begin
    let next = Policy.escalate level in
    st.floor <- Policy.max_level st.floor next;
    next
  end
  else if agg.a_log_exhausted = 0 then
    Policy.max_level st.floor (Policy.de_escalate level)
  else level

let run_round config gen states round : round_summary =
  let registry : (string, Minic.Program.t * Plan.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let rng = Osmodel.Rng.create ((config.seed * 1_000_003) + round) in
  (* compile + verify this round's per-cohort plans; an unverifiable plan
     aborts the deployment before any field run sees it *)
  let deployed =
    List.map
      (fun st ->
        let plan = Policy.compile ~prog:st.prog ~base_plan:st.base_plan st.policy in
        (match Policy.verify ~prog:st.prog ~base_plan:st.base_plan st.policy plan with
        | Ok () -> ()
        | Error e -> failwith (Printf.sprintf "adaptive: refusing to deploy: %s" e));
        Hashtbl.replace registry st.spec.name (st.prog, plan);
        (st, plan))
      states
  in
  (* field-run each cohort under its plan and ship [share] copies,
     tearing the configured fraction *)
  let shipped =
    List.map
      (fun (st, plan) ->
        let _, _, scenario = crash_base gen st.spec in
        let field, report =
          Bugrepro.Pipeline.Run.field_run_report config.pipeline ~plan scenario
        in
        let report =
          match report with
          | Some r -> r
          | None ->
              failwith
                (Printf.sprintf "adaptive: cohort %s: workload did not crash"
                   st.spec.name)
        in
        let wire = Wire.serialize report in
        let overhead =
          100.0
          *. float_of_int field.Instrument.Field_run.cost.Interp.Cost.instr
          /. float_of_int st.baseline_instr
        in
        let torn_permille = int_of_float (st.spec.torn_pct *. 1000.0) in
        let copies =
          List.init st.spec.share (fun i ->
              let torn = Osmodel.Rng.int rng 1000 < torn_permille in
              let text =
                if torn then
                  Report_gen.tear ?lost_hex:st.spec.tear_lost_hex rng wire
                else wire
              in
              let path =
                Printf.sprintf "%s/round-%d/r%02d.report" st.spec.name round i
              in
              (path, text, torn))
        in
        (st, Report.nbits report, overhead, copies))
      deployed
  in
  let total_reports =
    List.fold_left (fun n (_, _, _, c) -> n + List.length c) 0 shipped
  in
  let resolve (c : Cluster.t) =
    match c.Cluster.fp.Fingerprint.cohort with
    | Some name -> (
        match Hashtbl.find_opt registry name with
        | Some pp -> Ok pp
        | None -> Error (Printf.sprintf "unknown cohort %s" name))
    | None -> Error "report carries no cohort tag"
  in
  let svc_config =
    {
      Service.default_config with
      Service.policy =
        { Sched.default_policy with
          Sched.ladder = config.ladder;
          jobs = 1;
          seed = config.seed;
        };
      queue_capacity = total_reports + 8;
      eager = false;
    }
  in
  let svc =
    match
      Service.open_ ~config:svc_config ~telemetry:config.telemetry ~resolve ()
    with
    | Ok s -> s
    | Error e ->
        failwith
          (Printf.sprintf "adaptive: service: %s" (Triage.Index.error_to_string e))
  in
  List.iter
    (fun (st, _, _, copies) ->
      List.iter
        (fun (path, text, _) ->
          match Service.submit svc ~path text with
          | Service.Queued -> ()
          | Service.Dropped why ->
              failwith
                (Printf.sprintf "adaptive: cohort %s: report dropped: %s"
                   st.spec.name why)
          | Service.Rejected e ->
              failwith
                (Printf.sprintf "adaptive: cohort %s: report rejected: %s"
                   st.spec.name (Wire.error_to_string e)))
        copies)
    shipped;
  let _summary = Service.drain svc in
  let results = Service.cluster_results svc in
  Service.close svc;
  (* aggregate replay verdicts per cohort *)
  let aggs : (string, replay_agg) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r : Sched.cluster_result) ->
      let name =
        Option.value ~default:"(untagged)"
          r.Sched.cluster.Cluster.fp.Fingerprint.cohort
      in
      let agg =
        match Hashtbl.find_opt aggs name with
        | Some a -> a
        | None ->
            let a = zero_agg () in
            Hashtbl.add aggs name a;
            a
      in
      observe_result agg r)
    results;
  (* decide next-round levels and build the summary *)
  let cohorts =
    List.map
      (fun (st, bits, overhead, copies) ->
        let agg =
          Option.value ~default:(zero_agg ())
            (Hashtbl.find_opt aggs st.spec.name)
        in
        let level = st.policy.Policy.level in
        let next = decide st agg in
        if next <> level then
          st.policy <-
            Policy.with_level ~prog:st.prog ~base_plan:st.base_plan st.policy next;
        let payload =
          List.fold_left (fun n (_, text, _) -> n + String.length text) 0 copies
        in
        let torn = List.length (List.filter (fun (_, _, t) -> t) copies) in
        {
          cr_name = st.spec.name;
          cr_level = level;
          cr_next = next;
          cr_reports = List.length copies;
          cr_torn = torn;
          cr_bits = bits * List.length copies;
          cr_payload_bytes = payload;
          cr_overhead_pct = overhead;
          cr_clusters = agg.a_clusters;
          cr_reproduced = agg.a_reproduced;
          cr_timed_out = agg.a_timed_out;
          cr_exhausted = agg.a_exhausted;
          cr_failed = agg.a_failed;
          cr_log_exhausted = agg.a_log_exhausted;
          cr_contradictions = agg.a_contradictions;
          cr_runs = agg.a_runs;
        })
      shipped
  in
  let cohorts_refined =
    List.length (List.filter (fun c -> c.cr_next <> c.cr_level) cohorts)
  in
  {
    round;
    cohorts;
    total_reports;
    total_bits = List.fold_left (fun n c -> n + c.cr_bits) 0 cohorts;
    total_payload_bytes =
      List.fold_left (fun n c -> n + c.cr_payload_bytes) 0 cohorts;
    cohorts_refined;
  }

let run (config : config) : result =
  if config.rounds < 1 then invalid_arg "Adaptive.Loop.run: rounds must be >= 1";
  let gen = Report_gen.make ~quick:true ~config:config.pipeline () in
  let states = List.map (setup_cohort config gen) config.fleet in
  let rounds =
    List.init config.rounds (fun i ->
        let r = run_round config gen states (i + 1) in
        Telemetry.Metrics.incr_named config.telemetry "adaptive.round";
        Telemetry.Metrics.incr_named ~by:r.cohorts_refined config.telemetry
          "adaptive.cohorts_refined";
        Telemetry.Metrics.incr_named ~by:r.total_bits config.telemetry
          "adaptive.bits_shipped";
        trace_line config "round %d: %d reports, %d bits, %d cohorts refined"
          r.round r.total_reports r.total_bits r.cohorts_refined;
        List.iter
          (fun c ->
            trace_line config
              "  %-14s %-7s -> %-7s  bits %6d  overhead %6.1f%%  \
               repro %d/%d  runs %3d  exhausted-bits %d"
              c.cr_name
              (Policy.level_to_string c.cr_level)
              (Policy.level_to_string c.cr_next)
              c.cr_bits c.cr_overhead_pct c.cr_reproduced c.cr_clusters
              c.cr_runs c.cr_log_exhausted)
          r.cohorts;
        r)
  in
  let converged =
    match List.rev rounds with [] -> false | last :: _ -> last.cohorts_refined = 0
  in
  { rounds; converged }

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cohort_to_json (c : cohort_round) =
  Printf.sprintf
    "{\"name\":\"%s\",\"level\":\"%s\",\"next_level\":\"%s\",\"reports\":%d,\
     \"torn\":%d,\"bits_shipped\":%d,\"payload_bytes\":%d,\
     \"overhead_pct\":%.2f,\"clusters\":%d,\"reproduced\":%d,\
     \"timed_out\":%d,\"exhausted\":%d,\"failed\":%d,\"log_exhausted\":%d,\
     \"contradictions\":%d,\"runs\":%d}"
    (json_escape c.cr_name)
    (Policy.level_to_string c.cr_level)
    (Policy.level_to_string c.cr_next)
    c.cr_reports c.cr_torn c.cr_bits c.cr_payload_bytes c.cr_overhead_pct
    c.cr_clusters c.cr_reproduced c.cr_timed_out c.cr_exhausted c.cr_failed
    c.cr_log_exhausted c.cr_contradictions c.cr_runs

let round_to_json (r : round_summary) =
  Printf.sprintf
    "{\"round\":%d,\"cohorts\":[%s],\"total_reports\":%d,\"total_bits\":%d,\
     \"total_payload_bytes\":%d,\"cohorts_refined\":%d}"
    r.round
    (String.concat "," (List.map cohort_to_json r.cohorts))
    r.total_reports r.total_bits r.total_payload_bytes r.cohorts_refined

let result_to_json (t : result) =
  Printf.sprintf "{\"rounds\":[%s],\"converged\":%b}"
    (String.concat "," (List.map round_to_json t.rounds))
    t.converged
