#!/bin/sh
# Refresh the perf-gate baselines under bench/baselines/.
#
#   $ bin/refresh-baselines.sh            # 3 quick runs -> quick.json
#   $ RUNS=5 bin/refresh-baselines.sh     # more runs, tighter median
#
# The gate (`bench --compare bench/baselines/quick.json`) flags any
# time-like metric >25% above baseline, so baselines must be recorded on
# quiet hardware: this script runs the quick bench RUNS times and keeps
# the per-key MEDIAN, which drops one-off scheduler spikes that a single
# recording would bake into the gate.  Commit the refreshed file in the
# same PR as the intentional perf change and mention the reason in the
# commit message.
#
# Requires python3 for the median merge (the bench itself does not).

set -eu
if (set -o pipefail) 2>/dev/null; then
  set -o pipefail
fi

cd "$(dirname "$0")/.."

RUNS="${RUNS:-3}"
OUT="bench/baselines/quick.json"

if ! command -v python3 >/dev/null 2>&1; then
  echo "error: python3 is required for the median merge" >&2
  exit 1
fi

mkdir -p bench/baselines
TMPDIR_RUNS=$(mktemp -d /tmp/baseline-runs.XXXXXX)
trap 'rm -rf "$TMPDIR_RUNS"' EXIT

echo "== building =="
dune build bench/main.exe

i=1
while [ "$i" -le "$RUNS" ]; do
  echo "== baseline run $i/$RUNS (--quick --jobs 4) =="
  dune exec bench/main.exe -- --quick --jobs 4 --json "$TMPDIR_RUNS/run$i.json"
  i=$((i + 1))
done

echo "== merging $RUNS runs (per-key median) -> $OUT =="
python3 - "$OUT" "$TMPDIR_RUNS"/run*.json <<'EOF'
import json, statistics, sys

out_path, run_paths = sys.argv[1], sys.argv[2:]
runs = [json.load(open(p)) for p in run_paths]

# median of the experiment wall clocks, keyed by id
exp_ids = [e["id"] for e in runs[0]["experiments"]]
experiments = []
for eid in exp_ids:
    secs = [e["seconds"] for r in runs for e in r["experiments"] if e["id"] == eid]
    experiments.append({"id": eid, "seconds": round(statistics.median(secs), 6)})

# median of every (experiment, key) metric present in all runs; metrics
# only present in some runs (counters that depend on timing) keep the
# first run's value so the gate still has a row to diff against
metrics = []
for m in runs[0]["metrics"]:
    key = (m["experiment"], m["key"])
    vals = [x["value"] for r in runs for x in r["metrics"]
            if (x["experiment"], x["key"]) == key
            and isinstance(x["value"], (int, float))]
    merged = dict(m)
    if vals and isinstance(m["value"], (int, float)):
        med = statistics.median(vals)
        merged["value"] = round(med, 6) if isinstance(med, float) else med
    metrics.append(merged)

summary = dict(runs[0])
summary["experiments"] = experiments
summary["metrics"] = metrics
with open(out_path, "w") as f:
    json.dump(summary, f, indent=1)
    f.write("\n")
print(f"{out_path}: {len(experiments)} experiments, {len(metrics)} metrics "
      f"(median of {len(runs)} runs)")
EOF

echo "== self-check: current build passes against the fresh baseline =="
dune exec bench/main.exe -- --quick --jobs 4 --compare "$OUT"
echo "== baseline refreshed: $OUT =="
