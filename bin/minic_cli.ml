(* minic — run, inspect or analyse a MiniC source file from disk.

   $ minic run prog.c -- arg1 arg2        # execute (runtime library linked)
   $ minic check prog.c                   # parse + type check, list branches
   $ minic pretty prog.c                  # normalised pretty-printed source
   $ minic analyze prog.c -- testarg      # static + dynamic branch labels
   $ minic analyze prog.c --report        # + per-branch precision/provenance
   $ minic analyze prog.c --json          # precision report as JSON
   $ minic analyze prog.c --suppression-report
                                          # probe-elision verdict per branch
                                          # (+ --json for the strict JSON form)

   The simulated OS starts empty; give file inputs with --file path=contents
   and connection payloads with --conn data (repeatable).

   Exit codes: 0 ok, 1 compile/link or runtime failure, 2 usage,
   3 type error, 4 suppression proof-checker rejection or reconstruction
   parity failure. *)

let usage () =
  prerr_endline
    "usage: minic (run|check|pretty|analyze) FILE [--report] [--json] [--suppression-report] [--no-refine] [--file p=c] [--conn data] [-- args...]";
  exit 2

type opts = {
  mutable files : (string * string) list;
  mutable conns : string list;
  mutable args : string list;
  mutable report : bool;
  mutable json : bool;
  mutable suppression : bool;
  mutable refine : bool;
}

let parse_opts argv =
  let o =
    { files = []; conns = []; args = []; report = false; json = false;
      suppression = false; refine = true }
  in
  let rec go = function
    | [] -> ()
    | "--" :: rest ->
        o.args <- rest;
        ()
    | "--file" :: spec :: rest ->
        (match String.index_opt spec '=' with
        | Some i ->
            o.files <-
              o.files
              @ [
                  ( String.sub spec 0 i,
                    String.sub spec (i + 1) (String.length spec - i - 1) );
                ]
        | None -> usage ());
        go rest
    | "--conn" :: data :: rest ->
        o.conns <- o.conns @ [ data ];
        go rest
    | "--report" :: rest ->
        o.report <- true;
        go rest
    | "--json" :: rest ->
        o.json <- true;
        go rest
    | "--suppression-report" :: rest ->
        o.suppression <- true;
        go rest
    | "--no-refine" :: rest ->
        o.refine <- false;
        go rest
    | _ -> usage ()
  in
  go argv;
  o

let load file =
  match open_in_bin file with
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
  | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let compile file =
  match Workloads.Runtime_lib.link ~name:(Filename.remove_extension file) (load file) with
  | prog -> prog
  | exception Minic.Parser.Error (msg, loc) ->
      Printf.eprintf "%s: parse error: %s\n" (Minic.Loc.to_string loc) msg;
      exit 1
  | exception Minic.Lexer.Error (msg, loc) ->
      Printf.eprintf "%s: lex error: %s\n" (Minic.Loc.to_string loc) msg;
      exit 1
  | exception Minic.Program.Link_error msg ->
      Printf.eprintf "link error: %s\n" msg;
      exit 1
  | exception Minic.Typecheck.Error (msg, loc) ->
      Printf.eprintf "%s: type error: %s\n" (Minic.Loc.to_string loc) msg;
      exit 3

let () =
  match Array.to_list Sys.argv with
  | _ :: cmd :: file :: rest -> (
      let o = parse_opts rest in
      match cmd with
      | "check" ->
          let prog = compile file in
          Printf.printf "%s: OK — %d functions, %d branch locations\n" file
            (List.length prog.funcs)
            (Minic.Program.nbranches prog);
          Array.iter
            (fun (b : Minic.Number.info) ->
              Printf.printf "  b%03d %-5s %s (%s)\n" b.bid
                (Minic.Number.kind_to_string b.bkind)
                (Minic.Loc.to_string b.bloc) b.bfunc)
            prog.branches;
          exit 0
      | "pretty" ->
          let u = Minic.Parser.parse_unit ~file (load file) in
          print_endline (Minic.Pretty.unit_to_string u);
          exit 0
      | "run" ->
          let prog = compile file in
          let world =
            { Osmodel.World.default_config with files = o.files; conns = o.conns }
          in
          let _w, handle = Osmodel.World.kernel world in
          let r =
            Interp.Eval.run prog
              {
                Interp.Eval.inputs = Interp.Inputs.of_strings o.args;
                kernel = Interp.Kernel.of_world handle;
                hooks = Interp.Eval.no_hooks;
                max_steps = 100_000_000;
                scheduler = None;
              }
          in
          print_string r.output;
          Printf.eprintf "-> %s (%d steps)\n"
            (Interp.Crash.outcome_to_string r.outcome)
            r.steps;
          exit (match r.outcome with Interp.Crash.Exit n -> n land 0xff | _ -> 1)
      | "analyze" ->
          let prog = compile file in
          let world =
            { Osmodel.World.default_config with files = o.files; conns = o.conns }
          in
          let sc =
            Concolic.Scenario.make ~name:file ~args:o.args ~world prog
          in
          let dyn =
            Concolic.Dynamic.analyze
              ~budget:{ Concolic.Engine.max_runs = 100; max_time_s = 10.0 }
              sc
          in
          let sta = Staticanalysis.Static.analyze ~refine:o.refine prog in
          if o.suppression then begin
            (* probe-elision verdicts for the paper-default Dynamic_static
               plan, with the same proof check and reconstruction-parity
               self-check the pipeline applies before trusting a table *)
            let plan =
              Instrument.Plan.make
                ~nbranches:(Minic.Program.nbranches prog)
                ~dynamic:dyn.labels ~static:sta.labels
                Instrument.Methods.Dynamic_static
            in
            let instrumented = plan.Instrument.Plan.instrumented in
            let sup = Staticanalysis.Suppression.analyze ~instrumented prog in
            (match
               Staticanalysis.Suppression.verify ~instrumented prog
                 (Staticanalysis.Suppression.to_table sup)
             with
            | Ok () -> ()
            | Error msg ->
                Printf.eprintf "suppression proof-checker rejection: %s\n" msg;
                exit 4);
            (* parity self-check: the shadow log a suppressed field run
               reconstructs must equal a suppression-free run's log, bit
               for bit, with zero reconstruction mismatches *)
            let full = Instrument.Field_run.run ~plan sc in
            let elided =
              Instrument.Field_run.run ~shadow:true
                ~plan:(Instrument.Plan.with_suppression plan sup)
                sc
            in
            let full_log = full.Instrument.Field_run.branch_log in
            let parity_ok =
              elided.Instrument.Field_run.shadow_mismatches = 0
              &&
              match elided.Instrument.Field_run.shadow_log with
              | None -> false
              | Some sh ->
                  sh.Instrument.Branch_log.nbits
                  = full_log.Instrument.Branch_log.nbits
                  && sh.Instrument.Branch_log.bytes
                     = full_log.Instrument.Branch_log.bytes
            in
            if o.json then begin
              let extra =
                Printf.sprintf
                  ",\"parity\":{\"ok\":%b,\"elided_execs\":%d,\"mismatches\":%d,\"full_bits\":%d,\"suppressed_bits\":%d}"
                  parity_ok elided.Instrument.Field_run.n_elided
                  elided.Instrument.Field_run.shadow_mismatches
                  full_log.Instrument.Branch_log.nbits
                  elided.Instrument.Field_run.branch_log
                    .Instrument.Branch_log.nbits
              in
              print_endline
                (Staticanalysis.Suppression.report_to_json ~extra sup prog
                   ~instrumented)
            end
            else begin
              print_string
                (Staticanalysis.Suppression.report_to_text ~all:o.report sup
                   prog ~instrumented);
              Printf.printf
                "parity: %s — %d elided executions, %d mismatches, %d bits \
                 full vs %d suppressed\n"
                (if parity_ok then "ok" else "FAILED")
                elided.Instrument.Field_run.n_elided
                elided.Instrument.Field_run.shadow_mismatches
                full_log.Instrument.Branch_log.nbits
                elided.Instrument.Field_run.branch_log
                  .Instrument.Branch_log.nbits
            end;
            exit (if parity_ok then 0 else 4)
          end;
          if o.json then begin
            (* machine-readable output only: the precision report *)
            let rep = Staticanalysis.Static.precision sta prog ~dynamic:dyn.labels in
            print_endline (Staticanalysis.Precision.to_json rep);
            exit (if rep.n_missed > 0 then 1 else 0)
          end;
          Printf.printf
            "dynamic: %d runs, %.0f%% coverage; static: %d symbolic of %d (%d \
             const-proved, %d dead)\n"
            dyn.runs (100.0 *. dyn.coverage) sta.n_symbolic
            (Minic.Program.nbranches prog)
            sta.n_const_proved sta.n_dead_proved;
          Array.iter
            (fun (b : Minic.Number.info) ->
              Printf.printf "  b%03d %-28s dynamic=%-9s static=%s\n" b.bid
                (Minic.Loc.to_string b.bloc)
                (Minic.Label.to_string dyn.labels.(b.bid))
                (Minic.Label.to_string sta.labels.(b.bid)))
            prog.branches;
          if o.report then begin
            let rep = Staticanalysis.Static.precision sta prog ~dynamic:dyn.labels in
            print_newline ();
            print_string (Staticanalysis.Precision.to_text rep);
            exit (if rep.n_missed > 0 then 1 else 0)
          end;
          exit 0
      | _ -> usage ())
  | _ -> usage ()
