#!/bin/sh
# Tier-1 gate: everything that must pass before a commit.  CI runs this
# same script, so a green local run means a green required CI job.
#
#   $ bin/check.sh            # full build + tests (+ fmt if available)
#   $ bin/check.sh --quick    # also run the bench smoke pass (--quick,
#                             # --jobs 4) and validate its JSON summary,
#                             # plus a seeded 200-case differential fuzz
#                             # smoke (bugrepro fuzz), the checked-in
#                             # corpus replay, a probe-elision smoke
#                             # (elided > 0 + reconstruction parity on the
#                             # walkthrough program), a triage smoke
#                             # over a generated batch with duplicates and
#                             # torn tails (strict JSON summary validated),
#                             # an encoding smoke (the same loop-heavy demo
#                             # saved with the wire-v4 online codec on and
#                             # off: encoded strictly smaller, identical
#                             # reproduction, non-payload lines identical),
#                             # a triage-service smoke (seeded loadgen
#                             # burst through `bugrepro serve` with a
#                             # bounded queue, snapshot JSON validated),
#                             # and an adaptive smoke (two closed-loop
#                             # deployment rounds: round 1 refines, round
#                             # 2 ships fewer bits, JSON validated)
#
# FUZZ_COUNT overrides the smoke's case count (the nightly CI lane sets
# it to a few thousand); FUZZ_SEED overrides the campaign seed.
#
# Fails fast with the failing step's output; correct non-zero exit codes
# even under pipelines (pipefail where the shell supports it).

set -eu
# pipefail is not POSIX; enable it when the shell has it so a failing
# command on the left of a pipe still fails the script
if (set -o pipefail) 2>/dev/null; then
  set -o pipefail
fi

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *)
      echo "usage: bin/check.sh [--quick]" >&2
      exit 2
      ;;
  esac
done

if ! command -v dune >/dev/null 2>&1; then
  echo "error: dune not found on PATH — install the OCaml toolchain" \
       "(opam install dune) or enter the right opam switch" >&2
  exit 1
fi

echo "== PRNG hygiene (no global Random in lib/ or bench/) =="
# all randomness must flow through the seeded, splittable Osmodel.Rng
# stream — stdlib Random is process-global state that breaks replayable
# seeds (rng.ml itself is the one place allowed to reference it, in docs)
if grep -rn --include='*.ml' --include='*.mli' -E '\bRandom\.' lib bench \
     | grep -v 'lib/osmodel/rng\.'; then
  echo "error: global Random usage found; use Osmodel.Rng instead" >&2
  exit 1
fi

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

if [ "$QUICK" = 1 ]; then
  echo "== bench smoke (--quick --jobs 4 --json --trace) =="
  JSON=$(mktemp /tmp/bench-smoke.XXXXXX.json)
  TRACE=$(mktemp /tmp/bench-trace.XXXXXX.jsonl)
  # --trace makes the bench self-validate the span stream on exit (every
  # span closed, start <= end, parent ids resolving) and fail otherwise
  dune exec bench/main.exe -- --quick --jobs 4 --json "$JSON" --trace "$TRACE"
  # the summary and every trace line must be strict JSON (CI parses them)
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$JSON"
    echo "bench JSON summary OK: $JSON"
    python3 -c "import json, sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]" "$TRACE"
    echo "bench trace JSONL OK: $TRACE"
  else
    echo "python3 not found; skipping JSON validation of $JSON and $TRACE"
  fi
fi

if [ "$QUICK" = 1 ]; then
  FUZZ_SEED="${FUZZ_SEED:-42}"
  FUZZ_COUNT="${FUZZ_COUNT:-200}"
  echo "== differential fuzz smoke (seed $FUZZ_SEED, $FUZZ_COUNT cases) =="
  # any violation is shrunk to a minimal repro and saved under
  # ./fuzz-failures (CI uploads that directory as an artifact on failure)
  dune exec bin/bugrepro_cli.exe -- fuzz --seed "$FUZZ_SEED" \
    --count "$FUZZ_COUNT" --shrink || {
      echo "fuzz smoke FAILED; shrunk repros:" >&2
      ls fuzz-failures 2>/dev/null >&2 || true
      exit 1
    }
  echo "== corpus replay (test/corpus + known repros) =="
  dune exec bin/bugrepro_cli.exe -- fuzz --corpus test/corpus --thorough
  dune exec bin/bugrepro_cli.exe -- fuzz --corpus test/corpus/known --thorough

  echo "== suppression smoke (elision + reconstruction parity) =="
  # the probe-elision walkthrough must elide probes AND reconstruct the
  # exact suppression-free log (the CLI exits 4 on proof-checker rejection
  # or parity failure); CI uploads the JSON report as an artifact
  SUPJSON=$(mktemp /tmp/suppression-report.XXXXXX.json)
  dune exec bin/minic_cli.exe -- analyze examples/suppression_demo.mc \
    --suppression-report --json -- abc > "$SUPJSON"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$SUPJSON" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))["summary"]
assert s["elided"] > 0, "nothing elided in the walkthrough"
assert s["parity"]["ok"], "reconstruction parity failed"
assert s["parity"]["suppressed_bits"] < s["parity"]["full_bits"], \
    "suppression saved no bits"
EOF
    echo "suppression JSON report OK: $SUPJSON"
  else
    echo "python3 not found; skipping JSON validation of $SUPJSON"
  fi

  echo "== triage smoke (batch with duplicates + torn tails) =="
  # a tiny generated batch: duplicates must collapse (dedup < 1), the torn
  # reports must come through the salvage path, and the summary must be
  # strict JSON (CI parses and uploads it)
  BATCH=$(mktemp -d /tmp/triage-batch.XXXXXX)
  SUMMARY=$(mktemp /tmp/triage-summary.XXXXXX.json)
  dune exec bin/bugrepro_cli.exe -- batch "$BATCH" --count 8 --seed 7 --torn 2
  dune exec bin/bugrepro_cli.exe -- triage "$BATCH" --jobs 4 --json "$SUMMARY"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$SUMMARY" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["salvaged"] > 0, "no report came through the salvage path"
assert s["dedup_ratio"] < 1.0, "duplicates did not collapse"
assert s["counts"]["timed_out"] == 0, "a cluster timed out in the smoke"
EOF
    echo "triage JSON summary OK: $SUMMARY"
  else
    echo "python3 not found; skipping JSON validation of $SUMMARY"
  fi

  echo "== encoding smoke (wire-v4 online codec A/B) =="
  # the same loop-heavy demo run saved with the online encoder on and
  # off: both must reproduce (exit 0), the encoded wire must carry a
  # [branch-enc] payload and be strictly smaller than the raw wire, and
  # every non-payload line must be byte-identical — the codec changes
  # how the bits ship, never what is shipped alongside them
  ENCW=$(mktemp /tmp/report-enc.XXXXXX)
  RAWW=$(mktemp /tmp/report-raw.XXXXXX)
  dune exec bin/bugrepro_cli.exe -- demo userver --method dynamic+static \
    --save "$ENCW" > /dev/null
  dune exec bin/bugrepro_cli.exe -- demo userver --method dynamic+static \
    --no-encode --save "$RAWW" > /dev/null
  grep -q '^branch-enc: ' "$ENCW" || {
    echo "error: encoded report lacks a branch-enc payload" >&2; exit 1; }
  grep -q '^branch-log: ' "$RAWW" || {
    echo "error: --no-encode report lacks a branch-log payload" >&2; exit 1; }
  ENC_B=$(wc -c < "$ENCW"); RAW_B=$(wc -c < "$RAWW")
  if [ "$ENC_B" -ge "$RAW_B" ]; then
    echo "error: encoded wire ($ENC_B B) not smaller than raw ($RAW_B B)" \
         "on a loop-heavy workload" >&2
    exit 1
  fi
  grep -v '^branch-enc: ' "$ENCW" > "$ENCW.rest"
  grep -v '^branch-log: ' "$RAWW" > "$RAWW.rest"
  if ! cmp -s "$ENCW.rest" "$RAWW.rest"; then
    echo "error: encode on/off changed a non-payload wire line" >&2
    exit 1
  fi
  echo "encoding smoke OK: $ENC_B B encoded < $RAW_B B raw, rest identical"

  echo "== triage-service smoke (streaming serve + seeded loadgen) =="
  # a seeded burst through the long-running service: the bounded queue
  # must shed deterministically (the burst overflows capacity 24), torn
  # reports ride the salvage path, and the snapshot renders as strict
  # JSON.  Exit 0/1 are fine (1 = a replay ladder expired under load);
  # exit 5 means ingestion stalled — a queue deadlock — and fails here
  SNAP=$(mktemp /tmp/serve-snapshot.XXXXXX.json)
  SERVE_EXIT=0
  dune exec bin/bugrepro_cli.exe -- serve --generate 60 --torn-pct 0.08 \
    --seed 7 --queue 24 --drop drop-oldest -j 2 --deadline 20 \
    --snapshot "$SNAP" > /dev/null || SERVE_EXIT=$?
  if [ "$SERVE_EXIT" -gt 1 ]; then
    echo "error: serve smoke exited $SERVE_EXIT (5 = ingestion stall /" \
         "queue deadlock)" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$SNAP" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["processed"] > 0, "the service processed nothing"
assert s["queued"] == 0, "reports stuck in the queue after drain"
assert s["dedup_ratio"] < 1.0, "duplicates did not collapse"
assert s["dropped"] > 0, "the capacity-24 queue never shed under the burst"
EOF
    echo "serve snapshot JSON OK: $SNAP"
  else
    echo "python3 not found; skipping JSON validation of $SNAP"
  fi

  echo "== adaptive smoke (closed-loop deployment, 2 rounds) =="
  # two deployment rounds of the default fleet: round 1 must refine at
  # least one cohort (the loop is doing something) and round 2 must ship
  # strictly fewer branch bits than round 1 (the healthy cohorts
  # de-escalated); the round summary must be strict JSON (CI uploads it)
  ADAPT=$(mktemp /tmp/adapt-rounds.XXXXXX.json)
  dune exec bin/bugrepro_cli.exe -- adapt --rounds 2 --seed 1 \
    --json "$ADAPT" > /dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$ADAPT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))["rounds"]
assert len(r) == 2, "expected two simulated rounds"
assert r[0]["cohorts_refined"] > 0, "round 1 refined no cohort"
assert r[1]["total_bits"] < r[0]["total_bits"], \
    "round 2 did not shed observation cost"
EOF
    echo "adaptive round-summary JSON OK: $ADAPT"
  else
    echo "python3 not found; skipping JSON validation of $ADAPT"
  fi
fi

echo "== all checks passed =="
