#!/bin/sh
# Tier-1 gate: everything that must pass before a commit.  CI runs this
# same script, so a green local run means a green required CI job.
#
#   $ bin/check.sh            # full build + tests (+ fmt if available)
#   $ bin/check.sh --quick    # also run the bench smoke pass (--quick,
#                             # --jobs 4) and validate its JSON summary
#
# Fails fast with the failing step's output; correct non-zero exit codes
# even under pipelines (pipefail where the shell supports it).

set -eu
# pipefail is not POSIX; enable it when the shell has it so a failing
# command on the left of a pipe still fails the script
if (set -o pipefail) 2>/dev/null; then
  set -o pipefail
fi

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *)
      echo "usage: bin/check.sh [--quick]" >&2
      exit 2
      ;;
  esac
done

if ! command -v dune >/dev/null 2>&1; then
  echo "error: dune not found on PATH — install the OCaml toolchain" \
       "(opam install dune) or enter the right opam switch" >&2
  exit 1
fi

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

if [ "$QUICK" = 1 ]; then
  echo "== bench smoke (--quick --jobs 4 --json --trace) =="
  JSON=$(mktemp /tmp/bench-smoke.XXXXXX.json)
  TRACE=$(mktemp /tmp/bench-trace.XXXXXX.jsonl)
  # --trace makes the bench self-validate the span stream on exit (every
  # span closed, start <= end, parent ids resolving) and fail otherwise
  dune exec bench/main.exe -- --quick --jobs 4 --json "$JSON" --trace "$TRACE"
  # the summary and every trace line must be strict JSON (CI parses them)
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$JSON"
    echo "bench JSON summary OK: $JSON"
    python3 -c "import json, sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]" "$TRACE"
    echo "bench trace JSONL OK: $TRACE"
  else
    echo "python3 not found; skipping JSON validation of $JSON and $TRACE"
  fi
fi

echo "== all checks passed =="
