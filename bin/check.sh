#!/bin/sh
# Tier-1 gate: everything that must pass before a commit.
#
#   $ bin/check.sh
#
# Runs the full build (including examples and benches), the test suites,
# and — when ocamlformat is installed — the formatting check.  Fails fast
# with the failing step's output.

set -e
cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== all checks passed =="
