(* bugrepro — command-line driver for the bundled workloads.

   $ bugrepro list
   $ bugrepro show paste
   $ bugrepro run paste -- -d , one two
   $ bugrepro demo paste --method dynamic+static
   $ bugrepro demo userver --experiment 3 --method static *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Workload registry *)

type workload = {
  wname : string;
  prog : unit -> Minic.Program.t;
  describe : string;
  demo_crash : int -> Concolic.Scenario.t;  (** experiment number -> scenario *)
  demo_test : unit -> Concolic.Scenario.t;  (** analysis scenario *)
  experiments : string list;
}

let coreutils_workload util =
  let e = Workloads.Coreutils.find util in
  {
    wname = util;
    prog = (fun () -> Lazy.force e.prog);
    describe = e.bug_description;
    demo_crash = (fun _ -> Workloads.Coreutils.crash_scenario e);
    demo_test = (fun () -> Workloads.Coreutils.analysis_scenario e);
    experiments = [ "1: " ^ e.bug_description ];
  }

let userver_workload =
  {
    wname = "userver";
    prog = (fun () -> Lazy.force Workloads.Userver.prog);
    describe = "event-driven web server (µServer analogue, §5.3)";
    demo_crash =
      (fun n -> Workloads.Userver.experiment_scenario (Workloads.Userver.experiment n));
    demo_test =
      (fun () ->
        Workloads.Userver.scenario ~name:"userver-test"
          (Workloads.Http_gen.workload 8));
    experiments =
      List.map
        (fun (e : Workloads.Userver.experiment) ->
          Printf.sprintf "%d: %s" e.id e.description)
        Workloads.Userver.experiments;
  }

let diff_workload =
  {
    wname = "diff";
    prog = (fun () -> Lazy.force Workloads.Diffutil.prog);
    describe = "line differ (input-intensive, §5.4)";
    demo_crash =
      (fun n ->
        if n <= 1 then Workloads.Diffutil.experiment_1 ()
        else Workloads.Diffutil.experiment_2 ());
    demo_test = (fun () -> Workloads.Diffutil.experiment_1 ());
    experiments = [ "1: small file pair"; "2: larger file pair" ];
  }

let mtrace_workload =
  {
    wname = "mtrace";
    prog = (fun () -> Lazy.force Workloads.Mtrace.prog);
    describe = "multithreaded scanner with a check-then-act race (§6)";
    demo_crash = (fun _ -> Workloads.Mtrace.scenario ~seed:3 ());
    demo_test = (fun () -> Workloads.Mtrace.benign_scenario ());
    experiments = [ "1: alert-log overflow under adversarial schedule" ];
  }

let workloads =
  List.map coreutils_workload [ "mkdir"; "mknod"; "mkfifo"; "paste" ]
  @ [ userver_workload; diff_workload; mtrace_workload ]

let find_workload name =
  match List.find_opt (fun w -> String.equal w.wname name) workloads with
  | Some w -> Ok w
  | None ->
      Error
        (Printf.sprintf "unknown workload %s (known: %s)" name
           (String.concat ", " (List.map (fun w -> w.wname) workloads)))

let method_of_string = function
  | "dynamic" -> Ok Instrument.Methods.Dynamic
  | "static" -> Ok Instrument.Methods.Static
  | "dynamic+static" | "combined" -> Ok Instrument.Methods.Dynamic_static
  | "all" | "all-branches" -> Ok Instrument.Methods.All_branches
  | "none" -> Ok Instrument.Methods.No_instrumentation
  | s -> Error (Printf.sprintf "unknown method %s" s)

(* ------------------------------------------------------------------ *)
(* Commands *)

let list_cmd () =
  List.iter
    (fun w ->
      Printf.printf "%-8s %s\n" w.wname w.describe;
      List.iter (fun e -> Printf.printf "         exp %s\n" e) w.experiments)
    workloads;
  0

let show_cmd name =
  match find_workload name with
  | Error e ->
      prerr_endline e;
      2
  | Ok w ->
      let p = w.prog () in
      Printf.printf
        "%s: %d branch locations (%d application, %d library), %d functions\n"
        w.wname (Minic.Program.nbranches p)
        (Minic.Program.app_branch_count p)
        (Minic.Program.lib_branch_count p)
        (List.length p.funcs);
      List.iter
        (fun (f : Minic.Ast.func) ->
          if not f.fis_lib then
            Printf.printf "  %s(%s)\n" f.fname
              (String.concat ", " (List.map fst f.fparams)))
        p.funcs;
      0

let run_cmd name args =
  match find_workload name with
  | Error e ->
      prerr_endline e;
      2
  | Ok w ->
      let prog = w.prog () in
      let sc = Concolic.Scenario.make ~name ~args prog in
      let _w, handle = Osmodel.World.kernel sc.world in
      let r =
        Interp.Eval.run prog
          {
            Interp.Eval.inputs = Interp.Inputs.of_strings args;
            kernel = Interp.Kernel.of_world handle;
            hooks = Interp.Eval.no_hooks;
            max_steps = sc.max_steps;
      scheduler = None;
          }
      in
      print_string r.output;
      Printf.printf "-> %s (%d steps)\n" (Interp.Crash.outcome_to_string r.outcome)
        r.steps;
      (match r.outcome with Interp.Crash.Exit n -> n | _ -> 1)

(* The analyse -> plan -> field-run -> report -> replay pipeline of the
   demo command, driven by one [Pipeline.Config.t]. *)
let demo_pipeline w meth experiment timeout save jobs no_solver_cache cfg =
  let prog = w.prog () in
  Printf.printf "== analysing %s ==\n%!" w.wname;
  let analysis =
    Bugrepro.Pipeline.Run.analyze cfg ~test_scenario:(w.demo_test ()) prog
  in
  let plan = Bugrepro.Pipeline.Run.plan cfg analysis meth in
  Printf.printf "method %s instruments %d/%d branch locations\n%!"
    (Instrument.Methods.to_string meth)
    plan.n_instrumented
    (Minic.Program.nbranches prog);
  Printf.printf "== field run (experiment %d) ==\n%!" experiment;
  let crash_sc = w.demo_crash experiment in
  let field, report = Bugrepro.Pipeline.Run.field_run_report cfg ~plan crash_sc in
  Printf.printf "outcome: %s\n%!" (Interp.Crash.outcome_to_string field.outcome);
  match report with
  | None ->
      print_endline "no crash, nothing to report";
      0
  | Some report -> (
      Printf.printf "report: %s\n" (Instrument.Report.describe report);
      (* ship the report through its wire form (and optionally to disk):
         the developer-side replay below works from the parsed copy *)
      let wire = Instrument.Wire.serialize report in
      (match save with
      | Some path ->
          let oc = open_out path in
          output_string oc wire;
          close_out oc;
          Printf.printf "wire form written to %s (%d bytes)\n" path
            (String.length wire)
      | None -> ());
      match Instrument.Wire.deserialize_v wire with
      | Error (Instrument.Wire.Unknown_version v) ->
          (* exit 4: the report names a newer wire format — upgrade the
             tool; distinct from corruption (see the man page) *)
          Printf.eprintf
            "report format version %d not supported (max %d): upgrade bugrepro\n"
            v Instrument.Wire.version;
          4
      | Error (Instrument.Wire.Malformed e) ->
          (* exit 3: corrupt report, mirroring minic_cli's exit-code-3
             convention for type errors *)
          Printf.eprintf "malformed report: %s\n" e;
          3
      | Ok report ->
      Printf.printf
        "== guided replay (budget %.0fs, %d job%s, cache %s, incremental %s) ==\n%!"
        timeout jobs
        (if jobs = 1 then "" else "s")
        (if no_solver_cache then "off" else "on")
        (if cfg.Bugrepro.Pipeline.Config.incremental then "on" else "off");
      let result, stats = Bugrepro.Pipeline.Run.reproduce cfg ~prog ~plan report in
      Printf.printf
        "cases: %d pinned (2a), %d forced (2b), %d free symbolic (1), %d concrete-mismatch (3b)\n"
        stats.cases.case2a stats.cases.case2b stats.cases.case1
        stats.cases.case3b;
      (match stats.cache with
      | Some c ->
          Printf.printf
            "solver cache: %d hits / %d misses (%.0f%% hit rate), %d evictions\n"
            c.hits c.misses
            (100.0 *. Solver.Cache.hit_rate c)
            c.evictions
      | None -> ());
      match result with
      | Replay.Guided.Reproduced r ->
          Printf.printf "REPRODUCED in %.3fs after %d runs at %s\n" r.elapsed_s
            r.runs
            (Interp.Crash.to_string r.crash);
          0
      | Replay.Guided.Not_reproduced r ->
          Printf.printf "NOT reproduced (%d runs, %.1fs, timed out: %b)\n" r.runs
            r.elapsed_s r.timed_out;
          1)

(* Telemetry plumbing shared by demo and fuzz: --trace streams JSONL to a
   file while the pipeline runs, --metrics buffers the events for the
   final span tree and counter table; without either the handle is the
   shared no-op [Telemetry.disabled].  [finish] publishes the counters,
   flushes, closes the trace file and prints the metrics report. *)
let make_telemetry trace metrics =
  let trace_oc = Option.map open_out trace in
  let mem = if metrics then Some (Telemetry.Sink.memory ()) else None in
  let tel =
    match trace_oc, mem with
    | None, None -> Telemetry.disabled
    | Some oc, None -> Telemetry.create ~sink:(Telemetry.Sink.jsonl oc) ()
    | None, Some (s, _) -> Telemetry.create ~sink:s ()
    | Some oc, Some (s, _) ->
        Telemetry.create
          ~sink:(Telemetry.Sink.tee (Telemetry.Sink.jsonl oc) s)
          ()
  in
  let finish () =
    Telemetry.Metrics.publish tel;
    Telemetry.flush tel;
    (match trace_oc with
    | Some oc ->
        close_out oc;
        Printf.printf "trace written to %s\n" (Option.get trace)
    | None -> ());
    match mem with
    | Some (_, events) ->
        let evs = events () in
        print_endline "== telemetry ==";
        print_string (Telemetry.Trace.tree_to_string evs);
        print_string
          (Telemetry.Counters.to_string (Telemetry.Counters.of_core tel))
    | None -> ()
  in
  (tel, finish)

let demo_cmd name meth_s experiment timeout save jobs no_solver_cache
    no_incremental no_steal no_encode trace metrics =
  match find_workload name, method_of_string meth_s with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      2
  | Ok w, Ok meth ->
      let jobs = max 1 jobs in
      let tel, finish_telemetry = make_telemetry trace metrics in
      let cfg =
        Bugrepro.Pipeline.Config.(
          default
          |> with_budget
               ~dynamic:{ Concolic.Engine.max_runs = 120; max_time_s = 15.0 }
               ~replay:{ Concolic.Engine.max_runs = 50_000; max_time_s = timeout }
          |> with_analyze_lib (not (String.equal w.wname "userver"))
          |> with_jobs jobs
          |> with_solver_cache (not no_solver_cache)
          |> with_incremental (not no_incremental)
          |> with_steal (not no_steal)
          |> with_encode (not no_encode)
          |> with_telemetry tel)
      in
      let code = demo_pipeline w meth experiment timeout save jobs
          no_solver_cache cfg
      in
      finish_telemetry ();
      code

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: generate random MiniC programs, run the
   cross-stage oracles, optionally shrink any counterexample.  With
   --corpus DIR the checked-in repro files are replayed instead of
   generating fresh cases. *)

let fuzz_cmd seed count shrink save_corpus thorough jobs corpus trace metrics =
  let tel, finish_telemetry = make_telemetry trace metrics in
  let config =
    Bugrepro.Pipeline.Config.(
      Fuzz.Oracle.default_cfg.Fuzz.Oracle.config
      |> with_jobs (max 1 jobs)
      |> with_telemetry tel)
  in
  let opts =
    {
      Fuzz.Driver.seed;
      count;
      shrink;
      save_corpus;
      thorough;
      config;
    }
  in
  let summary =
    match corpus with
    | Some dir -> Fuzz.Driver.replay_dir opts dir
    | None -> Fuzz.Driver.run opts
  in
  print_endline (Fuzz.Driver.summary_to_string summary);
  finish_telemetry ();
  if Fuzz.Driver.ok summary then 0 else 1

(* ------------------------------------------------------------------ *)
(* Report triage over a directory of .report files, plus a deterministic
   batch generator to exercise it.  Exit codes (documented in the man
   pages): 0 = triaged, no cluster starved; 1 = some cluster timed out;
   3 = nothing ingested, inputs malformed beyond salvage; 4 = nothing
   ingested, reports use an unsupported (newer) wire version. *)

(* The wire form names the program by its field-run scenario name (e.g.
   "paste" or "userver-exp3"); resolve it back to a workload by exact
   match first, then by the prefix before the first '-'. *)
let workload_of_program name =
  match find_workload name with
  | Ok w -> Ok w
  | Error _ as err -> (
      match String.index_opt name '-' with
      | None -> err
      | Some i -> find_workload (String.sub name 0 i))

let needs_dynamic = function
  | Instrument.Methods.Dynamic | Instrument.Methods.Dynamic_static -> true
  | Instrument.Methods.No_instrumentation | Instrument.Methods.Static
  | Instrument.Methods.All_branches ->
      false

(* Memoizing resolver for the triage scheduler: one analysis per
   (workload, needs-dynamic) pair and one plan per (workload, method).
   Dynamic analysis only runs when a report's method actually needs its
   labels.  Called sequentially from the scheduling domain, so plain
   hashtables are fine. *)
let make_resolver cfg : Triage.resolve =
  let analyses = Hashtbl.create 8 in
  let plans = Hashtbl.create 8 in
  fun (c : Triage.Cluster.t) ->
    let report = c.Triage.Cluster.representative.Triage.Ingest.report in
    match workload_of_program report.Instrument.Report.program with
    | Error e -> Error e
    | Ok w ->
        let meth = report.Instrument.Report.method_used in
        let cfg =
          Bugrepro.Pipeline.Config.with_analyze_lib
            (not (String.equal w.wname "userver"))
            cfg
        in
        let dyn = needs_dynamic meth in
        let analysis =
          match Hashtbl.find_opt analyses (w.wname, dyn) with
          | Some a -> a
          | None ->
              let a =
                if dyn then
                  Bugrepro.Pipeline.Run.analyze cfg
                    ~test_scenario:(w.demo_test ()) (w.prog ())
                else Bugrepro.Pipeline.Run.analyze cfg (w.prog ())
              in
              Hashtbl.add analyses (w.wname, dyn) a;
              a
        in
        let plan =
          match Hashtbl.find_opt plans (w.wname, meth) with
          | Some p -> p
          | None ->
              let p = Bugrepro.Pipeline.Run.plan cfg analysis meth in
              Hashtbl.add plans (w.wname, meth) p;
              p
        in
        Ok (analysis.Bugrepro.Pipeline.prog, plan)

let triage_cmd dir jobs deadline timeout seed no_incremental no_steal index
    json trace metrics =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "no such directory: %s\n" dir;
    2
  end
  else begin
    let tel, finish_telemetry = make_telemetry trace metrics in
    let cfg =
      Bugrepro.Pipeline.Config.(
        default
        |> with_jobs (max 1 jobs)
        |> with_seed seed
        |> with_budget
             ~replay:{ Concolic.Engine.max_runs = 50_000; max_time_s = timeout }
        |> with_incremental (not no_incremental)
        |> with_steal (not no_steal)
        |> with_telemetry tel)
    in
    let policy =
      { (Triage.Sched.policy_of_config cfg) with Triage.Sched.deadline_s = deadline }
    in
    let items, rejected = Triage.Ingest.load_dir dir in
    match
      Triage.run_items ~policy ?index_dir:index ~telemetry:tel
        ~resolve:(make_resolver cfg) ~rejected items
    with
    | Error e ->
        Printf.eprintf "triage: cannot open index: %s\n"
          (Triage.Index.error_to_string e);
        finish_telemetry ();
        6
    | Ok summary ->
        print_string (Triage.Summary.to_text summary);
        (match json with
        | Some path ->
            let oc = open_out path in
            output_string oc (Triage.Summary.to_json ~timing:true summary);
            output_string oc "\n";
            close_out oc;
            Printf.printf "json summary written to %s\n" path
        | None -> ());
        finish_telemetry ();
        if items = [] && rejected <> [] then
          if
            List.exists
              (fun (r : Triage.Ingest.rejected) ->
                match r.error with
                | Instrument.Wire.Unknown_version _ -> true
                | Instrument.Wire.Malformed _ -> false)
              rejected
          then 4
          else 3
        else if summary.Triage.Summary.timed_out > 0 then 1
        else 0
  end

(* Deterministic batch generator: record one genuine crash report per
   (workload, method) base, then emit [count] files cycling through the
   bases — the repeats are the duplicates — and tear a seeded subset
   mid-branch-log.  Same (seed, count, torn) => byte-identical batch. *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let batch_bases =
  [
    ("mkdir", Instrument.Methods.All_branches);
    ("mknod", Instrument.Methods.Static);
    ("mkfifo", Instrument.Methods.All_branches);
    ("paste", Instrument.Methods.Static);
    ("mkdir", Instrument.Methods.Static);
    ("paste", Instrument.Methods.All_branches);
  ]

let batch_cmd dir count seed torn =
  let cfg = Bugrepro.Pipeline.Config.default in
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let analyses = Hashtbl.create 8 in
  let wire_of_base (wname, meth) =
    match find_workload wname with
    | Error e -> Error e
    | Ok w -> (
        let analysis =
          match Hashtbl.find_opt analyses wname with
          | Some a -> a
          | None ->
              let a = Bugrepro.Pipeline.Run.analyze cfg (w.prog ()) in
              Hashtbl.add analyses wname a;
              a
        in
        let plan = Bugrepro.Pipeline.Run.plan cfg analysis meth in
        let _field, report =
          Bugrepro.Pipeline.Run.field_run_report cfg ~plan (w.demo_crash 1)
        in
        match report with
        | Some r -> Ok (Instrument.Wire.serialize r)
        | None -> Error (wname ^ ": demo scenario did not crash"))
  in
  let wires = List.map wire_of_base batch_bases in
  match List.find_opt Result.is_error wires with
  | Some (Error e) ->
      prerr_endline e;
      2
  | _ ->
      let wires = Array.of_list (List.map Result.get_ok wires) in
      let rng = Osmodel.Rng.create seed in
      (* seeded choice of which report files arrive torn *)
      let torn_at = Array.make count false in
      let torn = min torn count in
      let placed = ref 0 in
      while !placed < torn do
        let i = Osmodel.Rng.int rng count in
        if not torn_at.(i) then begin
          torn_at.(i) <- true;
          incr placed
        end
      done;
      let tear wire =
        let key =
          match find_sub wire "branch-enc: " with
          | Some _ -> "branch-enc: "
          | None -> "branch-log: "
        in
        match find_sub wire key with
        | None -> wire
        | Some pos ->
            let start = pos + String.length key in
            let hex_end =
              match String.index_from_opt wire start '\n' with
              | Some e -> e
              | None -> String.length wire
            in
            let hex_len = hex_end - start in
            if hex_len <= 2 then String.sub wire 0 start
            else
              (* cut somewhere inside the hex so bits are genuinely lost *)
              let cut = start + Osmodel.Rng.range rng 1 (hex_len - 2) in
              String.sub wire 0 cut
      in
      let n_bases = Array.length wires in
      for i = 0 to count - 1 do
        let wire = wires.(i mod n_bases) in
        let wire = if torn_at.(i) then tear wire else wire in
        let path = Filename.concat dir (Printf.sprintf "r%03d.report" i) in
        let oc = open_out path in
        output_string oc wire;
        close_out oc
      done;
      Printf.printf "wrote %d report(s) (%d base bug(s), %d torn) to %s\n"
        count n_bases torn dir;
      0

(* ------------------------------------------------------------------ *)
(* Streaming triage service: ingest reports as they arrive — from a
   directory watched incrementally and/or from the seeded load generator
   simulating a fleet of crashing clients — through the bounded
   backpressured queue, then drain and summarize.  Exit codes extend the
   triage command's with 5 = ingestion stall (the queue would not drain
   within --max-ticks). *)

let drop_policy_of_string s =
  match s with
  | "reject-new" -> Ok Triage.Service.Reject_new
  | "drop-oldest" -> Ok Triage.Service.Drop_oldest
  | _ ->
      let prefix = "sample:" in
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        match float_of_string_opt (String.sub s pl (String.length s - pl)) with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (Triage.Service.Sample p)
        | _ -> Error (Printf.sprintf "bad sample probability in %s" s)
      else
        Error
          (Printf.sprintf
             "unknown drop policy %s (known: reject-new, drop-oldest, \
              sample:P)"
             s)

let serve_cmd dir generate clients torn_pct seed queue drop_s burst window
    tick_every max_ticks index wall_clock jobs deadline timeout snapshot json
    trace metrics =
  match drop_policy_of_string drop_s with
  | Error e ->
      prerr_endline e;
      2
  | Ok drop when generate = 0 && dir = None ->
      ignore drop;
      prerr_endline "serve: nothing to ingest (give DIR and/or --generate N)";
      2
  | Ok drop -> (
      let tel, finish_telemetry = make_telemetry trace metrics in
      let cfg =
        Bugrepro.Pipeline.Config.(
          default
          |> with_jobs (max 1 jobs)
          |> with_seed seed
          |> with_budget
               ~replay:{ Concolic.Engine.max_runs = 50_000; max_time_s = timeout }
          |> with_telemetry tel)
      in
      let policy =
        { (Triage.Sched.policy_of_config cfg) with
          Triage.Sched.deadline_s = deadline }
      in
      let config =
        {
          Triage.Service.default_config with
          Triage.Service.policy;
          queue_capacity = max 1 queue;
          drop;
          burst = max 1 burst;
          window = max 1 window;
          wall_rungs = wall_clock;
          index_dir = index;
        }
      in
      match
        Triage.Service.open_ ~config ~telemetry:tel
          ~resolve:(make_resolver cfg) ()
      with
      | Error e ->
          Printf.eprintf "serve: cannot open index: %s\n"
            (Triage.Index.error_to_string e);
          (match e with Triage.Index.Unknown_version _ -> 4 | _ -> 3)
      | Ok svc ->
          let recovered =
            (Triage.Service.snapshot svc).Triage.Service.processed
          in
          if recovered > 0 then
            Printf.printf "recovered %d report(s) from the index\n" recovered;
          (* phase 1: the generated fleet, submitted in seeded order with
             a tick every [tick_every] submissions — faster than the
             service drains on purpose, so backpressure is observable *)
          if generate > 0 then begin
            let gen = Workloads.Report_gen.make ~config:cfg () in
            let stream =
              Workloads.Report_gen.stream gen ~seed ~clients ~torn_pct
                generate
            in
            List.iteri
              (fun i (r : Workloads.Report_gen.report) ->
                ignore (Triage.Service.submit svc ~path:r.path r.wire);
                if (i + 1) mod tick_every = 0 then
                  ignore (Triage.Service.tick svc))
              stream
          end;
          (* phase 2: watch the directory until it stops producing new
             files and the queue is empty (two quiet rounds), bounded by
             --max-ticks *)
          let stalled = ref false in
          (match dir with
          | None ->
              (* still bound the drain of the generated burst *)
              let ticks = ref 0 in
              while Triage.Service.queue_depth svc > 0 && not !stalled do
                let n = Triage.Service.tick svc in
                incr ticks;
                if n = 0 || !ticks > max_ticks then stalled := true
              done
          | Some dir ->
              let scanner = Triage.Ingest.scanner dir in
              let quiet = ref 0 in
              let ticks = ref 0 in
              while !quiet < 2 && not !stalled do
                let items, rejects = Triage.Ingest.poll scanner in
                List.iter
                  (fun (i : Triage.Ingest.item) ->
                    ignore (Triage.Service.submit_item svc i))
                  items;
                List.iter
                  (fun (r : Triage.Ingest.rejected) ->
                    Printf.printf "rejected %s: %s\n" r.path
                      (Instrument.Wire.error_to_string r.error))
                  rejects;
                let n = Triage.Service.tick svc in
                incr ticks;
                if items = [] && rejects = [] && n = 0
                   && Triage.Service.queue_depth svc = 0
                then incr quiet
                else quiet := 0;
                if !ticks > max_ticks then stalled := true
              done);
          let snap = Triage.Service.snapshot svc in
          Printf.printf
            "ingested: %d submitted, %d rejected, %d dropped, %d queued \
             (capacity %d), %d clusters over %d report(s)\n"
            snap.Triage.Service.submitted snap.Triage.Service.rejected
            snap.Triage.Service.dropped snap.Triage.Service.queued
            snap.Triage.Service.capacity snap.Triage.Service.clusters
            snap.Triage.Service.processed;
          (match snapshot with
          | Some path ->
              let oc = open_out path in
              output_string oc (Triage.Service.snapshot_to_json snap);
              output_string oc "\n";
              close_out oc;
              Printf.printf "snapshot written to %s\n" path
          | None -> ());
          if !stalled then begin
            Printf.eprintf
              "serve: ingestion stalled with %d report(s) still queued \
               after %d tick(s)\n"
              (Triage.Service.queue_depth svc) max_ticks;
            Triage.Service.close svc;
            finish_telemetry ();
            5
          end
          else begin
            let summary = Triage.Service.drain svc in
            Triage.Service.close svc;
            print_string (Triage.Summary.to_text summary);
            (match json with
            | Some path ->
                let oc = open_out path in
                output_string oc
                  (Triage.Summary.to_json ~timing:true summary);
                output_string oc "\n";
                close_out oc;
                Printf.printf "json summary written to %s\n" path
            | None -> ());
            finish_telemetry ();
            if
              summary.Triage.Summary.reports = 0
              && summary.Triage.Summary.rejected <> []
            then
              let vprefix = "unknown report format version" in
              if
                List.exists
                  (fun (_, reason) ->
                    String.length reason >= String.length vprefix
                    && String.sub reason 0 (String.length vprefix) = vprefix)
                  summary.Triage.Summary.rejected
              then 4
              else 3
            else if summary.Triage.Summary.timed_out > 0 then 1
            else 0
          end)

(* The adaptive deployment loop: rounds of field-run -> triage ->
   per-cohort policy refinement.  Exit 3 when a round aborts (a plan
   failed its fail-closed validity check, or a workload stopped
   crashing). *)

let adapt_cmd rounds seed json trace metrics =
  if rounds < 1 then begin
    prerr_endline "adapt: --rounds must be >= 1";
    2
  end
  else begin
    let tel, finish_telemetry = make_telemetry trace metrics in
    let config =
      {
        Adaptive.Loop.default_config with
        Adaptive.Loop.rounds;
        seed;
        telemetry = tel;
        trace = Some print_endline;
      }
    in
    match Adaptive.Loop.run config with
    | exception Failure msg ->
        Printf.eprintf "adapt: %s\n" msg;
        finish_telemetry ();
        3
    | result ->
        Printf.printf "%s after %d round(s)\n"
          (if result.Adaptive.Loop.converged then "converged" else
             "still refining")
          (List.length result.Adaptive.Loop.rounds);
        (match json with
        | Some path ->
            let oc = open_out path in
            output_string oc (Adaptive.Loop.result_to_json result);
            output_string oc "\n";
            close_out oc;
            Printf.printf "json summary written to %s\n" path
        | None -> ());
        finish_telemetry ();
        0
  end

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring *)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let list_t = Term.(const list_cmd $ const ())

let show_t = Term.(const show_cmd $ workload_arg)

let run_t =
  let args = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS") in
  Term.(const run_cmd $ workload_arg $ args)

let demo_t =
  let meth =
    Arg.(
      value
      & opt string "dynamic+static"
      & info [ "method"; "m" ] ~docv:"METHOD"
          ~doc:"Instrumentation method: dynamic, static, dynamic+static, all, none.")
  in
  let exp =
    Arg.(
      value & opt int 1
      & info [ "experiment"; "e" ] ~docv:"N" ~doc:"Experiment/bug number.")
  in
  let timeout =
    Arg.(
      value & opt float 20.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"Replay budget.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the bug report's wire form to FILE.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for analysis and replay (1 = deterministic \
             sequential search).")
  in
  let no_solver_cache =
    Arg.(
      value & flag
      & info [ "no-solver-cache" ]
          ~doc:"Disable the memoizing solver cache during replay.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Disable incremental solving (scoped contexts, learned-core \
             pruning, strategy portfolio); every pending is solved from \
             scratch.")
  in
  let no_steal =
    Arg.(
      value & flag
      & info [ "no-steal" ]
          ~doc:
            "Disable the work-stealing sharded frontier at --jobs > 1 and \
             use the single shared pending list instead.")
  in
  let no_encode =
    Arg.(
      value & flag
      & info [ "no-encode" ]
          ~doc:
            "Disable online branch-log encoding: the field run ships the \
             raw bitvector (a wire-v4 [branch-log] payload) instead of the \
             streamed token stream ([branch-enc]).  For A/B size and cost \
             comparisons; replay behaves identically either way.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL telemetry trace (spans, samples, counters) of \
             the whole pipeline to FILE.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the span tree and counter table after the pipeline.")
  in
  Term.(
    const demo_cmd $ workload_arg $ meth $ exp $ timeout $ save $ jobs
    $ no_solver_cache $ no_incremental $ no_steal $ no_encode $ trace
    $ metrics)

let fuzz_t =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:
            "Campaign seed; per-case seeds derive from it, so a failure's \
             reported seed re-runs alone with --count 1.")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of cases to generate.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Minimize any violation to a small repro before reporting it \
             (written to the corpus dir, or ./fuzz-failures).")
  in
  let save_corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-corpus" ] ~docv:"DIR"
          ~doc:"Save every generated case (and any repro) under DIR.")
  in
  let thorough =
    Arg.(
      value & flag
      & info [ "thorough" ]
          ~doc:
            "Run every oracle and every instrumentation method on every \
             case instead of rotating the heavy ones across case indices.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for replay (the determinism oracle always \
                uses its own pool).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Replay the .mc repro files under DIR through the oracles \
             instead of generating fresh cases.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL telemetry trace of the campaign to FILE.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the span tree and counter table after the campaign.")
  in
  Term.(
    const fuzz_cmd $ seed $ count $ shrink $ save_corpus $ thorough $ jobs
    $ corpus $ trace $ metrics)

let triage_t =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains draining the cluster queue (each cluster's \
             replay stays sequential, so outcomes are job-count \
             independent).")
  in
  let deadline =
    Arg.(
      value & opt float 60.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Global wall-clock bound for the whole batch.")
  in
  let timeout =
    Arg.(
      value & opt float 20.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS"
          ~doc:"Per-report budget of the ladder's final rung.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:"Batch seed; per-cluster replay seeds derive from it.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Disable the per-cluster incremental solver (scoped contexts, \
             learned-core pruning, strategy portfolio).")
  in
  let no_steal =
    Arg.(
      value & flag
      & info [ "no-steal" ]
          ~doc:
            "Disable the work-stealing sharded frontier inside each \
             cluster's replay.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the strict-JSON triage summary to FILE.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL telemetry trace of the batch to FILE.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the span tree and counter table after the batch.")
  in
  let index =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"DIR"
          ~doc:
            "Persistent fingerprint index: crash buckets are appended \
             here and reloaded by later batches or serves (exit 6 when \
             the index cannot be opened).")
  in
  Term.(
    const triage_cmd $ dir $ jobs $ deadline $ timeout $ seed
    $ no_incremental $ no_steal $ index $ json $ trace $ metrics)

let serve_t =
  let dir =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:
            "Directory to watch for .report files (scanned incrementally; \
             files appearing while the service runs are ingested too).")
  in
  let generate =
    Arg.(
      value & opt int 0
      & info [ "generate"; "g" ] ~docv:"N"
          ~doc:
            "Synthesize N crash reports from the seeded fleet load \
             generator (coreutils + µServer client crashes, duplicates \
             dominating, a seeded fraction torn) and submit them before \
             watching DIR.")
  in
  let clients =
    Arg.(
      value & opt int 200
      & info [ "clients" ] ~docv:"N"
          ~doc:"Simulated clients behind --generate.")
  in
  let torn_pct =
    Arg.(
      value & opt float 0.1
      & info [ "torn-pct" ] ~docv:"FRACTION"
          ~doc:"Fraction of generated reports that arrive torn mid-log.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:
            "Service seed: drives per-cluster replay seeds, the sample \
             drop policy and the load generator.")
  in
  let queue =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N" ~doc:"Ingest queue capacity.")
  in
  let drop =
    Arg.(
      value & opt string "reject-new"
      & info [ "drop" ] ~docv:"POLICY"
          ~doc:
            "Overload policy for a full queue: $(b,reject-new), \
             $(b,drop-oldest), or $(b,sample:P) (admit with probability \
             P, seeded).")
  in
  let burst =
    Arg.(
      value & opt int 32
      & info [ "burst" ] ~docv:"N" ~doc:"Reports clustered per tick.")
  in
  let window =
    Arg.(
      value & opt int 256
      & info [ "window" ] ~docv:"N"
          ~doc:"Sliding analytics window (reports).")
  in
  let tick_every =
    Arg.(
      value & opt int 64
      & info [ "tick-every" ] ~docv:"N"
          ~doc:
            "Tick once per N generated submissions — deliberately slower \
             than the fleet submits, so backpressure is observable.")
  in
  let max_ticks =
    Arg.(
      value & opt int 10_000
      & info [ "max-ticks" ] ~docv:"N"
          ~doc:
            "Give up (exit 5) if the queue has not drained after N ticks.")
  in
  let index =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"DIR"
          ~doc:
            "Persistent fingerprint index: crash buckets are appended \
             here and reloaded on the next serve, so clusters survive \
             restarts.")
  in
  let wall_clock =
    Arg.(
      value & flag
      & info [ "wall-clock" ]
          ~doc:
            "Bound eager replay rungs by wall-clock time (the paper's \
             ladder).  Default is run-bounded rungs: a borderline \
             cluster's reproduced-vs-timed_out verdict depends only on \
             its replay-run budget, not on scheduling noise.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains finishing replay courses at drain.")
  in
  let deadline =
    Arg.(
      value & opt float 60.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Wall-clock bound for the drain's replay phase.")
  in
  let timeout =
    Arg.(
      value & opt float 20.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS"
          ~doc:"Per-report budget of the ladder's final rung.")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write the post-ingestion service snapshot (queue, drops, \
             clusters, window analytics) as strict JSON to FILE.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the strict-JSON drain summary to FILE.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL telemetry trace of the service to FILE.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the span tree and counter table after the drain.")
  in
  Term.(
    const serve_cmd $ dir $ generate $ clients $ torn_pct $ seed $ queue
    $ drop $ burst $ window $ tick_every $ max_ticks $ index $ wall_clock
    $ jobs $ deadline $ timeout $ snapshot $ json $ trace $ metrics)

let adapt_t =
  let rounds =
    Arg.(
      value & opt int 3
      & info [ "rounds"; "r" ] ~docv:"N"
          ~doc:"Deployment rounds to simulate.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:
            "Master seed: log tearing, replay search and the triage \
             service all derive from it, so same seed means \
             byte-identical round summaries.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the strict-JSON per-round summaries to FILE.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL telemetry trace of every round to FILE.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the span tree and counter table after the last round.")
  in
  Term.(const adapt_cmd $ rounds $ seed $ json $ trace $ metrics)

let batch_t =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")
  in
  let count =
    Arg.(
      value & opt int 20
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:"Number of report files to write (duplicates included).")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:
            "Seed for which files arrive torn and where each tear lands; \
             the same (seed, count, torn) writes a byte-identical batch.")
  in
  let torn =
    Arg.(
      value & opt int 3
      & info [ "torn" ] ~docv:"N"
          ~doc:"Number of reports truncated mid-branch-log.")
  in
  Term.(const batch_cmd $ dir $ count $ seed $ torn)

let exit_status_man =
  [
    `S Manpage.s_exit_status;
    `P "$(b,0) on success.";
    `P "$(b,1) when a replay did not reproduce / a triage cluster timed out.";
    `P "$(b,2) on usage errors (unknown workload, missing directory).";
    `P
      "$(b,3) when a bug report is malformed beyond salvage (mirrors \
       minic_cli's exit-code-3 convention for type errors).";
    `P
      "$(b,4) when a bug report uses an unsupported (newer) wire-format \
       version: upgrade this tool rather than suspect corruption.";
    `P
      "$(b,5) when the serve command's ingestion stalls: the queue did \
       not drain within --max-ticks.";
    `P
      "$(b,6) when a persistent fingerprint index (--index) cannot be \
       opened: damaged shard or a newer index format.";
  ]

let cmds =
  [
    Cmd.v (Cmd.info "list" ~doc:"List bundled workloads and experiments") list_t;
    Cmd.v (Cmd.info "show" ~doc:"Show a workload's structure") show_t;
    Cmd.v (Cmd.info "run" ~doc:"Run a workload with the given arguments") run_t;
    Cmd.v
      (Cmd.info "demo"
         ~doc:"Full pipeline: analyse, instrument, crash, report, replay")
      demo_t;
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Differential fuzzing: random MiniC programs through the \
            cross-stage oracles (replay, labels, determinism, cache, wire)")
      fuzz_t;
    Cmd.v
      (Cmd.info "triage" ~man:exit_status_man
         ~doc:
           "Triage a directory of .report files: salvage torn reports, \
            deduplicate by crash fingerprint, replay one representative \
            per cluster under escalating budgets and a global deadline")
      triage_t;
    Cmd.v
      (Cmd.info "serve" ~man:exit_status_man
         ~doc:
           "Streaming triage service: ingest crash reports as they \
            arrive — from a watched directory and/or the seeded fleet \
            load generator — through a bounded backpressured queue with \
            incremental clustering, restart-safe crash buckets and \
            sliding-window analytics, then drain and summarize")
      serve_t;
    Cmd.v
      (Cmd.info "adapt" ~man:exit_status_man
         ~doc:
           "Closed-loop adaptive instrumentation: simulate rounds of a \
            fleet deployment — per-cohort verified plans, field runs, \
            torn-report triage — refining each cohort's instrumentation \
            level from its clusters' replay verdicts")
      adapt_t;
    Cmd.v
      (Cmd.info "batch" ~man:exit_status_man
         ~doc:
           "Write a deterministic batch of crash reports (duplicates and \
            torn tails included) for the triage command")
      batch_t;
  ]

let () =
  let info =
    Cmd.info "bugrepro" ~version:"1.0" ~man:exit_status_man
      ~doc:
        "Partial branch logging and guided symbolic replay (EuroSys'11 \
         reproduction)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
