(* bugrepro — command-line driver for the bundled workloads.

   $ bugrepro list
   $ bugrepro show paste
   $ bugrepro run paste -- -d , one two
   $ bugrepro demo paste --method dynamic+static
   $ bugrepro demo userver --experiment 3 --method static *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Workload registry *)

type workload = {
  wname : string;
  prog : unit -> Minic.Program.t;
  describe : string;
  demo_crash : int -> Concolic.Scenario.t;  (** experiment number -> scenario *)
  demo_test : unit -> Concolic.Scenario.t;  (** analysis scenario *)
  experiments : string list;
}

let coreutils_workload util =
  let e = Workloads.Coreutils.find util in
  {
    wname = util;
    prog = (fun () -> Lazy.force e.prog);
    describe = e.bug_description;
    demo_crash = (fun _ -> Workloads.Coreutils.crash_scenario e);
    demo_test = (fun () -> Workloads.Coreutils.analysis_scenario e);
    experiments = [ "1: " ^ e.bug_description ];
  }

let userver_workload =
  {
    wname = "userver";
    prog = (fun () -> Lazy.force Workloads.Userver.prog);
    describe = "event-driven web server (µServer analogue, §5.3)";
    demo_crash =
      (fun n -> Workloads.Userver.experiment_scenario (Workloads.Userver.experiment n));
    demo_test =
      (fun () ->
        Workloads.Userver.scenario ~name:"userver-test"
          (Workloads.Http_gen.workload 8));
    experiments =
      List.map
        (fun (e : Workloads.Userver.experiment) ->
          Printf.sprintf "%d: %s" e.id e.description)
        Workloads.Userver.experiments;
  }

let diff_workload =
  {
    wname = "diff";
    prog = (fun () -> Lazy.force Workloads.Diffutil.prog);
    describe = "line differ (input-intensive, §5.4)";
    demo_crash =
      (fun n ->
        if n <= 1 then Workloads.Diffutil.experiment_1 ()
        else Workloads.Diffutil.experiment_2 ());
    demo_test = (fun () -> Workloads.Diffutil.experiment_1 ());
    experiments = [ "1: small file pair"; "2: larger file pair" ];
  }

let mtrace_workload =
  {
    wname = "mtrace";
    prog = (fun () -> Lazy.force Workloads.Mtrace.prog);
    describe = "multithreaded scanner with a check-then-act race (§6)";
    demo_crash = (fun _ -> Workloads.Mtrace.scenario ~seed:3 ());
    demo_test = (fun () -> Workloads.Mtrace.benign_scenario ());
    experiments = [ "1: alert-log overflow under adversarial schedule" ];
  }

let workloads =
  List.map coreutils_workload [ "mkdir"; "mknod"; "mkfifo"; "paste" ]
  @ [ userver_workload; diff_workload; mtrace_workload ]

let find_workload name =
  match List.find_opt (fun w -> String.equal w.wname name) workloads with
  | Some w -> Ok w
  | None ->
      Error
        (Printf.sprintf "unknown workload %s (known: %s)" name
           (String.concat ", " (List.map (fun w -> w.wname) workloads)))

let method_of_string = function
  | "dynamic" -> Ok Instrument.Methods.Dynamic
  | "static" -> Ok Instrument.Methods.Static
  | "dynamic+static" | "combined" -> Ok Instrument.Methods.Dynamic_static
  | "all" | "all-branches" -> Ok Instrument.Methods.All_branches
  | "none" -> Ok Instrument.Methods.No_instrumentation
  | s -> Error (Printf.sprintf "unknown method %s" s)

(* ------------------------------------------------------------------ *)
(* Commands *)

let list_cmd () =
  List.iter
    (fun w ->
      Printf.printf "%-8s %s\n" w.wname w.describe;
      List.iter (fun e -> Printf.printf "         exp %s\n" e) w.experiments)
    workloads;
  0

let show_cmd name =
  match find_workload name with
  | Error e ->
      prerr_endline e;
      2
  | Ok w ->
      let p = w.prog () in
      Printf.printf
        "%s: %d branch locations (%d application, %d library), %d functions\n"
        w.wname (Minic.Program.nbranches p)
        (Minic.Program.app_branch_count p)
        (Minic.Program.lib_branch_count p)
        (List.length p.funcs);
      List.iter
        (fun (f : Minic.Ast.func) ->
          if not f.fis_lib then
            Printf.printf "  %s(%s)\n" f.fname
              (String.concat ", " (List.map fst f.fparams)))
        p.funcs;
      0

let run_cmd name args =
  match find_workload name with
  | Error e ->
      prerr_endline e;
      2
  | Ok w ->
      let prog = w.prog () in
      let sc = Concolic.Scenario.make ~name ~args prog in
      let _w, handle = Osmodel.World.kernel sc.world in
      let r =
        Interp.Eval.run prog
          {
            Interp.Eval.inputs = Interp.Inputs.of_strings args;
            kernel = Interp.Kernel.of_world handle;
            hooks = Interp.Eval.no_hooks;
            max_steps = sc.max_steps;
      scheduler = None;
          }
      in
      print_string r.output;
      Printf.printf "-> %s (%d steps)\n" (Interp.Crash.outcome_to_string r.outcome)
        r.steps;
      (match r.outcome with Interp.Crash.Exit n -> n | _ -> 1)

(* The analyse -> plan -> field-run -> report -> replay pipeline of the
   demo command, driven by one [Pipeline.Config.t]. *)
let demo_pipeline w meth experiment timeout save jobs no_solver_cache cfg =
  let prog = w.prog () in
  Printf.printf "== analysing %s ==\n%!" w.wname;
  let analysis =
    Bugrepro.Pipeline.Run.analyze cfg ~test_scenario:(w.demo_test ()) prog
  in
  let plan = Bugrepro.Pipeline.Run.plan cfg analysis meth in
  Printf.printf "method %s instruments %d/%d branch locations\n%!"
    (Instrument.Methods.to_string meth)
    plan.n_instrumented
    (Minic.Program.nbranches prog);
  Printf.printf "== field run (experiment %d) ==\n%!" experiment;
  let crash_sc = w.demo_crash experiment in
  let field, report = Bugrepro.Pipeline.Run.field_run_report cfg ~plan crash_sc in
  Printf.printf "outcome: %s\n%!" (Interp.Crash.outcome_to_string field.outcome);
  match report with
  | None ->
      print_endline "no crash, nothing to report";
      0
  | Some report -> (
      Printf.printf "report: %s\n" (Instrument.Report.describe report);
      (* ship the report through its wire form (and optionally to disk):
         the developer-side replay below works from the parsed copy *)
      let wire = Instrument.Wire.serialize report in
      (match save with
      | Some path ->
          let oc = open_out path in
          output_string oc wire;
          close_out oc;
          Printf.printf "wire form written to %s (%d bytes)\n" path
            (String.length wire)
      | None -> ());
      let report =
        match Instrument.Wire.deserialize wire with
        | Ok r -> r
        | Error e -> failwith ("wire round trip failed: " ^ e)
      in
      Printf.printf "== guided replay (budget %.0fs, %d job%s, cache %s) ==\n%!"
        timeout jobs
        (if jobs = 1 then "" else "s")
        (if no_solver_cache then "off" else "on");
      let result, stats = Bugrepro.Pipeline.Run.reproduce cfg ~prog ~plan report in
      Printf.printf
        "cases: %d pinned (2a), %d forced (2b), %d free symbolic (1), %d concrete-mismatch (3b)\n"
        stats.cases.case2a stats.cases.case2b stats.cases.case1
        stats.cases.case3b;
      (match stats.cache with
      | Some c ->
          Printf.printf
            "solver cache: %d hits / %d misses (%.0f%% hit rate), %d evictions\n"
            c.hits c.misses
            (100.0 *. Solver.Cache.hit_rate c)
            c.evictions
      | None -> ());
      match result with
      | Replay.Guided.Reproduced r ->
          Printf.printf "REPRODUCED in %.3fs after %d runs at %s\n" r.elapsed_s
            r.runs
            (Interp.Crash.to_string r.crash);
          0
      | Replay.Guided.Not_reproduced r ->
          Printf.printf "NOT reproduced (%d runs, %.1fs, timed out: %b)\n" r.runs
            r.elapsed_s r.timed_out;
          1)

(* Telemetry plumbing shared by demo and fuzz: --trace streams JSONL to a
   file while the pipeline runs, --metrics buffers the events for the
   final span tree and counter table; without either the handle is the
   shared no-op [Telemetry.disabled].  [finish] publishes the counters,
   flushes, closes the trace file and prints the metrics report. *)
let make_telemetry trace metrics =
  let trace_oc = Option.map open_out trace in
  let mem = if metrics then Some (Telemetry.Sink.memory ()) else None in
  let tel =
    match trace_oc, mem with
    | None, None -> Telemetry.disabled
    | Some oc, None -> Telemetry.create ~sink:(Telemetry.Sink.jsonl oc) ()
    | None, Some (s, _) -> Telemetry.create ~sink:s ()
    | Some oc, Some (s, _) ->
        Telemetry.create
          ~sink:(Telemetry.Sink.tee (Telemetry.Sink.jsonl oc) s)
          ()
  in
  let finish () =
    Telemetry.Metrics.publish tel;
    Telemetry.flush tel;
    (match trace_oc with
    | Some oc ->
        close_out oc;
        Printf.printf "trace written to %s\n" (Option.get trace)
    | None -> ());
    match mem with
    | Some (_, events) ->
        let evs = events () in
        print_endline "== telemetry ==";
        print_string (Telemetry.Trace.tree_to_string evs);
        print_string
          (Telemetry.Counters.to_string (Telemetry.Counters.of_core tel))
    | None -> ()
  in
  (tel, finish)

let demo_cmd name meth_s experiment timeout save jobs no_solver_cache trace
    metrics =
  match find_workload name, method_of_string meth_s with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      2
  | Ok w, Ok meth ->
      let jobs = max 1 jobs in
      let tel, finish_telemetry = make_telemetry trace metrics in
      let cfg =
        Bugrepro.Pipeline.Config.(
          default
          |> with_budget
               ~dynamic:{ Concolic.Engine.max_runs = 120; max_time_s = 15.0 }
               ~replay:{ Concolic.Engine.max_runs = 50_000; max_time_s = timeout }
          |> with_analyze_lib (not (String.equal w.wname "userver"))
          |> with_jobs jobs
          |> with_solver_cache (not no_solver_cache)
          |> with_telemetry tel)
      in
      let code = demo_pipeline w meth experiment timeout save jobs
          no_solver_cache cfg
      in
      finish_telemetry ();
      code

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: generate random MiniC programs, run the
   cross-stage oracles, optionally shrink any counterexample.  With
   --corpus DIR the checked-in repro files are replayed instead of
   generating fresh cases. *)

let fuzz_cmd seed count shrink save_corpus thorough jobs corpus trace metrics =
  let tel, finish_telemetry = make_telemetry trace metrics in
  let config =
    Bugrepro.Pipeline.Config.(
      Fuzz.Oracle.default_cfg.Fuzz.Oracle.config
      |> with_jobs (max 1 jobs)
      |> with_telemetry tel)
  in
  let opts =
    {
      Fuzz.Driver.seed;
      count;
      shrink;
      save_corpus;
      thorough;
      config;
    }
  in
  let summary =
    match corpus with
    | Some dir -> Fuzz.Driver.replay_dir opts dir
    | None -> Fuzz.Driver.run opts
  in
  print_endline (Fuzz.Driver.summary_to_string summary);
  finish_telemetry ();
  if Fuzz.Driver.ok summary then 0 else 1

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring *)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let list_t = Term.(const list_cmd $ const ())

let show_t = Term.(const show_cmd $ workload_arg)

let run_t =
  let args = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS") in
  Term.(const run_cmd $ workload_arg $ args)

let demo_t =
  let meth =
    Arg.(
      value
      & opt string "dynamic+static"
      & info [ "method"; "m" ] ~docv:"METHOD"
          ~doc:"Instrumentation method: dynamic, static, dynamic+static, all, none.")
  in
  let exp =
    Arg.(
      value & opt int 1
      & info [ "experiment"; "e" ] ~docv:"N" ~doc:"Experiment/bug number.")
  in
  let timeout =
    Arg.(
      value & opt float 20.0
      & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"Replay budget.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the bug report's wire form to FILE.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for analysis and replay (1 = deterministic \
             sequential search).")
  in
  let no_solver_cache =
    Arg.(
      value & flag
      & info [ "no-solver-cache" ]
          ~doc:"Disable the memoizing solver cache during replay.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL telemetry trace (spans, samples, counters) of \
             the whole pipeline to FILE.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the span tree and counter table after the pipeline.")
  in
  Term.(
    const demo_cmd $ workload_arg $ meth $ exp $ timeout $ save $ jobs
    $ no_solver_cache $ trace $ metrics)

let fuzz_t =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed"; "s" ] ~docv:"SEED"
          ~doc:
            "Campaign seed; per-case seeds derive from it, so a failure's \
             reported seed re-runs alone with --count 1.")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of cases to generate.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Minimize any violation to a small repro before reporting it \
             (written to the corpus dir, or ./fuzz-failures).")
  in
  let save_corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-corpus" ] ~docv:"DIR"
          ~doc:"Save every generated case (and any repro) under DIR.")
  in
  let thorough =
    Arg.(
      value & flag
      & info [ "thorough" ]
          ~doc:
            "Run every oracle and every instrumentation method on every \
             case instead of rotating the heavy ones across case indices.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for replay (the determinism oracle always \
                uses its own pool).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Replay the .mc repro files under DIR through the oracles \
             instead of generating fresh cases.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL telemetry trace of the campaign to FILE.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the span tree and counter table after the campaign.")
  in
  Term.(
    const fuzz_cmd $ seed $ count $ shrink $ save_corpus $ thorough $ jobs
    $ corpus $ trace $ metrics)

let cmds =
  [
    Cmd.v (Cmd.info "list" ~doc:"List bundled workloads and experiments") list_t;
    Cmd.v (Cmd.info "show" ~doc:"Show a workload's structure") show_t;
    Cmd.v (Cmd.info "run" ~doc:"Run a workload with the given arguments") run_t;
    Cmd.v
      (Cmd.info "demo"
         ~doc:"Full pipeline: analyse, instrument, crash, report, replay")
      demo_t;
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Differential fuzzing: random MiniC programs through the \
            cross-stage oracles (replay, labels, determinism, cache, wire)")
      fuzz_t;
  ]

let () =
  let info =
    Cmd.info "bugrepro" ~version:"1.0"
      ~doc:
        "Partial branch logging and guided symbolic replay (EuroSys'11 \
         reproduction)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
