(* E15 — extension: incremental solving + work-stealing parallel replay.
   Not in the paper; measures what the engine rework buys, generation by
   generation: the seed engine, the exact-match solver cache, the scoped
   incremental solver (learned-core pruning + strategy portfolio), and the
   work-stealing sharded frontier.

   Three sections:
   1. replay configurations on solver-heavy workloads (the coreutils
      ESD-style searches, widest pending frontier, and a guided µServer
      replay) — every configuration must reach the same reproduction
      verdict;
   2. a speedup-vs-jobs exploration curve (jobs 1/2/N, steal on vs off)
      with label-map parity;
   3. the E16-style triage batch replayed under the PR-2 configuration
      (cache only) vs the full incremental stack, with the
      solved-incrementally / core-pruned / steal counters — on a
      single-core host any win here comes from learning, not
      parallelism. *)

let sprintf = Printf.sprintf

type case = {
  cname : string;
  prog : Minic.Program.t;
  plan : Instrument.Plan.t;
  report : Instrument.Report.t;
  budget : Concolic.Engine.budget;
}

(* ESD-style search: crash report with an empty instrumentation plan, so
   replay is pure symbolic search — the E5b setting, replayed here under
   the engine configurations. *)
let coreutils_case (c : Ctx.t) util =
  let e = Workloads.Coreutils.find util in
  let prog = Lazy.force e.prog in
  let none =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let _, report =
    Bugrepro.Pipeline.field_run_report ~plan:none
      (Workloads.Coreutils.crash_scenario e)
  in
  Option.map
    (fun report ->
      {
        cname = util ^ " (no log)";
        prog;
        plan = none;
        report;
        budget =
          { (Ctx.replay_budget c) with max_time_s = 3.0 *. c.replay_time_s };
      })
    report

(* µServer experiment 1 under the static plan: the Table 3 setting with a
   real branch log, to confirm guided replay keeps its verdict (and its
   speed) across engine configurations. *)
let userver_case (c : Ctx.t) =
  let prog = Lazy.force Workloads.Userver.prog in
  let static = Staticanalysis.Static.analyze ~analyze_lib:false prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      ~static:static.labels Instrument.Methods.Static
  in
  let sc =
    Workloads.Userver.experiment_scenario (Workloads.Userver.experiment 1)
  in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  Option.map
    (fun report ->
      { cname = "userver exp 1 (static)"; prog; plan; report;
        budget = Ctx.replay_budget c })
    report

let hit_rate_string (stats : Replay.Guided.stats) =
  match stats.cache with
  | None -> "off"
  | Some s ->
      sprintf "%.0f%%"
        (100.0 *. Solver.Cache.hit_rate s)

(* One engine configuration of the replay comparison *)
type econfig = {
  label : string;
  e_jobs : int;
  e_cache : bool;
  e_incr : bool;
  e_steal : bool;
}

(* ------------------------------------------------------------------ *)
(* Section 1: replay configurations *)

let replay_section (c : Ctx.t) par_jobs =
  let configs =
    [
      { label = "j1 fresh (seed)"; e_jobs = 1; e_cache = false;
        e_incr = false; e_steal = false };
      { label = "j1 +cache (PR 2)"; e_jobs = 1; e_cache = true;
        e_incr = false; e_steal = false };
      { label = "j1 +incremental"; e_jobs = 1; e_cache = true;
        e_incr = true; e_steal = false };
      { label = sprintf "j%d +incr +steal" par_jobs; e_jobs = par_jobs;
        e_cache = true; e_incr = true; e_steal = true };
    ]
  in
  let cases =
    List.filter_map Fun.id
      [
        coreutils_case c "paste";
        coreutils_case c "mkdir";
        userver_case c;
      ]
  in
  let rows = ref [] in
  let all_agree = ref true in
  let tot_pruned = ref 0 and tot_incr = ref 0 and tot_calls = ref 0 in
  let tot_steals = ref 0 in
  List.iter
    (fun case ->
      let baseline = ref nan in
      let verdicts = ref [] in
      List.iter
        (fun ec ->
          let (result, stats), wall =
            Util.time_call (fun () ->
                Bugrepro.Pipeline.Run.reproduce
                  Bugrepro.Pipeline.Config.(
                    Ctx.pipeline_config c
                    |> with_budget ~replay:case.budget
                    |> with_jobs ec.e_jobs
                    |> with_solver_cache ec.e_cache
                    |> with_incremental ec.e_incr
                    |> with_steal ec.e_steal)
                  ~prog:case.prog ~plan:case.plan case.report)
          in
          if Float.is_nan !baseline then baseline := wall;
          let speedup = !baseline /. wall in
          verdicts := Replay.Guided.reproduced result :: !verdicts;
          let eng = stats.Replay.Guided.engine in
          tot_pruned := !tot_pruned + eng.core_pruned;
          tot_incr := !tot_incr + eng.solved_incremental;
          tot_calls := !tot_calls + eng.solver_calls;
          tot_steals := !tot_steals + eng.steals;
          let key =
            sprintf "%s/%s" case.cname
              (sprintf "j%d%s%s%s" ec.e_jobs
                 (if ec.e_cache then "+cache" else "")
                 (if ec.e_incr then "+incr" else "")
                 (if ec.e_steal then "+steal" else ""))
          in
          Util.record_metric ~experiment:"E15" (key ^ "/seconds") wall;
          Util.record_metric ~experiment:"E15" (key ^ "/speedup") speedup;
          (match stats.cache with
          | Some s ->
              Util.record_metric ~experiment:"E15" (key ^ "/hit_rate")
                (Solver.Cache.hit_rate s)
          | None -> ());
          rows :=
            [
              case.cname;
              ec.label;
              Util.seconds wall;
              sprintf "%.2fx" speedup;
              hit_rate_string stats;
              (if eng.solver_calls = 0 then "-"
               else
                 sprintf "%d/%d" eng.solved_incremental eng.solver_calls);
              string_of_int eng.core_pruned;
              string_of_int eng.steals;
              (match result with
              | Replay.Guided.Reproduced r -> sprintf "repro (%d runs)" r.runs
              | Replay.Guided.Not_reproduced r ->
                  sprintf "NOT repro (%d runs)" r.runs);
            ]
            :: !rows)
        configs;
      (match !verdicts with
      | v :: vs when not (List.for_all (Bool.equal v) vs) ->
          all_agree := false;
          Printf.printf "!! verdict mismatch across configurations on %s\n"
            case.cname
      | _ -> ()))
    cases;
  Util.table
    ([ "workload"; "configuration"; "wall clock"; "speedup"; "cache";
       "incr solved"; "pruned"; "steals"; "verdict" ]
    :: List.rev !rows);
  Util.record_metric ~experiment:"E15" "verdicts_agree"
    (if !all_agree then 1.0 else 0.0);
  Util.record_metric ~experiment:"E15" "replay/core_pruned"
    (float_of_int !tot_pruned);
  Util.record_metric ~experiment:"E15" "replay/solved_incremental"
    (float_of_int !tot_incr);
  Util.record_metric ~experiment:"E15" "replay/solver_calls"
    (float_of_int !tot_calls);
  Util.record_metric ~experiment:"E15" "replay/steals"
    (float_of_int !tot_steals);
  Printf.printf "verdict parity across configurations: %s\n"
    (if !all_agree then "OK" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Section 2: exploration speedup-vs-jobs curve *)

let explore_section (c : Ctx.t) par_jobs =
  let e = Workloads.Coreutils.find "mkdir" in
  let sc () = Workloads.Coreutils.analysis_scenario e in
  let budget =
    { Concolic.Engine.max_runs = c.hc_runs; max_time_s = c.analysis_time_s }
  in
  let rate (r : Concolic.Dynamic.result) =
    if r.elapsed_s > 0.0 then float_of_int r.runs /. r.elapsed_s else 0.0
  in
  let job_points =
    List.sort_uniq Stdlib.compare [ 1; 2; par_jobs ]
    |> List.map (fun j -> (j, true))
  in
  (* the steal-off point isolates what the sharded deques buy at the
     highest worker count *)
  let points = job_points @ [ (par_jobs, false) ] in
  let runs =
    List.map
      (fun (jobs, steal) ->
        let r =
          Concolic.Dynamic.analyze ~budget ~jobs ~steal
            ~telemetry:c.telemetry (sc ())
        in
        ((jobs, steal), r))
      points
  in
  let base_rate =
    match runs with
    | ((1, _), r) :: _ -> rate r
    | _ -> 0.0
  in
  Util.table
    ([ "exploration"; "runs"; "elapsed"; "runs/s"; "speedup"; "coverage" ]
    :: List.map
         (fun ((jobs, steal), (r : Concolic.Dynamic.result)) ->
           [
             sprintf "jobs=%d%s" jobs (if steal then "" else " (no steal)");
             string_of_int r.runs;
             Util.seconds r.elapsed_s;
             sprintf "%.0f" (rate r);
             (if base_rate > 0.0 then sprintf "%.2fx" (rate r /. base_rate)
              else "-");
             sprintf "%.0f%%" (100.0 *. r.coverage);
           ])
         runs);
  List.iter
    (fun ((jobs, steal), r) ->
      Util.record_metric ~experiment:"E15"
        (sprintf "explore/j%d%s_runs_per_s" jobs
           (if steal then "" else "_nosteal"))
        (rate r))
    runs;
  (* Label parity is only meaningful on explorations that drain the whole
     frontier: a budget-truncated search visits whichever branches its
     worker schedule reached first.  The mkdir curve above never exhausts
     in bench budgets, so the parity check runs on the paste crash
     scenario, whose frontier drains in well under a second. *)
  let parity_budget =
    { Concolic.Engine.max_runs = 6_000; max_time_s = c.analysis_time_s }
  in
  let parity_runs =
    List.map
      (fun (jobs, steal) ->
        let e = Workloads.Coreutils.find "paste" in
        Concolic.Dynamic.analyze ~budget:parity_budget ~jobs ~steal
          ~telemetry:c.telemetry
          (Workloads.Coreutils.crash_scenario e))
      points
  in
  let all_exhausted =
    List.for_all
      (fun (r : Concolic.Dynamic.result) ->
        r.runs < parity_budget.max_runs)
      parity_runs
  in
  let labels_equal =
    all_exhausted
    &&
    match parity_runs with
    | first :: rest ->
        List.for_all
          (fun (r : Concolic.Dynamic.result) -> r.labels = first.labels)
          rest
    | [] -> true
  in
  Util.record_metric ~experiment:"E15" "explore/labels_identical"
    (if labels_equal then 1.0 else 0.0);
  Printf.printf
    "label maps identical across jobs/steal on the exhausted frontier: %b%s\n"
    labels_equal
    (if all_exhausted then "" else " (NOT EXHAUSTED — check budget)")

(* ------------------------------------------------------------------ *)
(* Section 3: the triage batch, PR-2 configuration vs the incremental
   stack.  The batch mirrors E16's shape (coreutils crashes, duplicates
   dominating) without the suppression tier — the comparison is about the
   solver, not the log format. *)

let triage_section (c : Ctx.t) par_jobs =
  let cfg = Ctx.pipeline_config c in
  let bases =
    [
      ("mkdir", Instrument.Methods.All_branches, 3);
      ("mknod", Instrument.Methods.Static, 2);
      ("paste", Instrument.Methods.Static, 3);
      ("mkfifo", Instrument.Methods.All_branches, 2);
      (* the heavy cluster: an ESD-style report with no instrumentation at
         all, so its replay is pure symbolic search.  The search is far too
         wide to reproduce inside the replay run budget, so both
         configurations execute exactly [replay_runs] runs on the final
         rung — deterministic work, and the wall-clock difference is solver
         throughput, not witness-order luck.  (A torn report that *does*
         reproduce is the wrong racehorse: which crashing input a config
         stumbles on first dominates its wall clock and flips the verdict
         run to run.) *)
      ("mkdir", Instrument.Methods.No_instrumentation, 1);
    ]
  in
  (* Torn duplicates of light reports keep the E16 salvage shape in the
     batch (a torn cluster must re-search past its salvaged prefix) without
     adding a second heavy search — two heavy clusters overlapping on a
     small host would measure multi-domain minor-GC barriers instead of
     solver throughput. *)
  let torn_bases = [ ("paste", Instrument.Methods.Static, 2) ] in
  let find_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  let tear text =
    let key =
      match find_sub text "branch-enc: " with
      | Some _ -> "branch-enc: "
      | None -> "branch-log: "
    in
    match find_sub text key with
    | None -> text
    | Some i ->
        let start = i + String.length key in
        let hex_end =
          match String.index_from_opt text start '\n' with
          | Some j -> j
          | None -> String.length text
        in
        String.sub text 0 (start + ((hex_end - start) / 2))
  in
  let plans = Hashtbl.create 8 in
  let wire_of (name, meth, _) =
    let e = Workloads.Coreutils.find name in
    let prog = Lazy.force e.Workloads.Coreutils.prog in
    let analysis = Bugrepro.Pipeline.Run.analyze cfg prog in
    let plan = Bugrepro.Pipeline.Run.plan cfg analysis meth in
    Hashtbl.replace plans (name, meth) (prog, plan);
    let _, report =
      Bugrepro.Pipeline.Run.field_run_report cfg ~plan
        (Workloads.Coreutils.crash_scenario e)
    in
    match report with
    | Some r -> Instrument.Wire.serialize r
    | None -> failwith (name ^ ": demo scenario did not crash")
  in
  let texts =
    List.concat_map
      (fun ((_, _, copies) as b) ->
        let w = wire_of b in
        List.init copies (fun _ -> w))
      bases
    @ List.concat_map
        (fun ((_, _, copies) as b) ->
          let w = tear (wire_of b) in
          List.init copies (fun _ -> w))
        torn_bases
  in
  let items =
    List.mapi
      (fun i s ->
        match Triage.Ingest.of_string ~path:(sprintf "p%03d.report" i) s with
        | Ok item -> item
        | Error r ->
            failwith
              (sprintf "batch report %d rejected: %s" i
                 (Instrument.Wire.error_to_string r.Triage.Ingest.error)))
      texts
  in
  let resolve (cl : Triage.Cluster.t) =
    let r = cl.Triage.Cluster.representative.Triage.Ingest.report in
    match
      Hashtbl.find_opt plans
        (r.Instrument.Report.program, r.Instrument.Report.method_used)
    with
    | Some pp -> Ok pp
    | None -> Error ("no plan for " ^ r.Instrument.Report.program)
  in
  let run_batch ~incremental ~steal ~final_rung_jobs =
    (* the heavy final rung is run-capped, not time-capped: its generous
       time bound never binds, so both configurations do the same number of
       runs and the race measures throughput *)
    let heavy =
      { Concolic.Engine.max_runs = c.replay_runs;
        max_time_s = 30.0 *. c.replay_time_s }
    in
    let policy =
      { (Triage.Sched.policy_of_config cfg) with
        Triage.Sched.ladder =
          [ { Concolic.Engine.max_runs = 60; max_time_s = 2.0 }; heavy ];
        jobs = par_jobs;
        final_rung_jobs;
        incremental;
        steal;
        deadline_s = 60.0 *. c.replay_time_s }
    in
    Solver.Incr.reset_totals ();
    Concolic.Engine.reset_steal_total ();
    let summary, wall =
      Util.time_call (fun () ->
          match
            Triage.run_items ~policy ~telemetry:c.telemetry ~resolve items
          with
          | Ok s -> s
          | Error e -> failwith (Triage.Index.error_to_string e))
    in
    (summary, wall, Solver.Incr.totals (), Concolic.Engine.steal_total ())
  in
  (* best scheduling per generation: the jobs curve shows within-search
     worker domains alone cost ~2x on this host, so the PR-2 cache runs its
     heavy rung sequentially (its best), while the incremental stack brings
     the work-stealing frontier it was built with *)
  let s_pr2, pr2_s, _, _ =
    run_batch ~incremental:false ~steal:false ~final_rung_jobs:1
  in
  let s_incr, incr_s, tot, steals =
    run_batch ~incremental:true ~steal:true ~final_rung_jobs:par_jobs
  in
  let share =
    if tot.Solver.Incr.solver_calls > 0 then
      float_of_int tot.Solver.Incr.incremental
      /. float_of_int tot.Solver.Incr.solver_calls
    else 0.0
  in
  let row label (s : Triage.Summary.t) wall (t : Solver.Incr.snapshot option)
      steals =
    [
      label;
      string_of_int s.reports;
      string_of_int (List.length s.clusters);
      string_of_int (s.reproduced + s.salvaged_reproduced);
      Util.seconds wall;
      (match t with
      | None -> "-"
      | Some t -> sprintf "%d/%d" t.incremental t.solver_calls);
      (match t with None -> "-" | Some t -> string_of_int t.core_pruned);
      (match t with None -> "-" | Some t -> string_of_int t.cores_learned);
      (match steals with None -> "-" | Some n -> string_of_int n);
    ]
  in
  Util.table
    [
      [ sprintf "triage batch (jobs=%d)" par_jobs; "reports"; "clusters";
        "reproduced"; "wall clock"; "incr solved"; "pruned"; "cores";
        "steals" ];
      row "PR 2 (cache only)" s_pr2 pr2_s None None;
      row "incremental + steal" s_incr incr_s (Some tot) (Some steals);
    ];
  (* per-cluster statuses, not full summaries: across *different solver
     configurations* the specific crashing input found (the model) may
     legitimately differ — status agreement is the soundness claim *)
  let statuses (s : Triage.Summary.t) =
    List.map
      (fun (e : Triage.Summary.entry) ->
        (e.fingerprint, Triage.Summary.status_name e.status))
      s.clusters
  in
  let same_verdicts = statuses s_pr2 = statuses s_incr in
  Util.record_metric ~experiment:"E15" "triage/pr2_seconds" pr2_s;
  Util.record_metric ~experiment:"E15" "triage/incr_seconds" incr_s;
  Util.record_metric ~experiment:"E15" "triage/incr_win"
    (if incr_s < pr2_s then 1.0 else 0.0);
  Util.record_metric ~experiment:"E15" "triage/core_pruned"
    (float_of_int tot.Solver.Incr.core_pruned);
  Util.record_metric ~experiment:"E15" "triage/solved_incremental"
    (float_of_int tot.Solver.Incr.incremental);
  Util.record_metric ~experiment:"E15" "triage/solver_calls"
    (float_of_int tot.Solver.Incr.solver_calls);
  Util.record_metric ~experiment:"E15" "triage/incremental_share" share;
  Util.record_metric ~experiment:"E15" "triage/steals"
    (float_of_int steals);
  Util.record_metric ~experiment:"E15" "triage/verdicts_identical"
    (if same_verdicts then 1.0 else 0.0);
  Printf.printf
    "triage batch: %.3fs (PR 2) vs %.3fs (incremental) — %s; %d/%d solver \
     calls incremental (%.0f%%), %d core-pruned, %d steals; verdict parity \
     %s\n"
    pr2_s incr_s
    (if incr_s < pr2_s then "incremental wins" else "NO WIN")
    tot.Solver.Incr.incremental tot.Solver.Incr.solver_calls (100.0 *. share)
    tot.Solver.Incr.core_pruned steals
    (if same_verdicts then "OK" else "MISMATCH")

let e15 (c : Ctx.t) =
  let par_jobs = if c.jobs > 1 then c.jobs else 4 in
  Util.section ~id:"E15" ~paper:"extension"
    (sprintf
       "Incremental solving + work-stealing frontier: engine generations, \
        a jobs curve, and the triage batch (vs %d worker domains)"
       par_jobs);
  replay_section c par_jobs;
  print_newline ();
  explore_section c par_jobs;
  print_newline ();
  triage_section c par_jobs;
  print_endline
    "expected shape: the cache alone speeds up the no-log searches (sibling\n\
     pendings share long constraint prefixes); the incremental solver then\n\
     converts those prefixes into scope reuse and learned cores, so its\n\
     wins survive on a single-core host where extra worker domains cannot\n\
     help; stealing only changes wall clock, never verdicts or labels."
