(* E15 — extension: parallel pending-frontier replay with the memoizing
   solver cache.  Not in the paper; measures what the engine rework buys.

   Three configurations per workload: sequential with the cache off (the
   seed engine), sequential with the cache on, and a multi-domain worker
   pool with the cache on.  Every configuration must reach the same
   reproduction verdict — scheduling may change which crashing input is
   found first, never whether one is found.  The workloads are the
   solver-heavy ones: the coreutils ESD-style searches (no branch log at
   all, so the pending frontier is widest) and a guided µServer replay. *)

let sprintf = Printf.sprintf

type case = {
  cname : string;
  prog : Minic.Program.t;
  plan : Instrument.Plan.t;
  report : Instrument.Report.t;
  budget : Concolic.Engine.budget;
}

(* ESD-style search: crash report with an empty instrumentation plan, so
   replay is pure symbolic search — the E5b setting, replayed here under
   the three engine configurations. *)
let coreutils_case (c : Ctx.t) util =
  let e = Workloads.Coreutils.find util in
  let prog = Lazy.force e.prog in
  let none =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.No_instrumentation
  in
  let _, report =
    Bugrepro.Pipeline.field_run_report ~plan:none
      (Workloads.Coreutils.crash_scenario e)
  in
  Option.map
    (fun report ->
      {
        cname = util ^ " (no log)";
        prog;
        plan = none;
        report;
        budget =
          { (Ctx.replay_budget c) with max_time_s = 3.0 *. c.replay_time_s };
      })
    report

(* µServer experiment 1 under the static plan: the Table 3 setting with a
   real branch log, to confirm guided replay keeps its verdict (and its
   speed) when the engine runs parallel. *)
let userver_case (c : Ctx.t) =
  let prog = Lazy.force Workloads.Userver.prog in
  let static = Staticanalysis.Static.analyze ~analyze_lib:false prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      ~static:static.labels Instrument.Methods.Static
  in
  let sc =
    Workloads.Userver.experiment_scenario (Workloads.Userver.experiment 1)
  in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  Option.map
    (fun report ->
      { cname = "userver exp 1 (static)"; prog; plan; report;
        budget = Ctx.replay_budget c })
    report

let hit_rate_string (stats : Replay.Guided.stats) =
  match stats.cache with
  | None -> "off"
  | Some s ->
      sprintf "%.0f%% (%d/%d)"
        (100.0 *. Solver.Cache.hit_rate s)
        s.hits (s.hits + s.misses)

let e15 (c : Ctx.t) =
  let par_jobs = if c.jobs > 1 then c.jobs else 4 in
  Util.section ~id:"E15" ~paper:"extension"
    (sprintf
       "Parallel replay + solver cache: sequential baseline vs %d worker \
        domains"
       par_jobs);
  let configs =
    [
      ("jobs=1, cache off", 1, false);
      ("jobs=1, cache on", 1, true);
      (sprintf "jobs=%d, cache on" par_jobs, par_jobs, true);
    ]
  in
  let cases =
    List.filter_map Fun.id
      [
        coreutils_case c "paste";
        coreutils_case c "mkdir";
        userver_case c;
      ]
  in
  let rows = ref [] in
  let all_agree = ref true in
  List.iter
    (fun case ->
      let baseline = ref nan in
      let verdicts = ref [] in
      List.iter
        (fun (cfg, jobs, cache) ->
          let (result, stats), wall =
            Util.time_call (fun () ->
                Bugrepro.Pipeline.Run.reproduce
                  Bugrepro.Pipeline.Config.(
                    Ctx.pipeline_config c
                    |> with_budget ~replay:case.budget
                    |> with_jobs jobs |> with_solver_cache cache)
                  ~prog:case.prog ~plan:case.plan case.report)
          in
          if Float.is_nan !baseline then baseline := wall;
          let speedup = !baseline /. wall in
          verdicts := Replay.Guided.reproduced result :: !verdicts;
          let key =
            sprintf "%s/%s" case.cname
              (sprintf "j%d%s" jobs (if cache then "+cache" else ""))
          in
          Util.record_metric ~experiment:"E15" (key ^ "/seconds") wall;
          Util.record_metric ~experiment:"E15" (key ^ "/speedup") speedup;
          (match stats.cache with
          | Some s ->
              Util.record_metric ~experiment:"E15" (key ^ "/hit_rate")
                (Solver.Cache.hit_rate s)
          | None -> ());
          rows :=
            [
              case.cname;
              cfg;
              Util.seconds wall;
              sprintf "%.2fx" speedup;
              hit_rate_string stats;
              (match result with
              | Replay.Guided.Reproduced r ->
                  sprintf "reproduced (%d runs)" r.runs
              | Replay.Guided.Not_reproduced r ->
                  sprintf "NOT reproduced (%d runs)" r.runs);
            ]
            :: !rows)
        configs;
      (match !verdicts with
      | v :: vs when not (List.for_all (Bool.equal v) vs) ->
          all_agree := false;
          Printf.printf "!! verdict mismatch across configurations on %s\n"
            case.cname
      | _ -> ()))
    cases;
  Util.table
    ([ "workload"; "configuration"; "wall clock"; "speedup"; "cache hits";
       "verdict" ]
    :: List.rev !rows);
  Util.record_metric ~experiment:"E15" "verdicts_agree"
    (if !all_agree then 1.0 else 0.0);
  Printf.printf
    "verdict parity across configurations: %s\n"
    (if !all_agree then "OK" else "MISMATCH");

  (* exploration throughput: the same fixed run budget drained by one
     domain vs a pool, on the mkdir analysis scenario (many pendings).
     Label maps must match — the sticky rule commutes. *)
  let e = Workloads.Coreutils.find "mkdir" in
  let sc () = Workloads.Coreutils.analysis_scenario e in
  let budget =
    { Concolic.Engine.max_runs = c.hc_runs; max_time_s = c.analysis_time_s }
  in
  let seq =
    Concolic.Dynamic.analyze ~budget ~jobs:1 ~telemetry:c.telemetry (sc ())
  in
  let par =
    Concolic.Dynamic.analyze ~budget ~jobs:par_jobs ~telemetry:c.telemetry
      (sc ())
  in
  let rate (r : Concolic.Dynamic.result) =
    if r.elapsed_s > 0.0 then float_of_int r.runs /. r.elapsed_s else 0.0
  in
  Util.table
    [
      [ "exploration"; "runs"; "elapsed"; "runs/s"; "coverage" ];
      [ "jobs=1"; string_of_int seq.runs; Util.seconds seq.elapsed_s;
        sprintf "%.0f" (rate seq); sprintf "%.0f%%" (100.0 *. seq.coverage) ];
      [ sprintf "jobs=%d" par_jobs; string_of_int par.runs;
        Util.seconds par.elapsed_s; sprintf "%.0f" (rate par);
        sprintf "%.0f%%" (100.0 *. par.coverage) ];
    ];
  Util.record_metric ~experiment:"E15" "explore/j1_runs_per_s" (rate seq);
  Util.record_metric ~experiment:"E15"
    (sprintf "explore/j%d_runs_per_s" par_jobs)
    (rate par);
  Printf.printf "label maps identical: %b\n" (seq.labels = par.labels);
  print_endline
    "expected shape: the cache alone speeds up the no-log searches (sibling\n\
     pendings share long constraint prefixes); extra worker domains help\n\
     only when the host has spare cores — on a single-core host the\n\
     parallel row should merely stay within noise of sequential, with the\n\
     same verdicts."
