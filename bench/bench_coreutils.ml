(* E3/E4/E5 — the §5.2 coreutils experiments: Figure 1 (branch behaviour of
   mkdir), Figure 2 (instrumentation CPU time), Table 1 (replay times). *)

let analysis_cache : (string, Bugrepro.Pipeline.analysis) Hashtbl.t = Hashtbl.create 8

let analysis (c : Ctx.t) (e : Workloads.Coreutils.entry) =
  match Hashtbl.find_opt analysis_cache e.util with
  | Some a -> a
  | None ->
      let a =
        Bugrepro.Pipeline.Run.analyze (Ctx.pipeline_config c)
          ~test_scenario:(Workloads.Coreutils.analysis_scenario e)
          (Lazy.force e.prog)
      in
      Hashtbl.replace analysis_cache e.util a;
      a

(* Figure 1: per-branch-location execution counts for a sample run of
   mkdir; black bars (symbolic) vs gray bars (all executions). *)
let e3 (c : Ctx.t) =
  ignore c;
  Util.section ~id:"E3" ~paper:"Figure 1"
    "Branch executions in a sample run of mkdir (# = all, S = symbolic)";
  let e = Workloads.Coreutils.find "mkdir" in
  let sc =
    Concolic.Scenario.make ~name:"mkdir-fig1"
      ~args:[ "-p"; "-m"; "755"; "deep/dir/tree" ]
      (Lazy.force e.prog)
  in
  let stats = Bugrepro.Pipeline.measure_branch_behaviour sc in
  let max_v =
    Array.fold_left max 1 stats.total_execs |> float_of_int
  in
  let rows = ref [] in
  Array.iteri
    (fun bid total ->
      if total > 0 then begin
        let sym = stats.symbolic_execs.(bid) in
        let info = Minic.Program.branch_info sc.prog bid in
        rows :=
          [
            Printf.sprintf "b%03d%s" bid (if info.bis_lib then " (lib)" else "");
            string_of_int total;
            string_of_int sym;
            Util.bar ~max_width:30 ~max_value:max_v (float_of_int total)
            ^ (if sym > 0 then " S" else "");
          ]
          :: !rows
      end)
    stats.total_execs;
  Util.table ([ "branch"; "execs"; "symbolic"; "profile" ] :: List.rev !rows);
  let total = Array.fold_left ( + ) 0 stats.total_execs in
  let sym = Array.fold_left ( + ) 0 stats.symbolic_execs in
  let mixed = ref 0 and locs = ref 0 in
  Array.iteri
    (fun bid t ->
      if t > 0 then begin
        incr locs;
        let s = stats.symbolic_execs.(bid) in
        if s > 0 && s < t then incr mixed
      end)
    stats.total_execs;
  Printf.printf
    "%d branch executions, %d symbolic (%.1f%%); %d/%d locations are mixed\n\
     (executed both symbolically and concretely) — the paper's two\n\
     assumptions hold when this count is small.\n"
    total sym
    (100.0 *. float_of_int sym /. float_of_int (max total 1))
    !mixed !locs

(* Figure 2: CPU time of mkdir under the four configurations. *)
let e4 (c : Ctx.t) =
  Util.section ~id:"E4" ~paper:"Figure 2"
    "CPU time of mkdir, normalised to the non-instrumented version";
  let e = Workloads.Coreutils.find "mkdir" in
  let a = analysis c e in
  let sc = Workloads.Coreutils.benign_scenario e in
  let baseline =
    (Instrument.Field_run.run
       ~plan:(Bugrepro.Pipeline.plan a Instrument.Methods.No_instrumentation)
       sc)
      .cost
      .instr
  in
  let rows =
    List.map
      (fun meth ->
        let plan = Bugrepro.Pipeline.plan a meth in
        let r = Instrument.Field_run.run ~plan sc in
        [
          Instrument.Methods.to_string meth;
          string_of_int plan.n_instrumented;
          Util.pct ~baseline r.cost.instr;
          Util.bar ~max_width:30 ~max_value:200.0
            (100.0 *. float_of_int r.cost.instr /. float_of_int baseline);
        ])
      Instrument.Methods.instrumented
  in
  Util.table ([ "config"; "instrumented"; "cpu time"; "" ] :: rows);
  Util.elision_curve ~experiment:"E4" ~prog:(Lazy.force e.prog)
    ~plan:(Bugrepro.Pipeline.plan a Instrument.Methods.Dynamic_static)
    sc;
  print_endline
    "expected shape: dynamic / dynamic+static / static nearly identical\n\
     (the analyses are accurate on these small programs); all-branches slowest."

(* Table 1: replay time for the four coreutils crash bugs. *)
let e5 (c : Ctx.t) =
  Util.section ~id:"E5" ~paper:"Table 1"
    "Time to replay a real crash bug in four coreutils programs";
  let rows =
    List.map
      (fun (e : Workloads.Coreutils.entry) ->
        let a = analysis c e in
        let prog = Lazy.force e.prog in
        let crash_sc = Workloads.Coreutils.crash_scenario e in
        let cells =
          List.map
            (fun meth ->
              let cfg = Ctx.pipeline_config c in
              let plan = Bugrepro.Pipeline.Run.plan cfg a meth in
              let _, report =
                Bugrepro.Pipeline.Run.field_run_report cfg ~plan crash_sc
              in
              match report with
              | None -> "no crash!"
              | Some report ->
                  let result, _ =
                    Bugrepro.Pipeline.Run.reproduce cfg ~prog ~plan report
                  in
                  Util.verdict_string (Util.replay_verdict result))
            Instrument.Methods.instrumented
        in
        e.util :: cells)
      Workloads.Coreutils.catalog
  in
  Util.table
    (("program"
     :: List.map Instrument.Methods.to_string Instrument.Methods.instrumented)
    :: rows);
  print_endline
    "expected shape: all four bugs replay quickly under every configuration\n\
     (paper: 1-1.5 s for all four instrumented configurations).";
  (* the paper's ESD comparison: ESD reproduces these bugs with *no* runtime
     logging, by pure symbolic search from the crash report — our equivalent
     is replay under the empty (none) plan.  Paper: ESD took 10-15 s vs
     their 1-1.5 s. *)
  let esd_rows =
    List.map
      (fun (e : Workloads.Coreutils.entry) ->
        let prog = Lazy.force e.prog in
        let crash_sc = Workloads.Coreutils.crash_scenario e in
        let none =
          Instrument.Plan.make
            ~nbranches:(Minic.Program.nbranches prog)
            Instrument.Methods.No_instrumentation
        in
        let _, report = Bugrepro.Pipeline.field_run_report ~plan:none crash_sc in
        match report with
        | None -> [ e.util; "no crash" ]
        | Some report ->
            let result, _ =
              Bugrepro.Pipeline.reproduce
                ~budget:{ (Ctx.replay_budget c) with max_time_s = 3.0 *. c.replay_time_s }
                ~jobs:c.jobs ~solver_cache:c.solver_cache ~prog ~plan:none
                report
            in
            [ e.util; Util.verdict_string (Util.replay_verdict result) ])
      Workloads.Coreutils.catalog
  in
  Util.section ~id:"E5b" ~paper:"§5.2 (ESD comparison)"
    "Pure symbolic search with no branch log (the ESD-style baseline)";
  Util.table ([ "program"; "search time (no log at all)" ] :: esd_rows);
  print_endline
    "expected shape: searching without any log is much slower than guided\n\
     replay (the paper reports 10-15 s for ESD vs 1-1.5 s guided) — and can\n\
     fail entirely on deeper bugs."
