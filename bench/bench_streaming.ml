(* E17 — extension: the streaming triage service under sustained load.
   Not in the paper; measures the long-running ingestion tier (DESIGN.md
   §5i) end to end: a seeded fleet of crashing clients
   (Workloads.Report_gen) pours thousands of reports — a seeded fraction
   torn mid-log — into a live Triage.Service behind its bounded queue,
   then the service is killed mid-stream and a second incarnation
   rebuilds every crash bucket from the persistent index before
   draining the replay backlog sequentially and on a worker pool.

   Headline metrics: sustained ingestion throughput (ingest_rate,
   reports/sec — clustering, salvage, window analytics and index
   persistence all on the hot path), restart recovery throughput
   (recovery_rate), and the jobs=1 vs jobs=N drain curve.  Whatever the
   worker count, the two drains read the same index and must render
   byte-identical timing-stripped summaries. *)

let sprintf = Printf.sprintf

module Service = Triage.Service
module Report = Instrument.Report

(* a scratch directory for the persistent index; one flat level *)
let fresh_dir () =
  let f = Filename.temp_file "bench-e17" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let e17 (c : Ctx.t) =
  let par_jobs = if c.jobs > 1 then c.jobs else 4 in
  let n = if c.quick then 1_000 else 5_000 in
  Util.section ~id:"E17" ~paper:"extension"
    (sprintf
       "Streaming triage service: %d-report ingestion, restart recovery, \
        drain jobs=1 vs jobs=%d"
       n par_jobs);
  let cfg = Ctx.pipeline_config c in
  let gen = Workloads.Report_gen.make ~quick:c.quick ~config:cfg () in
  let resolve (cl : Triage.Cluster.t) =
    let r = cl.Triage.Cluster.representative.Triage.Ingest.report in
    Workloads.Report_gen.plan_for gen ~program:r.Report.program
      ~meth:r.Report.method_used
  in
  (* Run-bounded replay: huge time allowances, modest run caps, and a
     sequential search per course.  Wall-clock-bounded rungs would make
     the drain outcome depend on how much CPU each worker got — under a
     4-worker drain every concurrent search sees ~1/4 the CPU, and a
     borderline cluster flips reproduced→timed_out.  With run-bounded
     rungs the outcome depends only on logical run counts, so the jobs=1
     and jobs=N drains are byte-comparable; parallelism comes from
     draining distinct clusters concurrently. *)
  let policy jobs =
    let unbounded = 3600.0 in
    {
      (Triage.Sched.policy_of_config cfg) with
      Triage.Sched.ladder =
        [
          { Concolic.Engine.max_runs = 60; max_time_s = unbounded };
          { Concolic.Engine.max_runs = 400; max_time_s = unbounded };
        ];
      jobs;
      final_rung_jobs = 1;
      deadline_s = unbounded;
    }
  in
  (* record the base crashes up front so ingestion timing measures the
     service, not the generator's one-time analyses *)
  let reports, gen_s =
    Util.time_call (fun () ->
        Workloads.Report_gen.stream gen ~seed:cfg.seed ~clients:100
          ~torn_pct:0.05 n)
  in
  Printf.printf "%d seeded reports over %d bases (%.1f%% torn) in %s\n" n
    (List.length (Workloads.Report_gen.bases gen))
    (100.0
    *. float_of_int
         (List.length (List.filter (fun r -> r.Workloads.Report_gen.torn) reports))
    /. float_of_int (max 1 n))
    (Util.seconds gen_s);
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let config jobs =
        {
          Service.default_config with
          Service.policy = policy jobs;
          queue_capacity = 512;
          drop = Service.Drop_oldest;
          burst = 64;
          window = 512;
          eager = false;
          index_dir = Some dir;
        }
      in
      let open_service jobs =
        match Service.open_ ~config:(config jobs) ~telemetry:c.telemetry
                ~resolve ()
        with
        | Ok svc -> svc
        | Error e -> failwith ("E17: " ^ Triage.Index.error_to_string e)
      in
      (* phase 1 — sustained ingestion: submit everything, ticking every
         32 submissions (the shape `bugrepro serve` runs), then flush *)
      let svc = open_service 1 in
      let ingest () =
        List.iteri
          (fun i r ->
            ignore
              (Service.submit svc ~path:r.Workloads.Report_gen.path
                 r.Workloads.Report_gen.wire);
            if i mod 32 = 31 then ignore (Service.tick svc))
          reports;
        while Service.queue_depth svc > 0 do
          ignore (Service.tick svc)
        done
      in
      let (), ingest_s = Util.time_call ingest in
      let snap = Service.snapshot svc in
      Service.close svc;
      let ingest_rate =
        if ingest_s > 0.0 then float_of_int n /. ingest_s else 0.0
      in
      (* phase 2 — the service dies without draining; a second incarnation
         rebuilds every bucket from the index *)
      let reopen jobs = Util.time_call (fun () -> open_service jobs) in
      let svc1, recovery_s = reopen 1 in
      let rsnap = Service.snapshot svc1 in
      let recovery_rate =
        if recovery_s > 0.0 then
          float_of_int rsnap.Service.processed /. recovery_s
        else 0.0
      in
      (* phase 3 — drain the replay backlog, sequentially and on a pool;
         both incarnations reload the same index, so the timing-stripped
         summaries must be byte-identical *)
      let s1, drain1_s = Util.time_call (fun () -> Service.drain svc1) in
      Service.close svc1;
      let svcN, _ = reopen par_jobs in
      let sN, drainN_s = Util.time_call (fun () -> Service.drain svcN) in
      Service.close svcN;
      let speedup = if drainN_s > 0.0 then drain1_s /. drainN_s else 0.0 in
      let deterministic =
        Triage.Summary.to_json ~timing:false s1
        = Triage.Summary.to_json ~timing:false sN
      in
      Util.table
        [
          [ "phase"; "reports"; "wall clock"; "reports/sec" ];
          [
            "ingest (cluster+index+window)";
            string_of_int snap.Service.processed;
            Util.seconds ingest_s;
            sprintf "%.0f" ingest_rate;
          ];
          [
            "restart recovery";
            string_of_int rsnap.Service.processed;
            Util.seconds recovery_s;
            sprintf "%.0f" recovery_rate;
          ];
          [
            "drain jobs=1";
            string_of_int s1.Triage.Summary.reports;
            Util.seconds drain1_s;
            "-";
          ];
          [
            sprintf "drain jobs=%d" par_jobs;
            string_of_int sN.Triage.Summary.reports;
            Util.seconds drainN_s;
            "-";
          ];
        ];
      Printf.printf
        "queue: %d dropped of %d submitted (capacity %d, drop-oldest); %d \
         salvaged; %d clusters; dedup %.4f\n"
        snap.Service.dropped snap.Service.submitted 512 s1.Triage.Summary.salvaged
        (List.length s1.Triage.Summary.clusters)
        s1.Triage.Summary.dedup_ratio;
      Printf.printf "summary parity across worker counts: %s\n"
        (if deterministic then "OK" else "MISMATCH");
      let m k v = Util.record_metric ~experiment:"E17" k v in
      m "reports" (float_of_int n);
      m "ingest_rate" ingest_rate;
      m "ingest/seconds" ingest_s;
      m "dropped" (float_of_int snap.Service.dropped);
      m "salvage_rate"
        (float_of_int s1.Triage.Summary.salvaged
        /. float_of_int (max 1 s1.Triage.Summary.reports));
      m "dedup_ratio" s1.Triage.Summary.dedup_ratio;
      m "clusters" (float_of_int (List.length s1.Triage.Summary.clusters));
      m "recovered" (float_of_int rsnap.Service.processed);
      m "recovery_rate" recovery_rate;
      m "reproduced"
        (float_of_int
           (s1.Triage.Summary.reproduced + s1.Triage.Summary.salvaged_reproduced));
      m "j1/seconds" drain1_s;
      m (sprintf "j%d/seconds" par_jobs) drainN_s;
      m "speedup" speedup;
      m "summary_deterministic" (if deterministic then 1.0 else 0.0);
      print_endline
        "expected shape: ingestion sustains tens of thousands of \
         reports/sec\n\
         because the hot path is clustering, not replay (one \
         representative per\n\
         distinct crash is replayed, at drain); a restart rebuilds every \
         bucket\n\
         from the index at reload speed; and the run-bounded drain \
         renders a\n\
         byte-identical timing-stripped summary whatever the worker \
         count (the\n\
         pool only pays off once the backlog outgrows the quick preset's \
         handful\n\
         of clusters).")
