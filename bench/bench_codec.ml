(* E18 — extension: online branch-log encoding (wire v4).

   The streaming {!Instrument.Codec} encodes the branch log token by token
   as the field run produces bits, with a fixed preallocated buffer and no
   per-probe allocation; wire v4 ships the token stream natively.  This
   experiment pits that online stream against the offline best-of-three
   {!Instrument.Compress} pass (which sees the whole log at once) and
   against the raw bitvector, then prices the encoder on the hot path
   against the uninstrumented baseline.

   On loop-heavy workloads — where the log is dominated by short-period
   branch patterns the codec's match tokens collapse — the assertion is
   hard: encoded size must not exceed the offline compressor's output
   (plus a constant 8-byte slack: tokens are byte-granular while the
   offline Rle coder is bit-granular, so on a log that collapses to a
   handful of bytes the stream can trail by a token header or two) and
   must undercut the raw log by at least 10x.  Workloads whose redundancy
   the 8-bit match window cannot reach — µServer's per-request repeats
   recur at periods of hundreds of bits, diff's equal-line scans produce
   runs below the 16-bit match threshold — are reported for contrast but
   not gated. *)

let sprintf = Printf.sprintf

type case = {
  k_name : string;
  k_sc : Concolic.Scenario.t;
  k_loop_heavy : bool;
      (* gate: encoded <= offline compressed and >= 10x below raw *)
}

let cases (c : Ctx.t) =
  let a_txt, b_txt =
    Workloads.Diffutil.file_pair ~seed:5 ~lines:16 ~width:16 ~edits:3 ()
  in
  [
    {
      k_name = "counter loop";
      k_sc = Workloads.Microbench.counter_loop ~iterations:c.loop_iterations ();
      k_loop_heavy = true;
    };
    {
      k_name = "counter loop (1/4 scale)";
      k_sc =
        Workloads.Microbench.counter_loop ~iterations:(c.loop_iterations / 4) ();
      k_loop_heavy = true;
    };
    {
      k_name = "diff";
      k_sc =
        Workloads.Diffutil.scenario ~name:"e18-diff" ~snapshot:false
          ~file_a:a_txt ~file_b:b_txt ();
      k_loop_heavy = false;
    };
    {
      k_name = "µServer, static workload";
      k_sc =
        Workloads.Userver.scenario ~name:"e18s"
          (List.init
             (max 50 (c.requests / 2))
             (fun _ -> Workloads.Http_gen.tiny_get));
      k_loop_heavy = false;
    };
  ]

let all_plan sc =
  Instrument.Plan.make
    ~nbranches:(Minic.Program.nbranches sc.Concolic.Scenario.prog)
    Instrument.Methods.All_branches

let e18 (c : Ctx.t) =
  Util.section ~id:"E18" ~paper:"extension"
    "Online branch-log encoding (wire v4) vs offline compression";
  let metric = Util.record_metric ~experiment:"E18" in
  let violations = ref [] in
  let rows =
    List.map
      (fun k ->
        let r = Instrument.Field_run.run ~plan:(all_plan k.k_sc) k.k_sc in
        let raw_log = r.Instrument.Field_run.branch_log in
        let raw_bytes = Instrument.Branch_log.size_bytes raw_log in
        let comp = Instrument.Compress.compress raw_log in
        let comp_bytes = Instrument.Compress.size_bytes comp in
        let enc =
          match r.Instrument.Field_run.encoded_log with
          | Some e -> e
          | None -> failwith (k.k_name ^ ": field run did not encode")
        in
        (* the shipped stream must decode back to the logged bits — the
           size comparison is only meaningful for a faithful encoding *)
        (match Instrument.Codec.decode enc with
        | Ok l when l.Instrument.Branch_log.bytes = raw_log.bytes -> ()
        | Ok _ -> failwith (k.k_name ^ ": encoded stream decodes to other bits")
        | Error m -> failwith (k.k_name ^ ": encoded stream invalid: " ^ m));
        let enc_bytes = Instrument.Codec.size_bytes enc in
        let vs_raw =
          if enc_bytes = 0 then infinity
          else float_of_int raw_bytes /. float_of_int enc_bytes
        in
        if k.k_loop_heavy then begin
          (* byte-granular tokens vs the bit-granular offline coder: allow
             a constant slack of two token headers on collapsed logs *)
          if enc_bytes > comp_bytes + 8 then
            violations :=
              sprintf "%s: online %d B exceeds offline %d B (+8 slack)"
                k.k_name enc_bytes comp_bytes
              :: !violations;
          if float_of_int raw_bytes < 10.0 *. float_of_int enc_bytes then
            violations :=
              sprintf "%s: online %d B is under 10x below raw %d B" k.k_name
                enc_bytes raw_bytes
              :: !violations
        end;
        let slug =
          String.map
            (function ' ' | ',' | '(' | ')' | '/' -> '-' | ch -> ch)
            k.k_name
        in
        metric (slug ^ "/raw_bytes") (float_of_int raw_bytes);
        metric (slug ^ "/encoded_bytes") (float_of_int enc_bytes);
        metric (slug ^ "/compressed_bytes") (float_of_int comp_bytes);
        metric (slug ^ "/encoded_vs_raw") vs_raw;
        [
          k.k_name;
          string_of_int raw_log.Instrument.Branch_log.nbits;
          string_of_int raw_bytes;
          string_of_int enc_bytes;
          string_of_int comp_bytes;
          (if vs_raw = infinity then Util.infinity_symbol
           else sprintf "%.1fx" vs_raw);
          (if k.k_loop_heavy then "yes" else "no");
        ])
      (cases c)
  in
  Util.table
    ([
       [ "workload"; "bits"; "raw B"; "online enc B"; "offline comp B";
         "enc vs raw"; "gated" ];
     ]
    @ rows);
  (* Hot-path price: per-branch instruction cost is identical with the
     encoder on or off (the cost model charges the probe, not the codec),
     so the encoder's price is wall clock only — measured against the
     uninstrumented baseline, e1-style. *)
  let sc = Workloads.Microbench.counter_loop ~iterations:c.loop_iterations () in
  let n = Minic.Program.nbranches sc.Concolic.Scenario.prog in
  let plan m = Instrument.Plan.make ~nbranches:n m in
  let none =
    Instrument.Field_run.run
      ~plan:(plan Instrument.Methods.No_instrumentation)
      sc
  in
  let all_off =
    Instrument.Field_run.run ~encode:false
      ~plan:(plan Instrument.Methods.All_branches)
      sc
  in
  let all_on =
    Instrument.Field_run.run ~plan:(plan Instrument.Methods.All_branches) sc
  in
  if all_on.cost.instr <> all_off.cost.instr then
    violations :=
      sprintf
        "encoder changed the modelled instruction cost: %d (on) vs %d (off)"
        all_on.cost.instr all_off.cost.instr
      :: !violations;
  let per_branch (r : Instrument.Field_run.result) =
    if r.cost.logged_branches = 0 then 0.0
    else
      float_of_int (r.cost.instr - none.cost.instr)
      /. float_of_int r.cost.logged_branches
  in
  Printf.printf
    "per-branch cost vs uninstrumented: %.1f instructions (encode on), %.1f \
     (encode off)\n"
    (per_branch all_on) (per_branch all_off);
  metric "per_branch_instr_encode_on" (per_branch all_on);
  metric "per_branch_instr_encode_off" (per_branch all_off);
  if not c.quick then begin
    let small = Workloads.Microbench.counter_loop ~iterations:5_000 () in
    let sn = Minic.Program.nbranches small.Concolic.Scenario.prog in
    let run ?encode m () =
      ignore
        (Instrument.Field_run.run ?encode
           ~plan:(Instrument.Plan.make ~nbranches:sn m)
           small)
    in
    let times =
      Bech.measure_ns
        [
          ("none", run Instrument.Methods.No_instrumentation);
          ("all/enc-off", run ~encode:false Instrument.Methods.All_branches);
          ("all/enc-on", run Instrument.Methods.All_branches);
        ]
    in
    match
      ( List.assoc_opt "none" times,
        List.assoc_opt "all/enc-off" times,
        List.assoc_opt "all/enc-on" times )
    with
    | Some tn, Some toff, Some ton ->
        Printf.printf
          "wall clock (bechamel, 5k iterations): none %.2f ms, logging %.2f \
           ms, logging+encoding %.2f ms (encoder adds %.0f%% over \
           uninstrumented)\n"
          (tn /. 1e6) (toff /. 1e6) (ton /. 1e6)
          (100.0 *. (ton -. toff) /. tn);
        metric "encoder_wall_pct_of_baseline" (100.0 *. (ton -. toff) /. tn)
    | _ -> ()
  end;
  match !violations with
  | [] ->
      print_endline
        "expected shape: on the loop-heavy workloads the online token stream\n\
         is at least 10x below the raw bitvector and within a token header\n\
         or two of the offline compressor, at unchanged per-branch\n\
         instruction cost — the user site streams, the developer site still\n\
         decodes exactly the logged bits."
  | vs ->
      failwith
        ("E18: online-encoding bounds violated:\n  " ^ String.concat "\n  " vs)
