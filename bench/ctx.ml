(* Benchmark-harness configuration: scaling knobs shared by every
   experiment.  The paper's absolute budgets (1 h of symbolic execution, 1 h
   of replay, 5,000 HTTP requests, 1e9 loop iterations) are scaled to
   interpreter speed; `--full` restores larger values. *)

type t = {
  quick : bool;
  loop_iterations : int;  (* E1: paper uses 1e9 *)
  requests : int;  (* E6/E8: paper uses 5,000 *)
  lc_runs : int;  (* dynamic analysis LC budget (exploration runs) *)
  hc_runs : int;  (* dynamic analysis HC budget *)
  analysis_time_s : float;
  replay_time_s : float;  (* the paper's one-hour replay cut-off *)
  replay_runs : int;
  only : string list;  (* experiment ids to run; [] = all *)
  jobs : int;  (* worker domains for exploration/replay; 1 = sequential *)
  solver_cache : bool;  (* memoizing solver cache on replay solves *)
  incremental : bool;  (* scoped incremental solver (cores + portfolio) *)
  steal : bool;  (* work-stealing sharded frontier at jobs > 1 *)
  telemetry : Telemetry.t;
      (* handle for the --trace artifact; Telemetry.disabled (every probe a
         no-op) unless the driver installed a sink *)
}

let default =
  {
    quick = false;
    loop_iterations = 200_000;
    requests = 500;
    lc_runs = 2;
    hc_runs = 150;
    analysis_time_s = 30.0;
    replay_time_s = 10.0;
    replay_runs = 20_000;
    only = [];
    jobs = 1;
    solver_cache = true;
    incremental = true;
    steal = true;
    telemetry = Telemetry.disabled;
  }

let quick =
  {
    default with
    quick = true;
    loop_iterations = 50_000;
    requests = 100;
    hc_runs = 60;
    analysis_time_s = 10.0;
    replay_time_s = 5.0;
  }

let full =
  {
    default with
    loop_iterations = 2_000_000;
    requests = 5_000;
    hc_runs = 400;
    analysis_time_s = 120.0;
    replay_time_s = 60.0;
  }

let lc_budget t = { Concolic.Engine.max_runs = t.lc_runs; max_time_s = t.analysis_time_s }
let hc_budget t = { Concolic.Engine.max_runs = t.hc_runs; max_time_s = t.analysis_time_s }

let replay_budget t =
  { Concolic.Engine.max_runs = t.replay_runs; max_time_s = t.replay_time_s }

let wants t id = t.only = [] || List.mem id t.only

(* This context as a pipeline configuration (HC analysis budget), for
   experiments that drive the Pipeline.Run API. *)
let pipeline_config (c : t) =
  Bugrepro.Pipeline.Config.(
    default
    |> with_budget ~dynamic:(hc_budget c) ~replay:(replay_budget c)
    |> with_jobs c.jobs
    |> with_solver_cache c.solver_cache
    |> with_incremental c.incremental
    |> with_steal c.steal
    |> with_telemetry c.telemetry)
