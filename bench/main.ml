(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus two ablations and the parallel-replay extension.
   See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
   paper-vs-measured results.

   Usage:
     dune exec bench/main.exe                 # default scale
     dune exec bench/main.exe -- --quick      # fast smoke pass
     dune exec bench/main.exe -- --full       # paper-scale workloads
     dune exec bench/main.exe -- --only E9,E13
     dune exec bench/main.exe -- --jobs 4 --only E15
     dune exec bench/main.exe -- --quick --json bench.json
     dune exec bench/main.exe -- --requests 2000 --replay-timeout 30 *)

let experiments : (string * string * (Ctx.t -> unit)) list =
  [
    ("E1", "§5.1 microbench 1: loop instrumentation overhead", Bench_micro.e1);
    ("E2", "§5.1 microbench 2: Listing 1 fibonacci", Bench_micro.e2);
    ("E3", "Figure 1: mkdir branch behaviour", Bench_coreutils.e3);
    ("E4", "Figure 2: mkdir CPU time", Bench_coreutils.e4);
    ("E5", "Table 1: coreutils replay times", Bench_coreutils.e5);
    ("E6", "Figure 3: µServer branch behaviour", Bench_userver.e6);
    ("E7", "Table 2: µServer instrumented locations", Bench_userver.e7);
    ("E8", "Figure 4: µServer CPU time and storage", Bench_userver.e8);
    ("E9", "Tables 3 and 4: µServer replay", Bench_userver.e9_e10);
    ("E11", "Tables 5 and 8: replay without syscall logging", Bench_userver.e11);
    ("A1", "ablation: syscall-logging overhead", Bench_userver.a1);
    ("A2", "ablation: dynamic-analysis budget sweep", Bench_userver.a2);
    ("A3", "extension: checkpointing (§6)", Bench_ext.a3);
    ("A4", "extension: branch-log compression", Bench_ext.a4);
    ("A5", "ablation: branch-prediction logging (§4)", Bench_ext.a5);
    ("A6", "extension: multithreading + schedule log (§6)", Bench_ext.a6);
    ("E12", "Figure 5: diff CPU time", Bench_diff.e12);
    ("E13", "Tables 6 and 7: diff replay", Bench_diff.e13_e14);
    ("E15", "extension: incremental solving + work-stealing replay",
     Bench_parallel.e15);
    ("E16", "extension: batch triage (salvage + dedup + scheduler)",
     Bench_triage.e16);
    ("E17", "extension: streaming triage service (ingest + restart + drain)",
     Bench_streaming.e17);
    ("E18", "extension: online branch-log encoding (wire v4)", Bench_codec.e18);
    ("E19", "extension: closed-loop adaptive instrumentation",
     Bench_adaptive.e19);
  ]

let parse_args () : Ctx.t * string option * string option * string option =
  let ctx = ref Ctx.default in
  let json = ref None in
  let trace = ref None in
  let compare = ref None in
  (* scale presets replace the budget knobs but must keep the explicit
     selections (--only/--jobs/--no-solver-cache/--no-incremental/
     --no-steal) already parsed *)
  let rescale preset =
    ctx :=
      {
        preset with
        Ctx.only = !ctx.only;
        jobs = !ctx.jobs;
        solver_cache = !ctx.solver_cache;
        incremental = !ctx.incremental;
        steal = !ctx.steal;
        telemetry = !ctx.telemetry;
      }
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        rescale Ctx.quick;
        go rest
    | "--full" :: rest ->
        rescale Ctx.full;
        go rest
    | "--only" :: ids :: rest ->
        ctx := { !ctx with only = String.split_on_char ',' ids };
        go rest
    | "--requests" :: n :: rest ->
        ctx := { !ctx with requests = int_of_string n };
        go rest
    | "--replay-timeout" :: s :: rest ->
        ctx := { !ctx with replay_time_s = float_of_string s };
        go rest
    | ("--jobs" | "-j") :: n :: rest ->
        ctx := { !ctx with jobs = max 1 (int_of_string n) };
        go rest
    | "--no-solver-cache" :: rest ->
        ctx := { !ctx with solver_cache = false };
        go rest
    | "--no-incremental" :: rest ->
        ctx := { !ctx with incremental = false };
        go rest
    | "--no-steal" :: rest ->
        ctx := { !ctx with steal = false };
        go rest
    | "--json" :: path :: rest ->
        json := Some path;
        go rest
    | "--compare" :: path :: rest ->
        compare := Some path;
        go rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        go rest
    | "--help" :: _ ->
        print_endline
          "options: --quick | --full | --only <ids> | --jobs <n> | \
           --no-solver-cache | --no-incremental | --no-steal | \
           --json <file> | --compare <baseline.json> | --trace <file> | \
           --requests <n> | --replay-timeout <s>";
        print_endline "experiments:";
        List.iter (fun (id, d, _) -> Printf.printf "  %-4s %s\n" id d) experiments;
        exit 0
    | arg :: _ ->
        Printf.eprintf "unknown option %s (try --help)\n" arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  (!ctx, !json, !trace, !compare)

let () =
  let ctx, json, trace, compare = parse_args () in
  let trace_oc = Option.map open_out trace in
  let ctx =
    match trace_oc with
    | None -> ctx
    | Some oc ->
        { ctx with telemetry = Telemetry.create ~sink:(Telemetry.Sink.jsonl oc) () }
  in
  Printf.printf
    "Reproduction benchmarks: \"Striking a New Balance Between Program\n\
     Instrumentation and Debugging Time\" (EuroSys 2011)\n";
  Printf.printf
    "scale: %s | %d requests | replay budget %.0fs | LC/HC = %d/%d analysis \
     runs | jobs %d | solver cache %s | incremental %s | steal %s\n"
    (if ctx.quick then "quick" else "default/full")
    ctx.requests ctx.replay_time_s ctx.lc_runs ctx.hc_runs ctx.jobs
    (if ctx.solver_cache then "on" else "off")
    (if ctx.incremental then "on" else "off")
    (if ctx.steal then "on" else "off");
  let t0 = Unix.gettimeofday () in
  let durations = ref [] in
  List.iter
    (fun (id, _, f) ->
      if Ctx.wants ctx id then begin
        let (), dt =
          Util.time_call (fun () ->
              Telemetry.Span.with_ ctx.telemetry ~name:("bench." ^ id)
                (fun _ -> f ctx))
        in
        durations := (id, dt) :: !durations;
        Printf.printf "[%s completed in %.1fs]\n%!" id dt
      end)
    experiments;
  Printf.printf "\nAll selected experiments done in %.1fs.\n"
    (Unix.gettimeofday () -. t0);
  (* finalize the trace artifact, then re-read and self-validate it: CI
     keeps the file only if every span closed, times are ordered and
     parents resolve *)
  (match trace_oc, trace with
  | Some oc, Some path ->
      Telemetry.Metrics.publish ctx.telemetry;
      (* fold the final counters into the JSON summary so every bench row
         can carry the trace-derived breakdown *)
      let snap = Telemetry.Counters.of_core ctx.telemetry in
      List.iter
        (fun (k, v) ->
          Util.record_metric ~experiment:"telemetry" k (float_of_int v))
        snap.Telemetry.Counters.counters;
      Telemetry.flush ctx.telemetry;
      close_out oc;
      (match Telemetry.Trace.validate_file path with
      | Ok s ->
          Printf.printf "trace written to %s (%d events, %d spans, valid)\n"
            path s.events s.spans
      | Error e ->
          Printf.eprintf "trace %s INVALID: %s\n" path e;
          exit 3)
  | _ -> ());
  (match json with
  | None -> ()
  | Some path ->
      Util.write_json_summary ~path
        ~meta:
          [
            ("scale", if ctx.quick then "quick" else "default/full");
            ("jobs", string_of_int ctx.jobs);
            ("solver_cache", if ctx.solver_cache then "on" else "off");
            ("incremental", if ctx.incremental then "on" else "off");
            ("steal", if ctx.steal then "on" else "off");
            ("requests", string_of_int ctx.requests);
            ("replay_budget_s", Printf.sprintf "%.0f" ctx.replay_time_s);
            ("trace", match trace with Some t -> t | None -> "");
          ]
        ~experiments:(List.rev !durations) ();
      Printf.printf "JSON summary written to %s\n" path);
  (* perf-regression gate: diff this run against a recorded baseline and
     fail the process on any >25% regression (see Compare for the
     direction rules; bin/refresh-baselines.sh refreshes the files) *)
  match compare with
  | None -> ()
  | Some path -> (
      match Compare.load path with
      | Error e ->
          Printf.eprintf "cannot load baseline: %s\n" e;
          exit 2
      | Ok baseline ->
          Printf.printf "\n== perf gate vs %s ==\n" path;
          let regressions =
            Compare.check ~baseline ~experiments:(List.rev !durations)
              ~metrics:(List.rev !Util.metrics)
          in
          if regressions > 0 then exit 1)
