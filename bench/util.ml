(* Shared helpers for the benchmark harness: headers, aligned tables,
   ASCII histograms (for the paper's figures), timing. *)

let section ~id ~paper title =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "%s — %s\n%s\n" id paper title;
  Printf.printf "%s\n" (String.make 78 '=')

let hline widths =
  Printf.printf "+";
  List.iter (fun w -> Printf.printf "%s+" (String.make (w + 2) '-')) widths;
  print_newline ()

(* Render an aligned table; first row is the header. *)
let table (rows : string list list) =
  match rows with
  | [] -> ()
  | header :: _ ->
      let ncols = List.length header in
      let widths =
        List.init ncols (fun c ->
            List.fold_left
              (fun w row ->
                match List.nth_opt row c with
                | Some cell -> max w (String.length cell)
                | None -> w)
              0 rows)
      in
      let print_row row =
        Printf.printf "|";
        List.iteri
          (fun c cell ->
            let w = List.nth widths c in
            Printf.printf " %-*s |" w cell)
          row;
        print_newline ()
      in
      hline widths;
      print_row header;
      hline widths;
      List.iter print_row (List.tl rows);
      hline widths

(* Horizontal bar for histograms; [scale] maps a value to a bar length. *)
let bar ?(max_width = 48) ~max_value v =
  if max_value <= 0.0 || v <= 0.0 then ""
  else
    let n = int_of_float (Float.of_int max_width *. v /. max_value) in
    String.make (max n 1) '#'

(* Log-scale bar (for Figure 3's log axis). *)
let log_bar ?(max_width = 48) ~max_value v =
  if v <= 0.0 then ""
  else
    let lv = log10 (v +. 1.0) and lm = log10 (max_value +. 1.0) in
    bar ~max_width ~max_value:lm lv

let time_call f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pct ~baseline v =
  if baseline = 0 then "n/a"
  else Printf.sprintf "%.0f%%" (100.0 *. float_of_int v /. float_of_int baseline)

let seconds s = Printf.sprintf "%.3fs" s

let infinity_symbol = "inf"

(* ------------------------------------------------------------------ *)
(* Common pipeline helpers *)

let replay_budget = ref { Concolic.Engine.max_runs = 20_000; max_time_s = 10.0 }

(* The LC/HC dynamic-analysis budgets: the paper's 1-hour vs 2-hour
   symbolic execution, scaled to exploration runs. *)
let lc_budget = ref { Concolic.Engine.max_runs = 2; max_time_s = 5.0 }
let hc_budget = ref { Concolic.Engine.max_runs = 150; max_time_s = 30.0 }

type verdictish = Done of float | Timeout

let verdict_string = function
  | Done s -> seconds s
  | Timeout -> infinity_symbol

let replay_verdict (result : Replay.Guided.result) =
  match result with
  | Replay.Guided.Reproduced r -> Done r.elapsed_s
  | Replay.Guided.Not_reproduced _ -> Timeout

(* ------------------------------------------------------------------ *)
(* Machine-readable summary (--json): experiments record named numeric
   metrics here; the driver dumps everything at exit.  CI's bench smoke job
   asserts the file parses, so the emitter below must produce strict JSON. *)

let metrics : (string * string * float) list ref = ref []

let record_metric ~experiment key value =
  metrics := (experiment, key, value) :: !metrics

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  (* JSON has no NaN/Infinity literals *)
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.abs v = Float.infinity then "null"
  else Printf.sprintf "%g" v

(* Write the whole-run summary: scale/knob metadata, per-experiment wall
   clocks, and every metric recorded via [record_metric]. *)
let write_json_summary ~path ~(meta : (string * string) list)
    ~(experiments : (string * float) list) () =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      out "%s\"%s\": \"%s\"" (if i = 0 then "" else ", ") (json_escape k)
        (json_escape v))
    meta;
  out "},\n";
  out "  \"experiments\": [";
  List.iteri
    (fun i (id, dt) ->
      out "%s\n    {\"id\": \"%s\", \"seconds\": %s}"
        (if i = 0 then "" else ",")
        (json_escape id) (json_float dt))
    experiments;
  out "\n  ],\n";
  out "  \"metrics\": [";
  List.iteri
    (fun i (experiment, key, value) ->
      out "%s\n    {\"experiment\": \"%s\", \"key\": \"%s\", \"value\": %s}"
        (if i = 0 then "" else ",")
        (json_escape experiment) (json_escape key) (json_float value))
    (List.rev !metrics);
  out "\n  ]\n";
  out "}\n";
  close_out oc
