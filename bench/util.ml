(* Shared helpers for the benchmark harness: headers, aligned tables,
   ASCII histograms (for the paper's figures), timing. *)

let section ~id ~paper title =
  Printf.printf "\n%s\n" (String.make 78 '=');
  Printf.printf "%s — %s\n%s\n" id paper title;
  Printf.printf "%s\n" (String.make 78 '=')

let hline widths =
  Printf.printf "+";
  List.iter (fun w -> Printf.printf "%s+" (String.make (w + 2) '-')) widths;
  print_newline ()

(* Render an aligned table; first row is the header. *)
let table (rows : string list list) =
  match rows with
  | [] -> ()
  | header :: _ ->
      let ncols = List.length header in
      let widths =
        List.init ncols (fun c ->
            List.fold_left
              (fun w row ->
                match List.nth_opt row c with
                | Some cell -> max w (String.length cell)
                | None -> w)
              0 rows)
      in
      let print_row row =
        Printf.printf "|";
        List.iteri
          (fun c cell ->
            let w = List.nth widths c in
            Printf.printf " %-*s |" w cell)
          row;
        print_newline ()
      in
      hline widths;
      print_row header;
      hline widths;
      List.iter print_row (List.tl rows);
      hline widths

(* Horizontal bar for histograms; [scale] maps a value to a bar length. *)
let bar ?(max_width = 48) ~max_value v =
  if max_value <= 0.0 || v <= 0.0 then ""
  else
    let n = int_of_float (Float.of_int max_width *. v /. max_value) in
    String.make (max n 1) '#'

(* Log-scale bar (for Figure 3's log axis). *)
let log_bar ?(max_width = 48) ~max_value v =
  if v <= 0.0 then ""
  else
    let lv = log10 (v +. 1.0) and lm = log10 (max_value +. 1.0) in
    bar ~max_width ~max_value:lm lv

let time_call f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pct ~baseline v =
  if baseline = 0 then "n/a"
  else Printf.sprintf "%.0f%%" (100.0 *. float_of_int v /. float_of_int baseline)

let seconds s = Printf.sprintf "%.3fs" s

let infinity_symbol = "inf"

(* ------------------------------------------------------------------ *)
(* Common pipeline helpers *)

let replay_budget = ref { Concolic.Engine.max_runs = 20_000; max_time_s = 10.0 }

(* The LC/HC dynamic-analysis budgets: the paper's 1-hour vs 2-hour
   symbolic execution, scaled to exploration runs. *)
let lc_budget = ref { Concolic.Engine.max_runs = 2; max_time_s = 5.0 }
let hc_budget = ref { Concolic.Engine.max_runs = 150; max_time_s = 30.0 }

type verdictish = Done of float | Timeout

let verdict_string = function
  | Done s -> seconds s
  | Timeout -> infinity_symbol

let replay_verdict (result : Replay.Guided.result) =
  match result with
  | Replay.Guided.Reproduced r -> Done r.elapsed_s
  | Replay.Guided.Not_reproduced _ -> Timeout

(* ------------------------------------------------------------------ *)
(* Machine-readable summary (--json): experiments record named numeric
   metrics here; the driver dumps everything at exit.  CI's bench smoke job
   asserts the file parses, so the emitter below must produce strict JSON. *)

let metrics : (string * string * float) list ref = ref []

let record_metric ~experiment key value =
  metrics := (experiment, key, value) :: !metrics

(* ------------------------------------------------------------------ *)
(* Probe-elision curve: raw vs online-encoded vs suppressed (and the
   suppressed log's encoded/compressed forms) for one plan and scenario
   (the EXPERIMENTS.md extension rows of E4/E8 and E12).  The analysis
   output is proof-checked before the refined plan is trusted; per-run
   cost and storage land as suppression/* metrics. *)

let elision_curve ~experiment ~(prog : Minic.Program.t)
    ~(plan : Instrument.Plan.t) (sc : Concolic.Scenario.t) =
  let module Sup = Staticanalysis.Suppression in
  let instrumented = plan.Instrument.Plan.instrumented in
  let sup = Sup.analyze ~instrumented prog in
  (match Sup.verify ~instrumented prog (Sup.to_table sup) with
  | Ok () -> ()
  | Error m -> failwith (experiment ^ ": suppression proof rejected: " ^ m));
  let plan_sup = Instrument.Plan.with_suppression plan sup in
  (* encode on (the default): each run yields both the raw bit view and
     the online-encoded stream the wire would ship *)
  let raw = Instrument.Field_run.run ~plan sc in
  let supr = Instrument.Field_run.run ~plan:plan_sup sc in
  let raw_log = raw.Instrument.Field_run.branch_log in
  let sup_log = supr.Instrument.Field_run.branch_log in
  let enc_bytes (r : Instrument.Field_run.result) =
    match r.Instrument.Field_run.encoded_log with
    | Some e -> Instrument.Codec.size_bytes e
    | None -> Instrument.Branch_log.size_bytes r.Instrument.Field_run.branch_log
  in
  let comp = Instrument.Compress.compress sup_log in
  let raw_comp = Instrument.Compress.compress raw_log in
  let pct_of_raw v =
    if raw_log.Instrument.Branch_log.nbits = 0 then "n/a"
    else
      Printf.sprintf "%.0f%%"
        (100.0 *. float_of_int v
        /. float_of_int raw_log.Instrument.Branch_log.nbits)
  in
  Printf.printf "probe elision on %s (%d of %d probes elided, verified):\n"
    (Instrument.Methods.to_string plan.Instrument.Plan.meth)
    (Sup.n_elided sup)
    plan.Instrument.Plan.n_instrumented;
  table
    [
      [ "log configuration"; "bits"; "of raw"; "transfer bytes"; "cpu time" ];
      [
        "raw";
        string_of_int raw_log.Instrument.Branch_log.nbits;
        "100%";
        string_of_int (Instrument.Branch_log.size_bytes raw_log);
        pct ~baseline:raw.Instrument.Field_run.cost.instr
          raw.Instrument.Field_run.cost.instr;
      ];
      [
        "online-encoded";
        string_of_int raw_log.Instrument.Branch_log.nbits;
        "100%";
        Printf.sprintf "%d (raw compresses offline to %d)" (enc_bytes raw)
          (Instrument.Compress.size_bytes raw_comp);
        pct ~baseline:raw.Instrument.Field_run.cost.instr
          raw.Instrument.Field_run.cost.instr;
      ];
      [
        "suppressed";
        string_of_int sup_log.Instrument.Branch_log.nbits;
        pct_of_raw sup_log.Instrument.Branch_log.nbits;
        string_of_int (Instrument.Branch_log.size_bytes sup_log);
        pct ~baseline:raw.Instrument.Field_run.cost.instr
          supr.Instrument.Field_run.cost.instr;
      ];
      [
        "suppressed+encoded";
        string_of_int sup_log.Instrument.Branch_log.nbits;
        pct_of_raw sup_log.Instrument.Branch_log.nbits;
        string_of_int (enc_bytes supr);
        pct ~baseline:raw.Instrument.Field_run.cost.instr
          supr.Instrument.Field_run.cost.instr;
      ];
      [
        "suppressed+compressed";
        string_of_int sup_log.Instrument.Branch_log.nbits;
        pct_of_raw sup_log.Instrument.Branch_log.nbits;
        string_of_int (Instrument.Compress.size_bytes comp);
        "-";
      ];
    ];
  let m k v = record_metric ~experiment ("suppression/" ^ k) v in
  m "elided" (float_of_int (Sup.n_elided sup));
  m "raw_bits" (float_of_int raw_log.Instrument.Branch_log.nbits);
  m "suppressed_bits" (float_of_int sup_log.Instrument.Branch_log.nbits);
  m "encoded_bytes" (float_of_int (enc_bytes raw));
  m "sup_encoded_bytes" (float_of_int (enc_bytes supr));
  m "bits_saved_pct"
    (if raw_log.Instrument.Branch_log.nbits = 0 then 0.0
     else
       100.0
       *. float_of_int
            (raw_log.Instrument.Branch_log.nbits
            - sup_log.Instrument.Branch_log.nbits)
       /. float_of_int raw_log.Instrument.Branch_log.nbits);
  m "compressed_bytes" (float_of_int (Instrument.Compress.size_bytes comp));
  m "raw_compressed_bytes"
    (float_of_int (Instrument.Compress.size_bytes raw_comp));
  m "field_cpu_delta_pct"
    (if raw.Instrument.Field_run.cost.instr = 0 then 0.0
     else
       100.0
       *. float_of_int
            (supr.Instrument.Field_run.cost.instr
            - raw.Instrument.Field_run.cost.instr)
       /. float_of_int raw.Instrument.Field_run.cost.instr)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  (* JSON has no NaN/Infinity literals *)
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.abs v = Float.infinity then "null"
  else Printf.sprintf "%g" v

(* Write the whole-run summary: scale/knob metadata, per-experiment wall
   clocks, and every metric recorded via [record_metric]. *)
let write_json_summary ~path ~(meta : (string * string) list)
    ~(experiments : (string * float) list) () =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      out "%s\"%s\": \"%s\"" (if i = 0 then "" else ", ") (json_escape k)
        (json_escape v))
    meta;
  out "},\n";
  out "  \"experiments\": [";
  List.iteri
    (fun i (id, dt) ->
      out "%s\n    {\"id\": \"%s\", \"seconds\": %s}"
        (if i = 0 then "" else ",")
        (json_escape id) (json_float dt))
    experiments;
  out "\n  ],\n";
  out "  \"metrics\": [";
  List.iteri
    (fun i (experiment, key, value) ->
      out "%s\n    {\"experiment\": \"%s\", \"key\": \"%s\", \"value\": %s}"
        (if i = 0 then "" else ",")
        (json_escape experiment) (json_escape key) (json_float value))
    (List.rev !metrics);
  out "\n  ]\n";
  out "}\n";
  close_out oc
