(* E12/E13/E14 — the §5.4 diff experiments: Figure 5 (CPU time), Table 6
   (replay times), Table 7 (symbolic branches logged / not logged). *)

let experiments () =
  [ (1, Workloads.Diffutil.experiment_1 ()); (2, Workloads.Diffutil.experiment_2 ()) ]

type analyses = {
  dynamic : Concolic.Dynamic.result;
  static : Staticanalysis.Static.result;
}

let cache : analyses option ref = ref None

(* dynamic analysis on a developer test pair: identical files, so only the
   common path is covered — reproducing the paper's low coverage (20% after
   an hour) that cripples the dynamic method on diff *)
let analyses (c : Ctx.t) =
  match !cache with
  | Some a -> a
  | None ->
      let a_txt = "alpha\nbeta\ngamma\n" in
      let sc =
        Workloads.Diffutil.scenario ~name:"diff-analysis" ~file_a:a_txt
          ~file_b:a_txt ()
      in
      let dynamic =
        Concolic.Dynamic.analyze
          ~budget:{ (Ctx.lc_budget c) with max_runs = max 2 c.lc_runs }
          sc
      in
      let static =
        Staticanalysis.Static.analyze ~analyze_lib:true
          (Lazy.force Workloads.Diffutil.prog)
      in
      let a = { dynamic; static } in
      cache := Some a;
      a

let configs (c : Ctx.t) =
  let a = analyses c in
  let n = Minic.Program.nbranches (Lazy.force Workloads.Diffutil.prog) in
  let mk ?dynamic meth =
    Instrument.Plan.make ~nbranches:n ?dynamic ~static:a.static.labels meth
  in
  [
    ("dynamic", mk ~dynamic:a.dynamic.labels Instrument.Methods.Dynamic);
    ("dyn+static", mk ~dynamic:a.dynamic.labels Instrument.Methods.Dynamic_static);
    ("static", mk Instrument.Methods.Static);
    ("all branches", mk Instrument.Methods.All_branches);
  ]

(* Figure 5: CPU time of diff under the four configurations. *)
let e12 (c : Ctx.t) =
  Util.section ~id:"E12" ~paper:"Figure 5"
    "CPU time of diff, normalised to the non-instrumented version";
  let a_txt, b_txt =
    Workloads.Diffutil.file_pair ~seed:5 ~lines:20 ~width:20 ~edits:4 ()
  in
  let sc =
    Workloads.Diffutil.scenario ~name:"diff-fig5" ~snapshot:false ~file_a:a_txt
      ~file_b:b_txt ()
  in
  let n = Minic.Program.nbranches sc.prog in
  let baseline =
    (Instrument.Field_run.run
       ~plan:(Instrument.Plan.make ~nbranches:n Instrument.Methods.No_instrumentation)
       sc)
      .cost
      .instr
  in
  let rows =
    List.map
      (fun (name, plan) ->
        let r = Instrument.Field_run.run ~plan sc in
        [
          name;
          string_of_int plan.Instrument.Plan.n_instrumented;
          Util.pct ~baseline r.cost.instr;
          Util.bar ~max_width:24 ~max_value:250.0
            (100.0 *. float_of_int r.cost.instr /. float_of_int baseline);
        ])
      (configs c)
  in
  Util.table ([ "configuration"; "instrumented"; "cpu time"; "" ] :: rows);
  (match List.assoc_opt "dyn+static" (configs c) with
  | Some plan ->
      Util.elision_curve ~experiment:"E12"
        ~prog:(Lazy.force Workloads.Diffutil.prog) ~plan sc
  | None -> ());
  print_endline
    "expected shape: dynamic and dyn+static cheapest (paper: ~35% overhead);\n\
     static close to all-branches because almost everything in diff is\n\
     input-dependent."

(* Table 6 + Table 7. *)
let e13_e14 (c : Ctx.t) =
  Util.section ~id:"E13" ~paper:"Table 6"
    (Printf.sprintf
       "diff bug reproduction times (budget %.0fs; '%s' = did not finish)"
       c.replay_time_s Util.infinity_symbol);
  let p = Lazy.force Workloads.Diffutil.prog in
  let t7 = ref [] in
  let rows =
    List.map
      (fun (id, crash_sc) ->
        let cells =
          List.map
            (fun (name, plan) ->
              let _, report = Bugrepro.Pipeline.field_run_report ~plan crash_sc in
              match report with
              | None -> "no crash"
              | Some report ->
                  let result, _ =
                    Bugrepro.Pipeline.reproduce ~budget:(Ctx.replay_budget c)
                      ~jobs:c.jobs ~solver_cache:c.solver_cache ~prog:p ~plan
                      report
                  in
                  let stats =
                    Bugrepro.Pipeline.measure_symbolic_logging ~plan crash_sc
                  in
                  t7 := (id, name, stats) :: !t7;
                  Util.verdict_string (Util.replay_verdict result))
            (configs c)
        in
        Printf.sprintf "Exp. %d" id :: cells)
      (experiments ())
  in
  Util.table (("experiment" :: List.map fst (configs c)) :: rows);
  print_endline
    "expected shape: dynamic times out (coverage too low; tens of unlogged\n\
     symbolic branch locations explode the search); the other three replay\n\
     quickly (paper: 1 s and 12 s).";
  Util.section ~id:"E14" ~paper:"Table 7"
    "diff: symbolic branch locations (and executions) logged / not logged";
  let rows =
    List.rev_map
      (fun (id, name, (s : Bugrepro.Pipeline.symbolic_logging_stats)) ->
        [
          Printf.sprintf "Exp. %d" id;
          name;
          Printf.sprintf "%d / %d" s.logged_locs s.logged_execs;
          Printf.sprintf "%d / %d" s.unlogged_locs s.unlogged_execs;
        ])
      !t7
  in
  Util.table
    ([ "experiment"; "configuration"; "logged locs/execs"; "NOT logged locs/execs" ]
    :: rows)
