(* E6-E11 + ablations — the §5.3 µServer experiments: Figure 3 (branch
   behaviour), Table 2 (instrumented branch locations, LC/HC), Figure 4
   (CPU time and storage per request), Table 3 (bug reproduction times),
   Table 4 (symbolic branches logged / not logged), Tables 5 and 8 (no
   system-call logging), plus two ablations. *)

let prog () = Lazy.force Workloads.Userver.prog

(* pre-deployment analyses, cached: dynamic at two coverage budgets (the
   paper's LC = 1 h and HC = 2 h of symbolic execution) and static with the
   library treated conservatively (the merged source was too large for
   points-to analysis, §5.3) *)
type analyses = {
  lc : Concolic.Dynamic.result;
  hc : Concolic.Dynamic.result;
  static : Staticanalysis.Static.result;  (** refined precision pipeline *)
  static_seed : Staticanalysis.Static.result;  (** unrefined baseline *)
}

let cache : analyses option ref = ref None

(* The LC and HC configurations of §5.3.  LC runs the symbolic engine
   briefly over a plain test workload (two simple GETs); HC invests more
   exploration *and* leverages the test suite (a richer httperf-style
   request mix) to boost coverage — the combination §6 "Branch coverage"
   recommends.  At our scale a single run covers most of what its workload
   reaches, so workload richness is the effective coverage knob. *)
let lc_workload () =
  Workloads.Userver.scenario ~name:"userver-test-lc"
    [ Workloads.Http_gen.tiny_get; "GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n" ]

let hc_workload () =
  Workloads.Userver.scenario ~name:"userver-test-hc"
    (Workloads.Http_gen.workload ~seed:5 12)

let test_workload (_ : Ctx.t) = lc_workload ()

let analyses (c : Ctx.t) : analyses =
  match !cache with
  | Some a -> a
  | None ->
      let lc = Concolic.Dynamic.analyze ~budget:(Ctx.lc_budget c) (lc_workload ()) in
      let hc = Concolic.Dynamic.analyze ~budget:(Ctx.hc_budget c) (hc_workload ()) in
      let static = Staticanalysis.Static.analyze ~analyze_lib:false (prog ()) in
      let static_seed =
        Staticanalysis.Static.analyze ~analyze_lib:false ~refine:false (prog ())
      in
      let a = { lc; hc; static; static_seed } in
      cache := Some a;
      a

(* the six instrumented configurations of Figure 4 / Table 3 *)
let configs (c : Ctx.t) : (string * Instrument.Plan.t) list =
  let a = analyses c in
  let n = Minic.Program.nbranches (prog ()) in
  let mk ?dynamic meth =
    Instrument.Plan.make ~nbranches:n ?dynamic ~static:a.static.labels meth
  in
  [
    ("dynamic (lc)", mk ~dynamic:a.lc.labels Instrument.Methods.Dynamic);
    ("dynamic (hc)", mk ~dynamic:a.hc.labels Instrument.Methods.Dynamic);
    ("dyn+static (lc)", mk ~dynamic:a.lc.labels Instrument.Methods.Dynamic_static);
    ("dyn+static (hc)", mk ~dynamic:a.hc.labels Instrument.Methods.Dynamic_static);
    ("static", mk Instrument.Methods.Static);
    ("all branches", mk Instrument.Methods.All_branches);
  ]

(* Figure 3: per-branch-location executions, app vs library, log scale. *)
let e6 (c : Ctx.t) =
  Util.section ~id:"E6" ~paper:"Figure 3"
    (Printf.sprintf
       "Branch executions, µServer serving %d requests (log-scale bars; S = symbolic)"
       c.requests)
  ;
  let sc =
    Workloads.Userver.scenario ~name:"userver-fig3"
      (Workloads.Http_gen.workload c.requests)
  in
  let stats = Bugrepro.Pipeline.measure_branch_behaviour sc in
  let p = sc.prog in
  let max_v = float_of_int (Array.fold_left max 1 stats.total_execs) in
  let show_row bid =
    let total = stats.total_execs.(bid) in
    if total = 0 then None
    else
      let sym = stats.symbolic_execs.(bid) in
      Some
        [
          Printf.sprintf "b%03d" bid;
          string_of_int total;
          string_of_int sym;
          Util.log_bar ~max_width:28 ~max_value:max_v (float_of_int total)
          ^ (if sym > 0 then " S" else "");
        ]
  in
  let app_rows = List.filter_map show_row (Minic.Program.app_branch_ids p) in
  let lib_rows = List.filter_map show_row (Minic.Program.lib_branch_ids p) in
  print_endline "-- branches located in the uServer (application) code --";
  Util.table ([ "branch"; "execs"; "symbolic"; "log-scale profile" ] :: app_rows);
  print_endline "-- branches located in the runtime library (uClibc analogue) --";
  Util.table ([ "branch"; "execs"; "symbolic"; "log-scale profile" ] :: lib_rows);
  let sum ids arr = List.fold_left (fun acc b -> acc + arr.(b)) 0 ids in
  let app_ids = Minic.Program.app_branch_ids p
  and lib_ids = Minic.Program.lib_branch_ids p in
  let tot_app = sum app_ids stats.total_execs
  and tot_lib = sum lib_ids stats.total_execs in
  let sym_app = sum app_ids stats.symbolic_execs
  and sym_lib = sum lib_ids stats.symbolic_execs in
  let total = tot_app + tot_lib and sym = sym_app + sym_lib in
  let sym_locs =
    Array.fold_left (fun n s -> if s > 0 then n + 1 else n) 0 stats.symbolic_execs
  in
  Printf.printf
    "%d branch executions, %d symbolic (%.0f%%), at %d symbolic branch locations.\n\
     library share: %.0f%% of all executions, %.0f%% of symbolic executions.\n\
     (paper: 18M executions, 10%% symbolic at 53 locations; 81%% in the library,\n\
     28%% of symbolic executions in the library)\n"
    total sym
    (100.0 *. float_of_int sym /. float_of_int (max total 1))
    sym_locs
    (100.0 *. float_of_int tot_lib /. float_of_int (max total 1))
    (100.0 *. float_of_int sym_lib /. float_of_int (max sym 1))

(* Table 2: number of instrumented branch locations per configuration. *)
let e7 (c : Ctx.t) =
  Util.section ~id:"E7" ~paper:"Table 2"
    "Instrumented branch locations in the µServer";
  let a = analyses c in
  let rows =
    List.map
      (fun (name, plan) ->
        [ name; string_of_int plan.Instrument.Plan.n_instrumented ])
      (configs c)
  in
  Util.table ([ "configuration"; "# instrumented branch locations" ] :: rows);
  let slc, clc, ulc = Concolic.Dynamic.count_labels a.lc in
  let shc, chc, uhc = Concolic.Dynamic.count_labels a.hc in
  Printf.printf
    "dynamic labelling: LC %d sym / %d conc / %d unvisited (coverage %.0f%%, %d runs)\n\
    \                   HC %d sym / %d conc / %d unvisited (coverage %.0f%%, %d runs)\n\
     static: %d symbolic of %d locations (library conservative)\n\
     expected shape: dynamic grows with coverage; dyn+static shrinks with\n\
     coverage; dynamic < dyn+static < static < all.\n"
    slc clc ulc
    (100.0 *. a.lc.coverage)
    a.lc.runs shc chc uhc
    (100.0 *. a.hc.coverage)
    a.hc.runs a.static.n_symbolic
    (Minic.Program.nbranches (prog ()));
  (* precision of the static labels against the HC dynamic ground truth:
     seed (unrefined) pipeline vs the refined one *)
  let p = prog () in
  let prec_seed =
    Staticanalysis.Static.precision a.static_seed p ~dynamic:a.hc.labels
  in
  let prec = Staticanalysis.Static.precision a.static p ~dynamic:a.hc.labels in
  let row name (s : Staticanalysis.Static.result)
      (r : Staticanalysis.Precision.report) =
    [
      name;
      string_of_int s.n_symbolic;
      string_of_int s.n_const_proved;
      string_of_int s.n_dead_proved;
      string_of_int r.n_spurious;
      string_of_int r.n_missed;
      Printf.sprintf "%.1f%%" (100.0 *. r.spurious_rate);
    ]
  in
  Util.table
    ([ "static pipeline"; "symbolic"; "const-proved"; "dead";
       "spurious (vs HC)"; "missed"; "spurious rate" ]
    :: row "seed (no refinement)" a.static_seed prec_seed
    :: [ row "refined (constprop+strong)" a.static prec ]);
  Printf.printf "precision.json: %s\n"
    (Staticanalysis.Precision.to_json
       { prec with Staticanalysis.Precision.entries = [||] })

(* Figure 4: CPU time and storage per request under each configuration. *)
let e8 (c : Ctx.t) =
  Util.section ~id:"E8" ~paper:"Figure 4"
    (Printf.sprintf "µServer CPU time and storage, %d requests" c.requests);
  let reqs = Workloads.Http_gen.workload c.requests in
  let sc = Workloads.Userver.scenario ~name:"userver-fig4" reqs in
  let n = Minic.Program.nbranches (prog ()) in
  let baseline =
    (Instrument.Field_run.run
       ~plan:(Instrument.Plan.make ~nbranches:n Instrument.Methods.No_instrumentation)
       sc)
      .cost
      .instr
  in
  let rows =
    List.map
      (fun (name, plan) ->
        let r = Instrument.Field_run.run ~plan sc in
        let bytes = Instrument.Field_run.storage_bytes r in
        [
          name;
          Util.pct ~baseline r.cost.instr;
          Printf.sprintf "%.1f" (float_of_int bytes /. float_of_int c.requests);
          Util.bar ~max_width:24 ~max_value:250.0
            (100.0 *. float_of_int r.cost.instr /. float_of_int baseline);
        ])
      (configs c)
  in
  Util.table ([ "configuration"; "cpu time"; "storage (bytes/request)"; "" ] :: rows);
  (match List.assoc_opt "dyn+static (hc)" (configs c) with
  | Some plan -> Util.elision_curve ~experiment:"E8" ~prog:(prog ()) ~plan sc
  | None -> ());
  print_endline
    "expected shape: all-branches worst; static only marginally better (it\n\
     instruments every library branch); dynamic and dyn+static far cheaper;\n\
     storage roughly proportional to cpu overhead (paper: ~50 bytes/request\n\
     for the dynamic configurations)."

(* Table 3 + Table 4: replay the five crash experiments under each
   configuration; report times and logged/unlogged symbolic branches. *)
let e9_e10 (c : Ctx.t) =
  Util.section ~id:"E9" ~paper:"Table 3"
    (Printf.sprintf
       "µServer bug reproduction times (budget %.0fs; '%s' = did not finish)"
       c.replay_time_s Util.infinity_symbol);
  let p = prog () in
  let t4 : (int * string * Bugrepro.Pipeline.symbolic_logging_stats) list ref =
    ref []
  in
  let rows =
    List.map
      (fun (e : Workloads.Userver.experiment) ->
        let crash_sc = Workloads.Userver.experiment_scenario e in
        let cells =
          List.map
            (fun (name, plan) ->
              let _, report = Bugrepro.Pipeline.field_run_report ~plan crash_sc in
              match report with
              | None -> "no crash"
              | Some report ->
                  let result, _ =
                    Bugrepro.Pipeline.reproduce ~budget:(Ctx.replay_budget c)
                      ~jobs:c.jobs ~solver_cache:c.solver_cache ~prog:p ~plan
                      report
                  in
                  let stats =
                    Bugrepro.Pipeline.measure_symbolic_logging ~plan crash_sc
                  in
                  t4 := (e.id, name, stats) :: !t4;
                  Util.verdict_string (Util.replay_verdict result))
            (configs c)
        in
        Printf.sprintf "Exp. %d" e.id :: cells)
      Workloads.Userver.experiments
  in
  Util.table (("experiment" :: List.map fst (configs c)) :: rows);
  print_endline
    "expected shape: all-branches and static always finish fast; dyn+static\n\
     close behind; dynamic (lc) worst, with timeouts on the experiments whose\n\
     parser paths were not covered.";
  Util.section ~id:"E10" ~paper:"Table 4"
    "Symbolic branch locations (and executions) logged / not logged";
  let rows =
    List.rev_map
      (fun (id, name, (s : Bugrepro.Pipeline.symbolic_logging_stats)) ->
        [
          Printf.sprintf "Exp. %d" id;
          name;
          Printf.sprintf "%d / %d" s.logged_locs s.logged_execs;
          Printf.sprintf "%d / %d" s.unlogged_locs s.unlogged_execs;
        ])
      !t4
  in
  Util.table
    ([ "experiment"; "configuration"; "logged locs/execs"; "NOT logged locs/execs" ]
    :: rows);
  print_endline
    "expected shape: replay time correlates with the number of unlogged\n\
     symbolic branch locations (right column); static and all-branches have 0."

(* Tables 5 and 8: replay without system-call result logging. *)
let e11 (c : Ctx.t) =
  Util.section ~id:"E11" ~paper:"Tables 5 and 8"
    "Replay without system-call logging (experiments 1 and 4)";
  let p = prog () in
  let rows =
    List.concat_map
      (fun id ->
        let e = Workloads.Userver.experiment id in
        let crash_sc = Workloads.Userver.experiment_scenario e in
        List.filter_map
          (fun (name, plan) ->
            let _, report =
              Bugrepro.Pipeline.field_run_report ~log_syscalls:false ~plan crash_sc
            in
            match report with
            | None -> None
            | Some report ->
                let result, stats =
                  Bugrepro.Pipeline.reproduce ~budget:(Ctx.replay_budget c)
                    ~jobs:c.jobs ~solver_cache:c.solver_cache ~prog:p ~plan
                    report
                in
                (* Table 8: without a syscall log, branches on syscall
                   results count as symbolic too *)
                let t8 =
                  Bugrepro.Pipeline.measure_symbolic_logging
                    ~syscall_results_symbolic:true ~plan crash_sc
                in
                Some
                  [
                    Printf.sprintf "Exp. %d" id;
                    name;
                    Util.verdict_string (Util.replay_verdict result);
                    string_of_int stats.engine.runs;
                    Printf.sprintf "%d / %d" t8.logged_locs t8.logged_execs;
                    Printf.sprintf "%d / %d" t8.unlogged_locs t8.unlogged_execs;
                  ])
          (configs c))
      [ 1; 4 ]
  in
  Util.table
    ([ "experiment"; "configuration"; "replay time"; "runs";
       "logged locs/execs"; "NOT logged locs/execs" ]
    :: rows);
  print_endline
    "expected shape: every configuration slower than with syscall logging\n\
     (compare E9: branches on read counts and ready sets are now symbolic,\n\
     so the logged/unlogged counts exceed Table 4's); the engine must search\n\
     for the syscall results."

(* Ablation: cost of logging system-call results (paper: ~0.2%). *)
let a1 (c : Ctx.t) =
  Util.section ~id:"A1" ~paper:"§5.3 (impact of logging system calls)"
    "Overhead of system-call result logging";
  let reqs = Workloads.Http_gen.workload (max 50 (c.requests / 4)) in
  let sc = Workloads.Userver.scenario ~name:"userver-a1" reqs in
  let _, plan = List.nth (configs c) 3 (* dyn+static (hc) *) in
  let with_log = Instrument.Field_run.run ~log_syscalls:true ~plan sc in
  let without = Instrument.Field_run.run ~log_syscalls:false ~plan sc in
  Util.table
    [
      [ "configuration"; "instructions"; "syscall entries" ];
      [
        "dyn+static, syscall log on";
        string_of_int with_log.cost.instr;
        (match with_log.syscall_log with
        | Some l -> string_of_int (Instrument.Syscall_log.length l)
        | None -> "0");
      ];
      [ "dyn+static, syscall log off"; string_of_int without.cost.instr; "0" ];
    ];
  Printf.printf "syscall-logging overhead: %.2f%% (paper: 0.2%%)\n"
    (100.0
    *. float_of_int (with_log.cost.instr - without.cost.instr)
    /. float_of_int without.cost.instr)

(* Ablation: dynamic-analysis budget sweep (coverage/instrumentation/replay). *)
let a2 (c : Ctx.t) =
  Util.section ~id:"A2" ~paper:"ablation (ours)"
    "Dynamic-analysis budget sweep: coverage vs instrumentation vs replay time";
  let p = prog () in
  let n = Minic.Program.nbranches p in
  let sc = test_workload c in
  let static = (analyses c).static in
  let exp1 = Workloads.Userver.experiment_scenario (Workloads.Userver.experiment 1) in
  let budgets = if c.quick then [ 1; 10; 60 ] else [ 1; 5; 20; 80; 250 ] in
  let rows =
    List.map
      (fun runs ->
        let d =
          Concolic.Dynamic.analyze
            ~budget:{ Concolic.Engine.max_runs = runs; max_time_s = c.analysis_time_s }
            sc
        in
        let plan =
          Instrument.Plan.make ~nbranches:n ~dynamic:d.labels
            ~static:static.labels Instrument.Methods.Dynamic_static
        in
        let _, report = Bugrepro.Pipeline.field_run_report ~plan exp1 in
        let verdict =
          match report with
          | None -> "no crash"
          | Some report ->
              let result, _ =
                Bugrepro.Pipeline.reproduce ~budget:(Ctx.replay_budget c) ~jobs:c.jobs
                  ~solver_cache:c.solver_cache ~prog:p ~plan report
              in
              Util.verdict_string (Util.replay_verdict result)
        in
        [
          string_of_int runs;
          Printf.sprintf "%.0f%%" (100.0 *. d.coverage);
          string_of_int plan.n_instrumented;
          verdict;
        ])
      budgets
  in
  Util.table
    ([ "analysis runs"; "coverage"; "dyn+static instrumented"; "exp1 replay" ]
    :: rows);
  print_endline
    "expected shape: more analysis budget -> higher coverage -> fewer\n\
     instrumented branches under dyn+static (static's conservative labels\n\
     get overridden), with replay time staying low."
