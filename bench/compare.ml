(* Perf-regression gate (--compare BASELINE): parse a previously recorded
   --json summary and diff the current run against it.

   Direction rules:
   - time-like entries (experiment wall clocks, metric keys ending in
     "seconds") are lower-is-better; a regression is a current value more
     than 25% above the baseline, with the baseline floored at 1.0 s so
     millisecond-scale rows cannot trip the gate on scheduler noise;
   - counter-derived ratios (keys containing "rate": cache hit rates,
     salvage rates — deterministic counts, no timing in them) are
     higher-is-better; a regression is a current value more than 25%
     below the baseline (baselines at 0 are skipped — nothing to lose);
   - timing-derived ratios ("speedup", "runs_per_s") are shown but never
     gate: both their numerator and denominator are wall-clock samples,
     and on millisecond-scale explorations the ratio swings far past any
     honest threshold while the floored "seconds" rows stay quiet;
   - everything else (counts, verdict booleans, byte sizes) is
     informational and never gates.

   The exit decision prints as an aligned table so the CI job can archive
   it as the comparison artifact.  Refresh baselines with
   bin/refresh-baselines.sh after an intentional perf change. *)

let threshold = 0.25
let time_floor_s = 1.0

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader for the strict subset Util.write_json_summary
   emits: objects, arrays, strings (with the escapes json_escape
   produces), numbers and null.  No dependency on a JSON package. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Null

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               if !pos + 4 >= n then fail "short \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
               | Some _ -> Buffer.add_char b '?'
               | None -> fail "bad \\u escape");
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else fail "bad literal"
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Num 1.0
        end
        else fail "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Num 0.0
        end
        else fail "bad literal"
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Baseline extraction: experiment wall clocks land under the pseudo-key
   "<id>/seconds" alongside the recorded metrics, so the diff below is one
   uniform key space. *)

type baseline = { entries : (string * float) list }

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let load (path : string) : (baseline, string) result =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | text -> (
      match parse_json text with
      | exception Parse e -> Error (path ^ ": " ^ e)
      | j ->
          let entries = ref [] in
          (match member "experiments" j with
          | Some (Arr rows) ->
              List.iter
                (fun row ->
                  match member "id" row, member "seconds" row with
                  | Some (Str id), Some (Num s) ->
                      entries := (id ^ "/seconds", s) :: !entries
                  | _ -> ())
                rows
          | _ -> ());
          (match member "metrics" j with
          | Some (Arr rows) ->
              List.iter
                (fun row ->
                  match
                    (member "experiment" row, member "key" row,
                     member "value" row)
                  with
                  | Some (Str e), Some (Str k), Some (Num v) ->
                      entries := (e ^ "/" ^ k, v) :: !entries
                  | _ -> ())
                rows
          | _ -> ());
          Ok { entries = List.rev !entries })

(* ------------------------------------------------------------------ *)
(* Direction classification and the diff itself *)

type direction = Lower_better | Higher_better | Informational

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let ends_with s suffix =
  let sl = String.length s and xl = String.length suffix in
  sl >= xl && String.sub s (sl - xl) xl = suffix

(* timing-derived ratios: displayed in the artifact, never gate *)
let shown_not_gated key =
  contains key "speedup" || contains key "runs_per_s"

let direction_of key =
  if ends_with key "/seconds" || ends_with key "seconds" then Lower_better
  else if contains key "runs_per_s" then Informational
  else if contains key "rate" then Higher_better
  else Informational

type verdict = Ok_v | Regressed | Improved | Skipped

let judge dir ~base ~cur =
  match dir with
  | Informational -> Skipped
  | Lower_better ->
      let floor = Float.max base time_floor_s in
      if cur > floor *. (1.0 +. threshold) then Regressed
      else if base > time_floor_s && cur < base *. (1.0 -. threshold) then
        Improved
      else Ok_v
  | Higher_better ->
      if base <= 0.0 then Skipped
      else if cur < base *. (1.0 -. threshold) then Regressed
      else if cur > base *. (1.0 +. threshold) then Improved
      else Ok_v

let verdict_string = function
  | Ok_v -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Skipped -> "-"

(* Diff the current run against [baseline]; returns the number of gating
   regressions.  [experiments] are (id, wall clock) pairs,
   [metrics] the (experiment, key, value) triples from Util. *)
let check ~(baseline : baseline) ~(experiments : (string * float) list)
    ~(metrics : (string * string * float) list) : int =
  let current =
    List.map (fun (id, s) -> (id ^ "/seconds", s)) experiments
    @ List.map (fun (e, k, v) -> (e ^ "/" ^ k, v)) metrics
  in
  let regressions = ref 0 in
  let missing = ref 0 in
  let rows = ref [] in
  List.iter
    (fun (key, base) ->
      match List.assoc_opt key current with
      | None -> incr missing
      | Some cur ->
          let dir = direction_of key in
          let v = judge dir ~base ~cur in
          if v = Regressed then incr regressions;
          (* keep the artifact readable: gate-relevant rows, plus the
             timing-derived ratios as display-only context *)
          if dir <> Informational || shown_not_gated key then
            rows :=
              [
                key;
                Printf.sprintf "%.3f" base;
                Printf.sprintf "%.3f" cur;
                (if base > 0.0 then
                   Printf.sprintf "%+.0f%%" (100.0 *. (cur -. base) /. base)
                 else "n/a");
                verdict_string v;
              ]
              :: !rows)
    baseline.entries;
  Util.table
    ([ "metric"; "baseline"; "current"; "delta"; "verdict" ]
    :: List.rev !rows);
  if !missing > 0 then
    Printf.printf
      "%d baseline entr%s not present in this run (different --only \
       selection?)\n"
      !missing
      (if !missing = 1 then "y" else "ies");
  Printf.printf "perf gate: %d regression%s (threshold %.0f%%, %.1fs floor)\n"
    !regressions
    (if !regressions = 1 then "" else "s")
    (100.0 *. threshold) time_floor_s;
  !regressions
