(* A3/A4/A5/A6 — the §6/§4 extensions quantified:

   A3: checkpointing for long-running applications (§6) — storage shipped
   and replay time when the branch log restarts at each checkpoint.

   A4: branch-log compression for transfer (§5.3 observes 10-20x with gzip).

   A5: the branch-prediction logging alternative §4 rejects — mispredicted
   branches must carry a 32-bit location, so the "savings" usually are not.

   A6: multithreading (§6) — a check-then-act race whose crash depends on
   the interleaving; replay with the recorded thread schedule vs without. *)

let a3 (c : Ctx.t) =
  Util.section ~id:"A3" ~paper:"§6 (long-running applications)"
    "Checkpointing: log truncation and replay-from-checkpoint";
  let n_reqs = max 12 (c.requests / 8) in
  let reqs =
    Workloads.Http_gen.workload ~seed:3 n_reqs
    @ (Workloads.Userver.experiment 1).requests
  in
  let prog = Lazy.force Workloads.Userver.checkpointed_prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let sc = Workloads.Userver.checkpointed_scenario reqs in
  let r = Checkpoint.Cfield.run ~plan sc in
  (match Checkpoint.Cfield.report_of ~sc ~plan r with
  | Some (report, Some snapshot) ->
      let (result, _), dt =
        Util.time_call (fun () ->
            Checkpoint.Creplay.reproduce
              ~budget:
                { (Ctx.replay_budget c) with max_time_s = 6.0 *. c.replay_time_s }
              ~prog ~plan ~snapshot report)
      in
      Util.table
        [
          [ "metric"; "without checkpointing"; "with checkpointing" ];
          [
            "branch bits shipped";
            string_of_int r.total_bits;
            string_of_int r.branch_log.nbits;
          ];
          [
            "snapshot bytes";
            "0";
            string_of_int (Checkpoint.Snapshot.size_bytes snapshot);
          ];
          [ "checkpoints taken"; "0"; string_of_int r.epochs ];
          [
            "replay";
            "(full-log baseline: see E9 exp 1)";
            (match result with
            | Replay.Guided.Reproduced rr ->
                Printf.sprintf "reproduced in %s (%d runs)" (Util.seconds dt)
                  rr.runs
            | Replay.Guided.Not_reproduced _ -> Util.infinity_symbol);
          ];
        ];
      Printf.printf
        "log truncation: %.0f%% of the bits never leave the user site; replay\n\
         additionally searches for a consistent pre-checkpoint global state\n\
         (restored cells are symbolic, per §6).\n"
        (100.0
        *. float_of_int r.discarded_bits
        /. float_of_int (max r.total_bits 1))
  | _ -> print_endline "field run did not produce a checkpointed report")

let a4 (c : Ctx.t) =
  Util.section ~id:"A4" ~paper:"§5.3 (compression)"
    "Branch-log compression ratios (paper: 10-20x with gzip)";
  let cases =
    [
      ( "counter loop",
        Workloads.Microbench.counter_loop ~iterations:(c.loop_iterations / 4) () );
      ( "µServer, static workload",
        (* the paper's httperf setup repeats one request: per-request branch
           patterns recur and LZ compression thrives *)
        Workloads.Userver.scenario ~name:"a4s"
          (List.init (max 50 (c.requests / 2)) (fun _ -> Workloads.Http_gen.tiny_get)) );
      ( "µServer, mixed workload",
        Workloads.Userver.scenario ~name:"a4m"
          (Workloads.Http_gen.workload (max 20 (c.requests / 5))) );
      ( "diff",
        let a_txt, b_txt =
          Workloads.Diffutil.file_pair ~seed:5 ~lines:16 ~width:16 ~edits:3 ()
        in
        Workloads.Diffutil.scenario ~name:"a4-diff" ~snapshot:false ~file_a:a_txt
          ~file_b:b_txt () );
    ]
  in
  let rows =
    List.map
      (fun (name, sc) ->
        let plan =
          Instrument.Plan.make
            ~nbranches:(Minic.Program.nbranches sc.Concolic.Scenario.prog)
            Instrument.Methods.All_branches
        in
        let r = Instrument.Field_run.run ~plan sc in
        let comp = Instrument.Compress.compress r.branch_log in
        [
          name;
          string_of_int (Instrument.Branch_log.size_bytes r.branch_log);
          string_of_int (Instrument.Compress.size_bytes comp);
          Printf.sprintf "%.1fx" (Instrument.Compress.ratio r.branch_log comp);
        ])
      cases
  in
  Util.table ([ "workload"; "raw bytes"; "compressed"; "ratio" ] :: rows)

let a5 (c : Ctx.t) =
  Util.section ~id:"A5" ~paper:"§4 (rejected design)"
    "Branch-prediction logging vs one bit per branch";
  let sc =
    Workloads.Userver.scenario ~name:"a5"
      (Workloads.Http_gen.workload (max 20 (c.requests / 5)))
  in
  let nb = Minic.Program.nbranches sc.prog in
  let plan = Instrument.Plan.make ~nbranches:nb Instrument.Methods.All_branches in
  let rows =
    List.map
      (fun scheme ->
        let p = Instrument.Predictor.create ~nbranches:nb scheme in
        let hooks = Instrument.Predictor.hooks p ~plan in
        let world, handle = Osmodel.World.kernel sc.world in
        ignore world;
        let (_ : Interp.Eval.result) =
          Interp.Eval.run sc.prog
            {
              Interp.Eval.inputs = Interp.Inputs.of_strings sc.args;
              kernel = Interp.Kernel.of_world handle;
              hooks;
              max_steps = sc.max_steps;
      scheduler = None;
            }
        in
        [
          Instrument.Predictor.scheme_to_string scheme;
          string_of_int p.executions;
          Printf.sprintf "%.1f%%" (100.0 *. Instrument.Predictor.misprediction_rate p);
          string_of_int (Instrument.Predictor.log_size_bytes p);
        ])
      Instrument.Predictor.[ Last_direction; Two_bit ]
  in
  let r = Instrument.Field_run.run ~plan sc in
  let bit_bytes = Instrument.Branch_log.size_bytes r.branch_log in
  Util.table
    ([ "predictor"; "branch executions"; "mispredictions"; "log bytes (32b/miss)" ]
     :: rows
    @ [ [ "1 bit per branch (ours)"; string_of_int r.branch_log.nbits; "-";
          string_of_int bit_bytes ] ]);
  print_endline
    "expected shape: per-misprediction entries carry a 32-bit location, so\n\
     the prediction scheme only wins below a ~3% misprediction rate — which\n\
     input-dependent parser branches do not reach (the paper's argument for\n\
     rejecting it)."

let a6 (c : Ctx.t) =
  Util.section ~id:"A6" ~paper:"§6 (multithreading)"
    "Racy multithreaded workload: replay with and without the schedule log";
  let sc = Workloads.Mtrace.scenario ~seed:3 () in
  let prog = sc.prog in
  let plan =
    Instrument.Plan.make
      ~nbranches:(Minic.Program.nbranches prog)
      Instrument.Methods.All_branches
  in
  let _, report = Bugrepro.Pipeline.field_run_report ~plan sc in
  match report with
  | None -> print_endline "the race did not fire under the field scheduler"
  | Some report ->
      let sched_entries =
        match report.schedule_log with
        | Some l -> Instrument.Schedule_log.length l
        | None -> 0
      in
      let replay rep =
        let result, stats =
          Bugrepro.Pipeline.reproduce ~budget:(Ctx.replay_budget c) ~jobs:c.jobs
            ~solver_cache:c.solver_cache ~prog ~plan rep
        in
        ( Util.verdict_string (Util.replay_verdict result),
          stats.engine.runs )
      in
      let with_v, with_runs = replay report in
      let without_v, without_runs =
        replay { report with Instrument.Report.schedule_log = None }
      in
      Util.table
        [
          [ "configuration"; "replay"; "runs" ];
          [
            Printf.sprintf "with schedule log (%d entries, %d bytes)" sched_entries
              sched_entries;
            with_v;
            string_of_int with_runs;
          ];
          [ "without schedule log"; without_v; string_of_int without_runs ];
        ];
      print_endline
        "expected shape: with the recorded schedule the interleaving-dependent\n\
         crash replays immediately; without it the branch log alone cannot pin\n\
         the interleaving (the paper's argument for recording thread order)."
