(* E19 — extension: the closed adaptive deployment loop (DESIGN.md §5k).
   Not in the paper; measures what the paper's static §2.3 trade-off
   leaves on the table once a fleet can be re-instrumented between
   rounds.  A static deployment must pick ONE method for every cohort:
   cheap methods fail to reproduce the hard cohort's bug inside the
   run-bounded replay ladder (DNF), rich methods pay their overhead on
   every healthy cohort forever.  The adaptive loop starts everyone
   coarse and refines per cohort — escalating the hard cohort to full
   detail while the healthy cohorts shed observation cost — so its
   converged round beats every static method on the combined
   overhead × reproduction-effort product.

   Rows: one fleet-wide deployment round per post-deployment method
   (none / static / all-branches; the dynamic methods need the
   developer's test scenario and exist only pre-deployment), then the
   adaptive loop run to convergence.  A row's product is its weighted
   field overhead (ratio to the uninstrumented baseline) times the
   replay engine runs its triage spends reproducing the round's
   clusters; a row that fails to reproduce every cluster is DNF.  The
   experiment fails hard if the adaptive product does not beat every
   finite static row. *)

let sprintf = Printf.sprintf

module Loop = Adaptive.Loop
module Methods = Instrument.Methods

let weighted_overhead (r : Loop.round_summary) =
  let num, den =
    List.fold_left
      (fun (n, d) (c : Loop.cohort_round) ->
        (n +. (c.Loop.cr_overhead_pct *. float_of_int c.Loop.cr_reports),
         d + c.Loop.cr_reports))
      (0.0, 0) r.Loop.cohorts
  in
  num /. float_of_int (max 1 den) /. 100.0

let sum f (r : Loop.round_summary) =
  List.fold_left (fun a c -> a + f c) 0 r.Loop.cohorts

let runs_of = sum (fun c -> c.Loop.cr_runs)
let clusters_of = sum (fun c -> c.Loop.cr_clusters)
let reproduced_of = sum (fun c -> c.Loop.cr_reproduced)

(* overhead ratio × replay runs; None = DNF (a cluster the round's
   instrumentation could not reproduce inside the ladder) *)
let product (r : Loop.round_summary) =
  if clusters_of r = 0 || reproduced_of r < clusters_of r then None
  else Some (weighted_overhead r *. float_of_int (runs_of r))

let e19 (c : Ctx.t) =
  Util.section ~id:"E19" ~paper:"extension"
    "Closed-loop adaptive instrumentation vs every static fleet-wide method";
  let cfg = Ctx.pipeline_config c in
  let config ~rounds ~fleet =
    {
      Loop.default_config with
      Loop.rounds;
      fleet;
      pipeline = cfg;
      telemetry = c.telemetry;
    }
  in
  (* a static deployment = the adaptive machinery pinned to one
     fleet-wide method and never refined: one round at Coarse, which
     ships exactly the method's §2.3 branch set *)
  let static_round meth =
    let fleet =
      List.map (fun s -> { s with Loop.meth }) Loop.default_fleet
    in
    let res = Loop.run (config ~rounds:1 ~fleet) in
    List.hd res.Loop.rounds
  in
  let statics =
    List.map
      (fun meth ->
        let r, s = Util.time_call (fun () -> static_round meth) in
        (Methods.to_string meth, r, s))
      [ Methods.No_instrumentation; Methods.Static; Methods.All_branches ]
  in
  let adaptive_rounds = 3 in
  let (adaptive : Loop.result), adaptive_s =
    Util.time_call (fun () ->
        Loop.run (config ~rounds:adaptive_rounds ~fleet:Loop.default_fleet))
  in
  let final = List.nth adaptive.Loop.rounds (adaptive_rounds - 1) in
  let row name r wall =
    [
      name;
      sprintf "%.2fx" (weighted_overhead r);
      string_of_int (runs_of r);
      sprintf "%d/%d" (reproduced_of r) (clusters_of r);
      (match product r with None -> "DNF" | Some p -> sprintf "%.1f" p);
      Util.seconds wall;
    ]
  in
  Util.table
    ([
       [
         "deployment";
         "overhead";
         "replay runs";
         "reproduced";
         "overhead x runs";
         "wall clock";
       ];
     ]
    @ List.map (fun (name, r, s) -> row ("static " ^ name) r s) statics
    @ [ row "adaptive (converged)" final adaptive_s ]);
  List.iteri
    (fun i r ->
      Printf.printf
        "adaptive round %d: %d bits shipped, %d cohorts refined, %d/%d \
         reproduced\n"
        r.Loop.round r.Loop.total_bits r.Loop.cohorts_refined
        (reproduced_of r) (clusters_of r);
      ignore i)
    adaptive.Loop.rounds;
  if not adaptive.Loop.converged then
    failwith "E19: adaptive loop did not converge";
  let adaptive_product =
    match product final with
    | Some p -> p
    | None ->
        failwith "E19: converged adaptive round left a cluster unreproduced"
  in
  let best_static =
    List.filter_map (fun (name, r, _) ->
        Option.map (fun p -> (name, p)) (product r))
      statics
  in
  (match best_static with
  | [] -> failwith "E19: every static method was DNF (fleet misconfigured?)"
  | rows ->
      List.iter
        (fun (name, p) ->
          if adaptive_product >= p then
            failwith
              (sprintf
                 "E19: adaptive product %.1f does not beat static %s (%.1f)"
                 adaptive_product name p))
        rows);
  let m k v = Util.record_metric ~experiment:"E19" k v in
  List.iter
    (fun (name, r, _) ->
      m (sprintf "static_%s/overhead_x" name) (weighted_overhead r);
      m (sprintf "static_%s/replay_runs" name) (float_of_int (runs_of r));
      match product r with
      | Some p -> m (sprintf "static_%s/product" name) p
      | None -> ())
    statics;
  m "adaptive/overhead_x" (weighted_overhead final);
  m "adaptive/replay_runs" (float_of_int (runs_of final));
  m "adaptive/product" adaptive_product;
  m "adaptive/rounds_to_converge" (float_of_int adaptive_rounds);
  m "adaptive/round1_bits"
    (float_of_int (List.hd adaptive.Loop.rounds).Loop.total_bits);
  m "adaptive/final_bits" (float_of_int final.Loop.total_bits);
  m "adaptive/seconds" adaptive_s;
  let margin =
    List.fold_left (fun a (_, p) -> Float.min a p) Float.infinity best_static
    /. adaptive_product
  in
  m "gate_margin_x" margin;
  Printf.printf
    "gate: adaptive %.1f beats best finite static %.1f (%.2fx margin)\n"
    adaptive_product
    (List.fold_left (fun a (_, p) -> Float.min a p) Float.infinity best_static)
    margin;
  print_endline
    "expected shape: the uninstrumented row is DNF (nothing reproduces \
     blind\n\
     inside the run-bounded ladder); the all-branches row is DNF too — \
     the torn\n\
     cohort's salvage cuts at the last complete codec token, and the \
     richer\n\
     stream's final token covers too many bits to lose; the static row \
     reproduces\n\
     everything but pays its overhead on every cohort forever.  The \
     adaptive loop\n\
     converges in three rounds to full detail on the canary only, \
     crash-slice\n\
     instrumentation on the healthy cohorts, and a held coarse level on \
     the torn\n\
     cohort — the lowest overhead x replay-runs product of all."
