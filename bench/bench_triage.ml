(* E16 — extension: batch triage of a crash-report stream.  Not in the
   paper; measures the developer-side ingestion tier (DESIGN.md §5f):
   torn-report salvage, fingerprint dedup and the escalating-budget
   scheduler, drained sequentially vs by a pool of worker domains.

   The batch is built in memory from the coreutils demo crashes:
   duplicates dominate (the WER premise behind dedup) and a few reports
   arrive torn mid-hex, as a crashing process tearing its own log buffer
   would leave them.  Whatever the worker count, the timing-stripped
   summary must be byte-identical — scheduling may change how long triage
   takes, never what it concludes. *)

let sprintf = Printf.sprintf

module Wire = Instrument.Wire
module Report = Instrument.Report

let bases =
  [
    ("mkdir", Instrument.Methods.All_branches);
    ("mknod", Instrument.Methods.Static);
    ("paste", Instrument.Methods.Static);
    ("mkfifo", Instrument.Methods.All_branches);
  ]

(* duplicates per base: 12 intact reports over 4 clusters *)
let copies = [ 4; 3; 3; 2 ]

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* cut halfway into the branch-log hex: strictly malformed, salvageable *)
let tear wire =
  match find_sub wire "branch-log: " with
  | None -> wire
  | Some pos ->
      let start = pos + String.length "branch-log: " in
      let hex_end =
        match String.index_from_opt wire start '\n' with
        | Some e -> e
        | None -> String.length wire
      in
      String.sub wire 0 (start + ((hex_end - start) / 2))

let e16 (c : Ctx.t) =
  let par_jobs = if c.jobs > 1 then c.jobs else 4 in
  Util.section ~id:"E16" ~paper:"extension"
    (sprintf
       "Batch triage: salvage + dedup + budgeted replay, jobs=1 vs jobs=%d"
       par_jobs);
  let cfg = Ctx.pipeline_config c in
  let analyses = Hashtbl.create 8 in
  let plans = Hashtbl.create 8 in
  let wire_of (util, meth) =
    let e = Workloads.Coreutils.find util in
    let analysis =
      match Hashtbl.find_opt analyses util with
      | Some a -> a
      | None ->
          let a = Bugrepro.Pipeline.Run.analyze cfg (Lazy.force e.prog) in
          Hashtbl.add analyses util a;
          a
    in
    let plan = Bugrepro.Pipeline.Run.plan cfg analysis meth in
    Hashtbl.replace plans (util, meth) (analysis.Bugrepro.Pipeline.prog, plan);
    let _, report =
      Bugrepro.Pipeline.Run.field_run_report cfg ~plan
        (Workloads.Coreutils.crash_scenario e)
    in
    match report with
    | Some r -> Wire.serialize r
    | None -> failwith (util ^ ": demo scenario did not crash")
  in
  let wires = List.map wire_of bases in
  let texts =
    List.concat
      (List.map2 (fun w n -> List.init n (fun _ -> w)) wires copies)
    @ [ tear (List.nth wires 0); tear (List.nth wires 1) ]
  in
  let items =
    List.mapi
      (fun i s ->
        match Triage.Ingest.of_string ~path:(sprintf "r%03d.report" i) s with
        | Ok item -> item
        | Error r ->
            failwith
              (sprintf "batch report %d rejected: %s" i
                 (Wire.error_to_string r.Triage.Ingest.error)))
      texts
  in
  let resolve (cl : Triage.Cluster.t) =
    let r = cl.Triage.Cluster.representative.Triage.Ingest.report in
    match Hashtbl.find_opt plans (r.Report.program, r.Report.method_used) with
    | Some pp -> Ok pp
    | None -> Error ("no plan for " ^ r.Report.program)
  in
  let triage jobs =
    let policy =
      { (Triage.Sched.policy_of_config cfg) with
        Triage.Sched.jobs;
        deadline_s = 12.0 *. c.replay_time_s }
    in
    Util.time_call (fun () ->
        Triage.run_items ~policy ~telemetry:c.telemetry ~resolve items)
  in
  let s1, seq_s = triage 1 in
  let sp, par_s = triage par_jobs in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  let row label (s : Triage.Summary.t) wall =
    [
      label;
      string_of_int s.reports;
      string_of_int s.salvaged;
      string_of_int (List.length s.clusters);
      sprintf "%.2f" s.dedup_ratio;
      sprintf "%d (%d from salvage)"
        (s.reproduced + s.salvaged_reproduced)
        s.salvaged_reproduced;
      string_of_int (s.timed_out + s.exhausted);
      Util.seconds wall;
    ]
  in
  Util.table
    [
      [ "configuration"; "reports"; "salvaged"; "clusters"; "dedup";
        "reproduced"; "not repro"; "wall clock" ];
      row "jobs=1" s1 seq_s;
      row (sprintf "jobs=%d" par_jobs) sp par_s;
    ];
  let deterministic =
    Triage.Summary.to_json ~timing:false s1
    = Triage.Summary.to_json ~timing:false sp
  in
  Util.record_metric ~experiment:"E16" "reports" (float_of_int s1.reports);
  Util.record_metric ~experiment:"E16" "dedup_ratio" s1.dedup_ratio;
  Util.record_metric ~experiment:"E16" "salvage_rate"
    (float_of_int s1.salvaged /. float_of_int (max 1 s1.reports));
  Util.record_metric ~experiment:"E16" "reproduced"
    (float_of_int (s1.reproduced + s1.salvaged_reproduced));
  Util.record_metric ~experiment:"E16" "salvaged_reproduced"
    (float_of_int s1.salvaged_reproduced);
  Util.record_metric ~experiment:"E16" "j1/seconds" seq_s;
  Util.record_metric ~experiment:"E16"
    (sprintf "j%d/seconds" par_jobs)
    par_s;
  Util.record_metric ~experiment:"E16" "speedup" speedup;
  Util.record_metric ~experiment:"E16" "summary_deterministic"
    (if deterministic then 1.0 else 0.0);
  Printf.printf "summary parity across worker counts: %s\n"
    (if deterministic then "OK" else "MISMATCH");
  print_endline
    "expected shape: dedup collapses the batch to one replay per distinct\n\
     crash (dedup well below 1.0), the torn reports are salvaged and still\n\
     reproduced, and extra worker domains only shorten the wall clock —\n\
     the timing-stripped summary is byte-identical across worker counts."
