(* E16 — extension: batch triage of a crash-report stream.  Not in the
   paper; measures the developer-side ingestion tier (DESIGN.md §5f):
   torn-report salvage, fingerprint dedup and the escalating-budget
   scheduler, drained sequentially vs by a pool of worker domains.

   The batch is built in memory from the coreutils demo crashes:
   duplicates dominate (the WER premise behind dedup) and a few reports
   arrive torn mid-hex, as a crashing process tearing its own log buffer
   would leave them.  A probe-elision tier re-runs the same crashes with
   suppression on and folds the resulting v3 reports (one torn) into the
   batch, so the salvage path also exercises replay-side reconstruction;
   its elision counts, bit savings and CPU deltas land in the --json
   summary as suppression/* metrics.  Whatever the worker count, the
   timing-stripped summary must be byte-identical — scheduling may change
   how long triage takes, never what it concludes. *)

let sprintf = Printf.sprintf

module Wire = Instrument.Wire
module Report = Instrument.Report

(* The fifth base exercises the redundancy class probe elision targets:
   the record's first byte selects a processing mode, so its tests are
   symbolic — dynamic+static instruments them — yet provably redundant:
   loop-invariant inside the scan loop, dominator-implied outside it (the
   [print_str] between the two mode tests is harmless because builtin
   effects are modelled).  Parsers that re-test a record-type byte per
   field have exactly this shape. *)
let logscan_source =
  "// logscan: tally markers in a record whose first byte picks the mode\n\
   int nbang;\n\
   int scan(int *rec, int n) {\n\
  \  int mode = rec[0];\n\
  \  int hits = 0;\n\
  \  if (mode == 'u') { print_str(\"urgent record\\n\"); }\n\
  \  int i = 1;\n\
  \  while (i < n) {\n\
  \    if (mode == 'u') {\n\
  \      if (rec[i] == '!') { hits = hits + 2; }\n\
  \    }\n\
  \    if (mode == 'm') {\n\
  \      if (rec[i] == '#') { hits = hits + 1; }\n\
  \    }\n\
  \    if (rec[i] == '!') { nbang = nbang + 1; }\n\
  \    i = i + 1;\n\
  \  }\n\
  \  if (mode == 'u') { hits = hits + 1; }\n\
  \  return hits;\n\
   }\n\
   int main() {\n\
  \  int rec[128];\n\
  \  int n = arg(0, rec, 128);\n\
  \  if (n < 2) { return 1; }\n\
  \  int hits = scan(rec, n);\n\
  \  if (hits > 3) {\n\
  \    if (nbang > 2) { crash(); }\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let logscan_prog =
  lazy (Minic.Program.of_sources ~name:"logscan" ~app:logscan_source ~libs:[] ())

type base = {
  b_name : string;
  b_meth : Instrument.Methods.t;
  b_prog : Minic.Program.t Lazy.t;
  b_crash_args : string list;
  b_analysis_args : string list option;
      (* developer-side argv for dynamic analysis; [None] = static-only
         labelling is enough for [b_meth] *)
}

let coreutils_base name meth =
  let e = Workloads.Coreutils.find name in
  {
    b_name = name;
    b_meth = meth;
    b_prog = e.Workloads.Coreutils.prog;
    b_crash_args = e.crashing_args;
    b_analysis_args = None;
  }

let bases =
  [
    coreutils_base "mkdir" Instrument.Methods.All_branches;
    coreutils_base "mknod" Instrument.Methods.Static;
    coreutils_base "paste" Instrument.Methods.Static;
    coreutils_base "mkfifo" Instrument.Methods.All_branches;
    {
      b_name = "logscan";
      b_meth = Instrument.Methods.Dynamic_static;
      b_prog = logscan_prog;
      b_crash_args = [ "u!!aaa!aaa!aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" ];
      b_analysis_args = Some [ "maaaa#aaaaaa" ];
    };
  ]

(* duplicates per base: 15 intact reports over 5 clusters *)
let copies = [ 4; 3; 3; 2; 3 ]

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* cut into the tail of the branch payload hex (the v4 [branch-enc]
   token stream, or [branch-log] on raw wires): strictly malformed,
   salvageable.  The cut keeps 3/4 of the payload — on an encoded wire
   each lost byte is a whole token, i.e. many decoded bits, so a
   halfway cut would leave too short a prefix to guide replay at all *)
let tear wire =
  let key =
    match find_sub wire "branch-enc: " with
    | Some _ -> "branch-enc: "
    | None -> "branch-log: "
  in
  match find_sub wire key with
  | None -> wire
  | Some pos ->
      let start = pos + String.length key in
      let hex_end =
        match String.index_from_opt wire start '\n' with
        | Some e -> e
        | None -> String.length wire
      in
      String.sub wire 0 (start + (3 * (hex_end - start) / 4))

(* one probe-elision measurement per batch base: elision counts, shipped
   bits and field/replay CPU with suppression off vs on *)
type sup_row = {
  s_util : string;
  s_instr : int;  (* instrumented probe sites *)
  s_sup : Staticanalysis.Suppression.t;
  s_full_bits : int;
  s_sup_bits : int;
  s_full_enc_bytes : int;  (* online-encoded transfer bytes, raw plan *)
  s_sup_enc_bytes : int;  (* online-encoded transfer bytes, suppressed *)
  s_raw_field_s : float;
  s_sup_field_s : float;
  s_raw_ok : bool;
  s_sup_ok : bool;
  s_raw_replay_s : float;
  s_sup_replay_s : float;
  s_wire : string;  (* the suppressed v3 report, for the batch *)
}

let e16 (c : Ctx.t) =
  let par_jobs = if c.jobs > 1 then c.jobs else 4 in
  Util.section ~id:"E16" ~paper:"extension"
    (sprintf
       "Batch triage: salvage + dedup + budgeted replay, jobs=1 vs jobs=%d"
       par_jobs);
  let cfg = Ctx.pipeline_config c in
  let analyses = Hashtbl.create 8 in
  let plans = Hashtbl.create 8 in
  let crash_scenario (b : base) =
    Concolic.Scenario.make ~name:b.b_name ~args:b.b_crash_args
      (Lazy.force b.b_prog)
  in
  let wire_of (b : base) =
    let analysis =
      match Hashtbl.find_opt analyses b.b_name with
      | Some a -> a
      | None ->
          let test_scenario =
            Option.map
              (fun args ->
                Concolic.Scenario.make ~name:(b.b_name ^ "-analysis") ~args
                  (Lazy.force b.b_prog))
              b.b_analysis_args
          in
          let a =
            Bugrepro.Pipeline.Run.analyze cfg ?test_scenario
              (Lazy.force b.b_prog)
          in
          Hashtbl.add analyses b.b_name a;
          a
    in
    let plan = Bugrepro.Pipeline.Run.plan cfg analysis b.b_meth in
    Hashtbl.replace plans (b.b_name, b.b_meth)
      (analysis.Bugrepro.Pipeline.prog, plan);
    let _, report =
      Bugrepro.Pipeline.Run.field_run_report cfg ~plan (crash_scenario b)
    in
    match report with
    | Some r -> Wire.serialize r
    | None -> failwith (b.b_name ^ ": demo scenario did not crash")
  in
  let wires = List.map wire_of bases in
  (* probe-elision tier: the same crashes with the suppression refinement
     on.  The analysis output is proof-checked before the plan is trusted,
     both field runs replay to the same verdict, and the suppressed v3
     wires join the batch below so triage reconstructs elided bits on the
     salvage path too. *)
  let module Sup = Staticanalysis.Suppression in
  let sup_measure (b : base) =
    let prog, plan = Hashtbl.find plans (b.b_name, b.b_meth) in
    let instrumented = plan.Instrument.Plan.instrumented in
    let sup = Sup.analyze ~instrumented prog in
    (match Sup.verify ~instrumented prog (Sup.to_table sup) with
    | Ok () -> ()
    | Error m -> failwith (b.b_name ^ ": suppression proof rejected: " ^ m));
    let plan_sup = Instrument.Plan.with_suppression plan sup in
    let sc = crash_scenario b in
    let reps = if c.quick then 3 else 10 in
    let field plan =
      Util.time_call (fun () ->
          let r = ref None in
          for _ = 1 to reps do
            r := snd (Bugrepro.Pipeline.Run.field_run_report cfg ~plan sc)
          done;
          match !r with
          | Some r -> r
          | None -> failwith (b.b_name ^ ": demo scenario did not crash"))
    in
    let raw_r, raw_field_s = field plan in
    let sup_r, sup_field_s = field plan_sup in
    let replay plan r =
      Util.time_call (fun () ->
          fst (Bugrepro.Pipeline.Run.reproduce cfg ~prog ~plan r))
    in
    let raw_v, raw_replay_s = replay plan raw_r in
    let sup_v, sup_replay_s = replay plan_sup sup_r in
    {
      s_util = b.b_name;
      s_instr =
        Array.fold_left (fun a b -> if b then a + 1 else a) 0 instrumented;
      s_sup = sup;
      s_full_bits = Report.nbits raw_r;
      s_sup_bits = Report.nbits sup_r;
      s_full_enc_bytes = Report.payload_bytes raw_r;
      s_sup_enc_bytes = Report.payload_bytes sup_r;
      s_raw_field_s = raw_field_s;
      s_sup_field_s = sup_field_s;
      s_raw_ok =
        (match raw_v with Replay.Guided.Reproduced _ -> true | _ -> false);
      s_sup_ok =
        (match sup_v with Replay.Guided.Reproduced _ -> true | _ -> false);
      s_raw_replay_s = raw_replay_s;
      s_sup_replay_s = sup_replay_s;
      s_wire = Wire.serialize sup_r;
    }
  in
  let sup_rows = List.map sup_measure bases in
  let sup_wires = List.map (fun r -> r.s_wire) sup_rows in
  let texts =
    List.concat
      (List.map2 (fun w n -> List.init n (fun _ -> w)) wires copies)
    @ [ tear (List.nth wires 0); tear (List.nth wires 1) ]
    @ sup_wires
    @ [ tear (List.nth sup_wires 0) ]
  in
  let items =
    List.mapi
      (fun i s ->
        match Triage.Ingest.of_string ~path:(sprintf "r%03d.report" i) s with
        | Ok item -> item
        | Error r ->
            failwith
              (sprintf "batch report %d rejected: %s" i
                 (Wire.error_to_string r.Triage.Ingest.error)))
      texts
  in
  let resolve (cl : Triage.Cluster.t) =
    let r = cl.Triage.Cluster.representative.Triage.Ingest.report in
    match Hashtbl.find_opt plans (r.Report.program, r.Report.method_used) with
    | Some pp -> Ok pp
    | None -> Error ("no plan for " ^ r.Report.program)
  in
  let triage jobs =
    let policy =
      { (Triage.Sched.policy_of_config cfg) with
        Triage.Sched.jobs;
        deadline_s = 12.0 *. c.replay_time_s }
    in
    Util.time_call (fun () ->
        match Triage.run_items ~policy ~telemetry:c.telemetry ~resolve items with
        | Ok s -> s
        | Error e -> failwith (Triage.Index.error_to_string e))
  in
  let s1, seq_s = triage 1 in
  let sp, par_s = triage par_jobs in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  let row label (s : Triage.Summary.t) wall =
    [
      label;
      string_of_int s.reports;
      string_of_int s.salvaged;
      string_of_int (List.length s.clusters);
      sprintf "%.2f" s.dedup_ratio;
      sprintf "%d (%d from salvage)"
        (s.reproduced + s.salvaged_reproduced)
        s.salvaged_reproduced;
      string_of_int (s.timed_out + s.exhausted);
      Util.seconds wall;
    ]
  in
  Util.table
    [
      [ "configuration"; "reports"; "salvaged"; "clusters"; "dedup";
        "reproduced"; "not repro"; "wall clock" ];
      row "jobs=1" s1 seq_s;
      row (sprintf "jobs=%d" par_jobs) sp par_s;
    ];
  (* probe-elision tier: per-base elision verdicts and the raw-vs-
     suppressed cost comparison (§3.1 outcomes must not change) *)
  print_newline ();
  let pct_delta raw sup =
    if raw <= 0.0 then "n/a" else sprintf "%+.0f%%" (100.0 *. (sup -. raw) /. raw)
  in
  Util.table
    ([
       [ "probe elision"; "probes"; "elided c/a/d/i"; "bits raw>sup";
         "enc bytes raw>sup"; "field cpu"; "replay"; "repro" ];
     ]
    @ List.map
        (fun r ->
          let s = r.s_sup in
          [
            r.s_util;
            string_of_int r.s_instr;
            sprintf "%d/%d/%d/%d" s.Staticanalysis.Suppression.n_const
              s.n_arm s.n_implied s.n_invariant;
            sprintf "%d > %d" r.s_full_bits r.s_sup_bits;
            sprintf "%d > %d" r.s_full_enc_bytes r.s_sup_enc_bytes;
            pct_delta r.s_raw_field_s r.s_sup_field_s;
            pct_delta r.s_raw_replay_s r.s_sup_replay_s;
            sprintf "%s/%s"
              (if r.s_raw_ok then "yes" else "no")
              (if r.s_sup_ok then "yes" else "no");
          ])
        sup_rows);
  let sumi f = List.fold_left (fun a r -> a + f r) 0 sup_rows in
  let sumf f = List.fold_left (fun a r -> a +. f r) 0.0 sup_rows in
  let full_bits = sumi (fun r -> r.s_full_bits) in
  let sup_bits = sumi (fun r -> r.s_sup_bits) in
  let raw_ok = sumi (fun r -> if r.s_raw_ok then 1 else 0) in
  let sup_ok = sumi (fun r -> if r.s_sup_ok then 1 else 0) in
  let raw_field = sumf (fun r -> r.s_raw_field_s) in
  let sup_field = sumf (fun r -> r.s_sup_field_s) in
  let raw_replay = sumf (fun r -> r.s_raw_replay_s) in
  let sup_replay = sumf (fun r -> r.s_sup_replay_s) in
  let delta raw sup = if raw > 0.0 then 100.0 *. (sup -. raw) /. raw else 0.0 in
  let sup_metric k v = Util.record_metric ~experiment:"E16" ("suppression/" ^ k) v in
  sup_metric "probes" (float_of_int (sumi (fun r -> r.s_instr)));
  sup_metric "elided"
    (float_of_int
       (sumi (fun r -> Staticanalysis.Suppression.n_elided r.s_sup)));
  sup_metric "elided_const"
    (float_of_int (sumi (fun r -> r.s_sup.Staticanalysis.Suppression.n_const)));
  sup_metric "elided_arm"
    (float_of_int (sumi (fun r -> r.s_sup.Staticanalysis.Suppression.n_arm)));
  sup_metric "elided_implied"
    (float_of_int
       (sumi (fun r -> r.s_sup.Staticanalysis.Suppression.n_implied)));
  sup_metric "elided_invariant"
    (float_of_int
       (sumi (fun r -> r.s_sup.Staticanalysis.Suppression.n_invariant)));
  sup_metric "full_bits" (float_of_int full_bits);
  sup_metric "suppressed_bits" (float_of_int sup_bits);
  sup_metric "encoded_bytes"
    (float_of_int (sumi (fun r -> r.s_full_enc_bytes)));
  sup_metric "sup_encoded_bytes"
    (float_of_int (sumi (fun r -> r.s_sup_enc_bytes)));
  sup_metric "bits_saved_pct"
    (if full_bits > 0 then
       100.0 *. float_of_int (full_bits - sup_bits) /. float_of_int full_bits
     else 0.0);
  sup_metric "field_cpu_delta_pct" (delta raw_field sup_field);
  sup_metric "replay_cpu_delta_pct" (delta raw_replay sup_replay);
  sup_metric "raw_reproduced" (float_of_int raw_ok);
  sup_metric "sup_reproduced" (float_of_int sup_ok);
  sup_metric "equal_replay_success" (if raw_ok = sup_ok then 1.0 else 0.0);
  sup_metric "reports_in_batch" (float_of_int (List.length sup_wires + 1));
  Printf.printf
    "probe elision: %d bits -> %d bits (%.0f%% saved) at %d/%d vs %d/%d \
     reproduced\n"
    full_bits sup_bits
    (if full_bits > 0 then
       100.0 *. float_of_int (full_bits - sup_bits) /. float_of_int full_bits
     else 0.0)
    raw_ok (List.length sup_rows) sup_ok (List.length sup_rows);
  let deterministic =
    Triage.Summary.to_json ~timing:false s1
    = Triage.Summary.to_json ~timing:false sp
  in
  Util.record_metric ~experiment:"E16" "reports" (float_of_int s1.reports);
  Util.record_metric ~experiment:"E16" "dedup_ratio" s1.dedup_ratio;
  Util.record_metric ~experiment:"E16" "salvage_rate"
    (float_of_int s1.salvaged /. float_of_int (max 1 s1.reports));
  Util.record_metric ~experiment:"E16" "reproduced"
    (float_of_int (s1.reproduced + s1.salvaged_reproduced));
  Util.record_metric ~experiment:"E16" "salvaged_reproduced"
    (float_of_int s1.salvaged_reproduced);
  Util.record_metric ~experiment:"E16" "j1/seconds" seq_s;
  Util.record_metric ~experiment:"E16"
    (sprintf "j%d/seconds" par_jobs)
    par_s;
  Util.record_metric ~experiment:"E16" "speedup" speedup;
  Util.record_metric ~experiment:"E16" "summary_deterministic"
    (if deterministic then 1.0 else 0.0);
  Printf.printf "summary parity across worker counts: %s\n"
    (if deterministic then "OK" else "MISMATCH");
  print_endline
    "expected shape: dedup collapses the batch to one replay per distinct\n\
     crash (dedup well below 1.0), the torn reports are salvaged and still\n\
     reproduced, and extra worker domains only shorten the wall clock —\n\
     the timing-stripped summary is byte-identical across worker counts.\n\
     The suppressed v3 reports (one torn) cluster apart from their raw\n\
     twins and replay through bit reconstruction, at equal reproduction\n\
     success and strictly fewer shipped bits."
